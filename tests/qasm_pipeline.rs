//! QASM-in → synthesize → emit → QASM-out pipeline integration.

use olsq2::{Olsq2Synthesizer, SynthesisConfig};
use olsq2_arch::ibm_qx2;
use olsq2_circuit::{parse_qasm, write_qasm, GateKind};
use olsq2_layout::{emit_physical_circuit, verify};

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
t q[2];
cx q[1],q[2];
rz(pi/8) q[1];
cx q[0],q[2];
measure q[0] -> c[0];
"#;

#[test]
fn parse_synthesize_emit_reparse() {
    let circuit = parse_qasm(PROGRAM).expect("parses");
    assert_eq!(circuit.num_gates(), 6);
    let device = ibm_qx2();
    let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
    let out = synth.optimize_depth(&circuit, &device).expect("solves");
    assert_eq!(verify(&circuit, &device, &out.result), Ok(()));

    let physical = emit_physical_circuit(&circuit, &device, &out.result);
    let qasm = write_qasm(&physical.decompose_swaps());
    let reparsed = parse_qasm(&qasm).expect("emitted QASM parses back");
    assert_eq!(reparsed.num_qubits(), device.num_qubits());
    // Gate count: original + 3 CNOTs per swap.
    assert_eq!(
        reparsed.num_gates(),
        circuit.num_gates() + 3 * out.result.swap_count()
    );
    // Every two-qubit gate in the emitted program must sit on a device edge.
    for gate in reparsed.gates() {
        if let olsq2_circuit::Operands::Two(a, b) = gate.operands {
            assert!(
                device.is_adjacent(a, b),
                "emitted gate {gate} not on a coupler"
            );
        }
    }
}

#[test]
fn angles_survive_the_roundtrip() {
    let circuit = parse_qasm(PROGRAM).expect("parses");
    let qasm = write_qasm(&circuit);
    let reparsed = parse_qasm(&qasm).expect("reparses");
    let angle = |c: &olsq2_circuit::Circuit| {
        c.gates()
            .iter()
            .find_map(|g| match g.kind {
                GateKind::Rz(a) => Some(a),
                _ => None,
            })
            .expect("has an rz")
    };
    assert!((angle(&circuit) - angle(&reparsed)).abs() < 1e-9);
}
