//! Cross-crate integration tests: the full synthesis pipeline on real
//! benchmark generators and device topologies, with every result checked
//! through the five-constraint verifier.

use olsq2::{Olsq2Synthesizer, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::{aspen4, grid, ibm_qx2, line, sycamore54};
use olsq2_circuit::generators::{qaoa_circuit, qft_circuit, tof_circuit, toffoli_circuit};
use olsq2_circuit::{Circuit, DependencyGraph, Gate, GateKind};
use olsq2_heuristic::{sabre_route, satmap_route, SabreConfig, SatMapConfig};
use olsq2_layout::{emit_physical_circuit, verify};

#[test]
fn toffoli_on_qx2_depth_optimal() {
    // The paper's running example (Figs. 2-4).
    let circuit = toffoli_circuit();
    let device = ibm_qx2();
    let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
    let out = synth.optimize_depth(&circuit, &device).expect("solves");
    assert!(out.proven_optimal);
    assert_eq!(verify(&circuit, &device, &out.result), Ok(()));
    // QX2 contains a triangle, so the Toffoli routes without SWAPs at the
    // dependency-chain depth (11 for the canonical decomposition).
    let dag = DependencyGraph::new(&circuit);
    assert_eq!(out.result.depth, dag.longest_chain());
    assert_eq!(out.result.swap_count(), 0);
}

#[test]
fn exact_beats_or_ties_heuristics_on_swap_count() {
    let circuit = qaoa_circuit(6, 11);
    let device = grid(3, 3);
    let sabre_cfg = SabreConfig {
        swap_duration: 1,
        ..Default::default()
    };
    let sabre = sabre_route(&circuit, &device, &sabre_cfg).expect("routes");
    assert_eq!(verify(&circuit, &device, &sabre), Ok(()));

    let sm_cfg = SatMapConfig {
        swap_duration: 1,
        ..Default::default()
    };
    let satmap = satmap_route(&circuit, &device, &sm_cfg).expect("maps");
    assert_eq!(verify(&circuit, &device, &satmap.result), Ok(()));

    let tb = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
    let exact = tb.optimize_swaps(&circuit, &device).expect("solves");
    assert_eq!(verify(&circuit, &device, &exact.outcome.result), Ok(()));
    assert!(exact.outcome.proven_optimal);

    let optimal = exact.outcome.result.swap_count();
    assert!(
        sabre.swap_count() >= optimal,
        "SABRE ({}) cannot beat the proven optimum ({optimal})",
        sabre.swap_count()
    );
    assert!(
        satmap.result.swap_count() >= optimal,
        "SATMap ({}) cannot beat the proven optimum ({optimal})",
        satmap.result.swap_count()
    );
}

#[test]
fn flat_and_tb_agree_on_zero_swap_instances() {
    // A line circuit on a line device embeds perfectly.
    let mut circuit = Circuit::new(5);
    for q in 0..4u16 {
        circuit.push(Gate::two(GateKind::Cx, q, q + 1));
    }
    let device = line(5);
    let flat = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
    let out = flat.optimize_swaps(&circuit, &device).expect("solves");
    assert_eq!(out.best.result.swap_count(), 0);
    let tb = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
    let tb_out = tb.optimize_swaps(&circuit, &device).expect("solves");
    assert_eq!(tb_out.outcome.result.swap_count(), 0);
    assert_eq!(tb_out.block_count, 1);
}

#[test]
fn qft_on_aspen4_full_pipeline() {
    let circuit = qft_circuit(5);
    let device = aspen4();
    let tb = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
    let out = tb.optimize_swaps(&circuit, &device).expect("solves");
    assert_eq!(verify(&circuit, &device, &out.outcome.result), Ok(()));
    // Emission must preserve gate counts: original gates + 1 swap gate per
    // inserted SWAP.
    let phys = emit_physical_circuit(&circuit, &device, &out.outcome.result);
    assert_eq!(
        phys.num_gates(),
        circuit.num_gates() + out.outcome.result.swap_count()
    );
    let decomposed = phys.decompose_swaps();
    assert_eq!(
        decomposed.num_gates(),
        circuit.num_gates() + 3 * out.outcome.result.swap_count()
    );
}

#[test]
fn sabre_scales_to_sycamore() {
    let circuit = tof_circuit(5);
    let device = sycamore54();
    let result = sabre_route(&circuit, &device, &SabreConfig::default()).expect("routes");
    assert_eq!(verify(&circuit, &device, &result), Ok(()));
}

#[test]
fn depth_optimum_is_no_worse_than_sabre() {
    for seed in [1u64, 2, 3] {
        let circuit = qaoa_circuit(8, seed);
        let device = grid(3, 3);
        let sabre_cfg = SabreConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let sabre = sabre_route(&circuit, &device, &sabre_cfg).expect("routes");
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let exact = synth.optimize_depth(&circuit, &device).expect("solves");
        assert!(exact.proven_optimal);
        assert!(
            exact.result.depth <= sabre.depth,
            "seed {seed}: optimal {} > SABRE {}",
            exact.result.depth,
            sabre.depth
        );
    }
}

#[test]
fn pareto_frontier_is_consistent() {
    let circuit = qaoa_circuit(6, 4);
    let device = grid(3, 3);
    let synth = Olsq2Synthesizer::new(SynthesisConfig {
        swap_duration: 1,
        pareto_relax_limit: Some(1),
        ..SynthesisConfig::default()
    });
    let out = synth.optimize_swaps(&circuit, &device).expect("solves");
    assert_eq!(verify(&circuit, &device, &out.best.result), Ok(()));
    // Swap counts along the recorded frontier never increase.
    for w in out.pareto.windows(2) {
        assert!(w[1].1 <= w[0].1, "pareto not monotone: {:?}", out.pareto);
    }
}
