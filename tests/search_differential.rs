//! Differential wall for the modernized search policies (chronological
//! backtracking, target phases, glucose restarts, structure seeding).
//!
//! Every policy is a [`SolverFeatures`] toggle, and none of them may move
//! an optimum: a seeded grid of feature configurations × instance families
//! (QAOA, QFT, QUEKO rows, scrambled assumption cubes) must agree with the
//! `legacy()` baseline on every answer, every layout must verify, and
//! refutations produced under chronological backtracking — including the
//! fully chronological `chrono_threshold = 0` regime, where *every*
//! conflict undoes a single level — must replay through the independent
//! RUP checker.

use olsq2::{Olsq2Synthesizer, SolverFeatures, SynthesisConfig};
use olsq2_arch::{grid, line};
use olsq2_circuit::generators::{qaoa_circuit, qft_circuit, queko_circuit};
use olsq2_layout::verify;
use olsq2_prng::Rng;
use olsq2_sat::{Lit, SolveResult, Solver, Var};

/// The feature grid: the legacy baseline, the full modern set, and each
/// new search policy alone on top of legacy (so a wrong answer names the
/// culprit directly). The chrono-only row runs with `chrono_threshold: 0`
/// — the harshest setting, where every backjump is replaced by a
/// one-level undo and the trail is permanently out of order.
fn feature_grid() -> Vec<(&'static str, SolverFeatures)> {
    let legacy = SolverFeatures::legacy();
    vec![
        ("legacy", legacy),
        ("modern", SolverFeatures::default()),
        (
            "chrono-only",
            SolverFeatures {
                chrono_backtrack: true,
                chrono_threshold: 0,
                ..legacy
            },
        ),
        (
            "glucose-only",
            SolverFeatures {
                glucose_restarts: true,
                restart_postpone: true,
                ..legacy
            },
        ),
        (
            "target-phase-only",
            SolverFeatures {
                target_phase: true,
                ..legacy
            },
        ),
        (
            "seeding-only",
            SolverFeatures {
                structure_seeding: true,
                ..legacy
            },
        ),
    ]
}

fn config_with(features: SolverFeatures) -> SynthesisConfig {
    SynthesisConfig {
        swap_duration: 1,
        solver_features: features,
        ..SynthesisConfig::default()
    }
}

/// Runs `optimize_depth` under every feature configuration and checks the
/// answers against each other (and optionally a known optimum).
fn assert_depth_agreement(
    label: &str,
    circuit: &olsq2_circuit::Circuit,
    device: &olsq2_arch::CouplingGraph,
    known_optimum: Option<usize>,
) {
    let mut baseline = None;
    for (name, features) in feature_grid() {
        let synth = Olsq2Synthesizer::new(config_with(features));
        let out = synth.optimize_depth(circuit, device).expect("solves");
        assert!(out.proven_optimal, "{label}/{name}: not proven optimal");
        assert_eq!(
            verify(circuit, device, &out.result),
            Ok(()),
            "{label}/{name}: layout fails verification"
        );
        let depth = out.result.depth;
        if let Some(opt) = known_optimum {
            assert_eq!(depth, opt, "{label}/{name}: missed the known optimum");
        }
        match baseline {
            None => baseline = Some(depth),
            Some(b) => assert_eq!(
                depth, b,
                "{label}/{name}: optimum moved against the legacy baseline"
            ),
        }
    }
}

#[test]
fn qaoa_optima_invariant_across_feature_grid() {
    let device = grid(3, 3);
    for seed in [1u64, 7] {
        let circuit = qaoa_circuit(6, seed);
        assert_depth_agreement(&format!("qaoa seed {seed}"), &circuit, &device, None);
    }
}

#[test]
fn qft_optima_invariant_across_feature_grid() {
    // QFT(4) on a line forces routing; on a 2×2 grid it embeds tighter.
    let circuit = qft_circuit(4);
    assert_depth_agreement("qft line4", &circuit, &line(4), None);
    assert_depth_agreement("qft grid2x2", &circuit, &grid(2, 2), None);
}

#[test]
fn queko_rows_recover_construction_optimum_across_feature_grid() {
    // QUEKO instances carry their optimum by construction, so this row of
    // the grid checks absolute optimality, not just mutual agreement.
    let device = grid(3, 3);
    for (depth, seed) in [(3usize, 11u64), (4, 12)] {
        let q = queko_circuit(device.num_qubits(), device.edges(), depth, depth * 4, seed);
        assert_depth_agreement(
            &format!("queko depth {depth} seed {seed}"),
            &q.circuit,
            &device,
            Some(q.optimal_depth),
        );
    }
}

// ---------------------------------------------------------------------
// Scrambled cubes: raw-CNF differential at the solver level.
// ---------------------------------------------------------------------

fn lit_of(code: i32) -> Lit {
    Lit::new(Var::from_index(code.unsigned_abs() as usize - 1), code < 0)
}

fn clause_satisfied(clause: &[i32], assignment: u32) -> bool {
    clause.iter().any(|&c| {
        let bit = (assignment >> (c.unsigned_abs() - 1)) & 1 == 1;
        if c > 0 {
            bit
        } else {
            !bit
        }
    })
}

fn brute_force(num_vars: usize, clauses: &[Vec<i32>], extra_units: &[i32]) -> Option<u32> {
    'outer: for assignment in 0..(1u32 << num_vars) {
        for clause in clauses {
            if !clause_satisfied(clause, assignment) {
                continue 'outer;
            }
        }
        for &u in extra_units {
            if !clause_satisfied(&[u], assignment) {
                continue 'outer;
            }
        }
        return Some(assignment);
    }
    None
}

/// Builds a solver over `clauses` inserted in a seeded scrambled order —
/// the decorrelated arena layout a solver has mid-search, and the layout
/// under which the kernel rewrite is actually exercised.
fn scrambled_solver(
    num_vars: usize,
    clauses: &[Vec<i32>],
    features: SolverFeatures,
    seed: u64,
    proof: bool,
) -> Solver {
    let mut order: Vec<usize> = (0..clauses.len()).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut s = Solver::new();
    s.set_features(features);
    if proof {
        s.enable_proof();
    }
    for _ in 0..num_vars {
        s.new_var();
    }
    for &i in &order {
        s.add_clause(clauses[i].iter().map(|&c| lit_of(c)));
    }
    s
}

fn random_formula(rng: &mut Rng) -> (usize, Vec<Vec<i32>>) {
    let num_vars = rng.gen_range(4usize..=10);
    let num_clauses = rng.gen_range(8usize..=40);
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1usize..=3);
            (0..len)
                .map(|_| {
                    let v = rng.gen_range(1i32..=num_vars as i32);
                    if rng.gen_bool(0.5) {
                        -v
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    (num_vars, clauses)
}

#[test]
fn scrambled_assumption_cubes_agree_with_brute_force() {
    // Each formula is solved under a full cube expansion of two random
    // variables (all four sign combinations), per feature configuration,
    // against exhaustive enumeration. Target phases are seeded with
    // deliberately *hostile* polarities so a target-following brancher
    // must still recover the right verdict.
    let mut rng = Rng::seed_from_u64(0x5EA2_C8D1);
    for round in 0..40 {
        let (num_vars, clauses) = random_formula(&mut rng);
        let a = rng.gen_range(1i32..=num_vars as i32);
        let b = rng.gen_range(1i32..=num_vars as i32);
        for (name, features) in feature_grid() {
            let mut s = scrambled_solver(num_vars, &clauses, features, 0xAB00 + round, false);
            if features.target_phase {
                for v in 0..num_vars {
                    s.set_target_phase(Var::from_index(v), v % 2 == 0);
                }
            }
            for signs in 0..4u32 {
                let cube = [
                    if signs & 1 == 0 { a } else { -a },
                    if signs & 2 == 0 { b } else { -b },
                ];
                let expected = brute_force(num_vars, &clauses, &cube);
                let assumptions: Vec<Lit> = cube.iter().map(|&c| lit_of(c)).collect();
                let result = s.solve(&assumptions);
                match expected {
                    Some(_) => {
                        assert_eq!(
                            result,
                            SolveResult::Sat,
                            "round {round}/{name}: cube {cube:?} should be SAT"
                        );
                        for clause in &clauses {
                            assert!(
                                clause
                                    .iter()
                                    .any(|&c| s.model_value(lit_of(c)) == Some(true)),
                                "round {round}/{name}: model violates {clause:?}"
                            );
                        }
                        for &l in &assumptions {
                            assert_eq!(
                                s.model_value(l),
                                Some(true),
                                "round {round}/{name}: assumption dishonored"
                            );
                        }
                    }
                    None => assert_eq!(
                        result,
                        SolveResult::Unsat,
                        "round {round}/{name}: cube {cube:?} should be UNSAT"
                    ),
                }
            }
        }
    }
}

#[test]
fn chronological_refutations_replay_through_rup_checker() {
    // Fully chronological mode (threshold 0) on scrambled UNSAT formulas:
    // the DRAT log must still replay through the independent checker,
    // proving that out-of-order trails never corrupt clause learning.
    let chrono = SolverFeatures {
        chrono_backtrack: true,
        chrono_threshold: 0,
        ..SolverFeatures::default()
    };
    let mut rng = Rng::seed_from_u64(0x5EA2_F00F);
    let mut refutations = 0;
    for round in 0..80 {
        let (num_vars, clauses) = random_formula(&mut rng);
        if brute_force(num_vars, &clauses, &[]).is_some() {
            continue;
        }
        let mut s = scrambled_solver(num_vars, &clauses, chrono, 0xCB00 + round, true);
        assert_eq!(s.solve(&[]), SolveResult::Unsat, "round {round}");
        let proof = s.take_proof().expect("proof recorded");
        assert!(proof.claims_unsat(), "round {round}");
        assert_eq!(proof.check(), Ok(()), "round {round}: proof rejected");
        refutations += 1;
    }
    assert!(
        refutations >= 10,
        "corpus too easy: {refutations} UNSAT rounds"
    );
}

#[test]
fn pigeonhole_chrono_proof_checks_and_backtracks_chronologically() {
    // PHP(5,4) guarantees deep conflicts; with threshold 0 the chrono
    // path must actually fire, and the refutation must still check.
    let (p, h) = (5usize, 4usize);
    let mut s = Solver::new();
    s.set_features(SolverFeatures {
        chrono_backtrack: true,
        chrono_threshold: 0,
        ..SolverFeatures::default()
    });
    s.enable_proof();
    let x: Vec<Vec<Lit>> = (0..p)
        .map(|_| (0..h).map(|_| Lit::positive(s.new_var())).collect())
        .collect();
    for row in &x {
        s.add_clause(row.iter().copied());
    }
    for p1 in 0..p {
        for p2 in (p1 + 1)..p {
            for (&a, &b) in x[p1].iter().zip(&x[p2]) {
                s.add_clause([!a, !b]);
            }
        }
    }
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    assert!(
        s.stats().chrono_backtracks > 0,
        "threshold 0 must exercise the chronological path"
    );
    let proof = s.take_proof().expect("proof recorded");
    assert!(proof.claims_unsat());
    assert_eq!(proof.check(), Ok(()));
}

#[test]
fn synthesis_refutation_under_chrono_is_rup_checkable() {
    // End-to-end: a QUEKO instance bounded one step below its constructed
    // optimum is UNSAT; with proof logging on and fully chronological
    // backtracking, the layout-synthesis refutation must replay through
    // the RUP checker. The bound enters as a unit *clause* (not an
    // assumption) so the log closes with the empty clause.
    use olsq2::FlatModel;
    let device = grid(3, 3);
    let q = queko_circuit(device.num_qubits(), device.edges(), 4, 16, 21);
    let config = SynthesisConfig {
        swap_duration: 1,
        proof_log: true,
        // A non-incremental build has no window guard, so the refutation
        // needs no assumptions and the log can close with ⊥.
        incremental: false,
        solver_features: SolverFeatures {
            chrono_backtrack: true,
            chrono_threshold: 0,
            ..SolverFeatures::default()
        },
        ..SynthesisConfig::default()
    };
    let mut model =
        FlatModel::build(&q.circuit, &device, &config, q.optimal_depth + 2).expect("builds");
    let too_tight = model.depth_bound(q.optimal_depth - 1);
    model.solver_mut().add_clause([too_tight]);
    assert_eq!(model.solve(&[]), SolveResult::Unsat);
    let proof = model
        .solver_mut()
        .take_proof()
        .expect("proof logging was enabled");
    assert!(proof.claims_unsat());
    assert_eq!(proof.check(), Ok(()), "synthesis refutation rejected");
}
