//! Differential tests for encode-once cohort forking: a member spawned
//! by [`FlatModel::fork`] (via [`ModelSeed`]) must be observationally
//! identical to a freshly encoded member — same SAT/UNSAT verdict at
//! every depth bound, same proven optima out of the portfolio, same
//! behavior across the [`SolverFeatures`] grid — while sharing clauses
//! across one variable-space fence without a single fingerprint drop,
//! and while producing refutations the RUP checker accepts. QAOA, QFT,
//! and QUEKO instances cover the paper's benchmark families.

use std::sync::Arc;

use olsq2::{
    ClauseExchange, CohortEndpoint, CubeParams, CubeSynthesizer, EncodingConfig, FlatModel,
    ModelSeed, Olsq2Synthesizer, PortfolioConfig, PortfolioSynthesizer, Recorder, SharedClausePool,
    SolverDiversification, SolverFeatures, SynthesisConfig,
};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_circuit::generators::{qaoa_circuit, qft_decomposed, queko_circuit};
use olsq2_circuit::{Circuit, DependencyGraph};
use olsq2_layout::verify;
use olsq2_sat::SolveResult;

/// QAOA / QFT / QUEKO instances (name, circuit, device, swap duration).
fn benchmarks() -> Vec<(&'static str, Circuit, CouplingGraph, usize)> {
    let queko_dev = grid(2, 3);
    let queko = queko_circuit(queko_dev.num_qubits(), queko_dev.edges(), 3, 12, 7).circuit;
    vec![
        ("qaoa-4", qaoa_circuit(4, 11), line(4), 1),
        ("qft-4", qft_decomposed(4), line(4), 3),
        ("queko-2x3", queko, queko_dev, 1),
    ]
}

/// Solver feature configurations a fork must behave identically under:
/// the modern default, the legacy baseline, and a mixed point that turns
/// off exactly the features with bespoke per-solver state (ternary watch
/// lists, chronological backtracking) so the fork's state copy is on
/// trial, not just the happy path.
fn features_grid() -> Vec<(&'static str, SolverFeatures)> {
    vec![
        ("modern", SolverFeatures::default()),
        ("legacy", SolverFeatures::legacy()),
        (
            "mixed",
            SolverFeatures {
                ternary_watches: false,
                chrono_backtrack: false,
                ..SolverFeatures::default()
            },
        ),
    ]
}

/// Walks both models down from `t_ub`, comparing the verdict at every
/// depth bound until the first UNSAT (inclusive); SAT layouts must
/// verify on both sides.
fn assert_bound_descent_agrees(
    label: &str,
    circuit: &Circuit,
    device: &CouplingGraph,
    forked: &mut FlatModel,
    fresh: &mut FlatModel,
    t_ub: usize,
) {
    for k in (1..=t_ub).rev() {
        let fork_act = forked.depth_bound(k);
        let fresh_act = fresh.depth_bound(k);
        let fork_res = forked.solve(&[fork_act]);
        let fresh_res = fresh.solve(&[fresh_act]);
        assert_eq!(
            fork_res, fresh_res,
            "{label}: verdict diverged at depth bound {k}"
        );
        match fork_res {
            SolveResult::Sat => {
                for (side, model) in [("forked", &*forked), ("fresh", &*fresh)] {
                    let result = model.extract();
                    assert!(
                        result.depth <= k,
                        "{label} ({side}): depth {} > bound {k}",
                        result.depth
                    );
                    assert_eq!(
                        verify(circuit, device, &result),
                        Ok(()),
                        "{label} ({side}) at bound {k}"
                    );
                }
            }
            SolveResult::Unsat => break,
            SolveResult::Unknown => panic!("{label}: solver returned Unknown at bound {k}"),
        }
    }
}

/// Model-level differential over the benchmark × feature grid: a member
/// forked from a [`ModelSeed`] and a freshly encoded member with the
/// same (diversified) config must report the same verdict at every
/// depth bound down to the first refutation. The member config differs
/// from the template only in diversification, so this also pins the
/// fingerprint contract: diversification must not change the instance
/// fingerprint, or `fork_for` would refuse to serve the member.
#[test]
fn forked_members_match_fresh_builds_across_features() {
    for (name, circuit, device, sd) in &benchmarks() {
        let t_ub = DependencyGraph::new(circuit).longest_chain().max(1) + 2;
        for (fname, features) in features_grid() {
            let mut cfg = SynthesisConfig::with_swap_duration(*sd);
            cfg.solver_features = features;
            let template = FlatModel::build(circuit, device, &cfg, t_ub).expect("template build");
            let seed = ModelSeed::capture(
                template,
                ModelSeed::instance_fingerprint(circuit, device, &cfg),
            );
            for member in 1..=2usize {
                let mut mcfg = cfg.clone();
                mcfg.diversification = SolverDiversification::variant(0xF0CC, member);
                let instance = ModelSeed::instance_fingerprint(circuit, device, &mcfg);
                assert_eq!(
                    instance,
                    seed.instance(),
                    "{name}/{fname}: diversification leaked into the instance fingerprint"
                );
                let mut forked = seed
                    .fork_for(&mcfg, circuit, device, instance, t_ub)
                    .expect("seed serves the same instance at the same window");
                let mut fresh =
                    FlatModel::build(circuit, device, &mcfg, t_ub).expect("fresh build");
                assert_bound_descent_agrees(
                    &format!("{name}/{fname} member {member}"),
                    circuit,
                    device,
                    &mut forked,
                    &mut fresh,
                    t_ub,
                );
            }
        }
    }
}

/// Window-growth differential: a seed captured at a small window must
/// serve a *larger* window by forking and growing the fork in place
/// ([`FlatModel::extend_window`]), and the grown fork must agree with a
/// model freshly built at the large window at every depth bound.
#[test]
fn forked_window_growth_matches_fresh_build() {
    for (name, circuit, device, sd) in &benchmarks() {
        let base_t_ub = DependencyGraph::new(circuit).longest_chain().max(1);
        let grown_t_ub = base_t_ub + 2;
        let cfg = SynthesisConfig::with_swap_duration(*sd);
        let template = FlatModel::build(circuit, device, &cfg, base_t_ub).expect("template build");
        let seed = ModelSeed::capture(
            template,
            ModelSeed::instance_fingerprint(circuit, device, &cfg),
        );
        let mut mcfg = cfg.clone();
        mcfg.diversification = SolverDiversification::variant(0x6B0, 1);
        let mut forked = seed
            .fork_for(&mcfg, circuit, device, seed.instance(), grown_t_ub)
            .expect("incremental seed serves a larger window");
        assert_eq!(forked.t_ub(), grown_t_ub, "{name}: fork did not grow");
        assert_eq!(
            forked.extensions(),
            1,
            "{name}: growth must extend in place"
        );
        let mut fresh = FlatModel::build(circuit, device, &mcfg, grown_t_ub).expect("fresh build");
        assert_bound_descent_agrees(
            &format!("{name} grown fork"),
            circuit,
            device,
            &mut forked,
            &mut fresh,
            grown_t_ub,
        );
    }
}

/// Portfolio-level differential: a diversified same-encoding sharing
/// cohort with encode-once forking on (the default) must land on
/// exactly the optimum the fork-free portfolio and a lone synthesizer
/// report — and the trace must show the fork path actually ran.
#[test]
fn portfolio_optima_agree_with_and_without_fork_spawn() {
    for (name, circuit, device, sd) in &benchmarks() {
        let lone = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(*sd))
            .optimize_depth(circuit, device)
            .expect("lone synthesizer solves");
        assert!(lone.proven_optimal, "{name}: lone optimum not proven");

        let mut reports = Vec::new();
        for fork_spawn in [true, false] {
            let mut base = SynthesisConfig::with_swap_duration(*sd);
            base.fork_spawn = fork_spawn;
            base.recorder = Recorder::new();
            let cfg = PortfolioConfig::standard()
                .with_encodings(vec![EncodingConfig::int()])
                .diversify(3)
                .with_sharing()
                .with_seed(29);
            let report = PortfolioSynthesizer::with_config(base.clone(), &cfg)
                .optimize_depth_report(circuit, device)
                .expect("portfolio solves");
            let forked_spans = base
                .recorder
                .snapshot()
                .spans
                .iter()
                .filter(|s| s.name == "fork")
                .count();
            if fork_spawn {
                assert!(
                    forked_spans >= 2,
                    "{name}: cohort of 3 should fork its 2 non-template members, saw {forked_spans}"
                );
            } else {
                assert_eq!(forked_spans, 0, "{name}: --no-fork path still forked");
            }
            reports.push((fork_spawn, report));
        }
        for (fork_spawn, report) in &reports {
            assert!(
                report.outcome.proven_optimal,
                "{name} (fork_spawn={fork_spawn}): optimum not proven"
            );
            assert_eq!(
                report.outcome.result.depth, lone.result.depth,
                "{name} (fork_spawn={fork_spawn}): portfolio optimum diverged from lone"
            );
            assert_eq!(
                verify(circuit, device, &report.outcome.result),
                Ok(()),
                "{name} (fork_spawn={fork_spawn})"
            );
        }
    }
}

/// Sharing-fence differential: one template plus two forks, all three
/// endpoints aligned at the same depth-bound fence, refute the same
/// sub-optimal bound in turn. Clauses must flow (exports and imports
/// both nonzero) and *nothing* may be dropped by the variable-space
/// fence — a forked member that failed to inherit the template's
/// `(fingerprint, num_vars)` pair, or whose allocation-history chain
/// diverged on the bound request, would show up here as a nonzero
/// filtered count.
#[test]
fn forked_cohort_shares_at_one_fence_without_violations() {
    let device = grid(2, 3);
    let circuit = qaoa_circuit(6, 5);
    let base = SynthesisConfig::with_swap_duration(1);
    let seq = Olsq2Synthesizer::new(base.clone())
        .optimize_depth(&circuit, &device)
        .expect("sequential reference solves");
    assert!(seq.proven_optimal);
    let opt = seq.result.depth;
    assert!(
        opt >= 2,
        "need a refutable sub-optimal bound, optimum is {opt}"
    );

    let pool = Arc::new(SharedClausePool::new(3, 1 << 14));
    let endpoints: Vec<Arc<CohortEndpoint>> = (0..3)
        .map(|i| Arc::new(CohortEndpoint::new(pool.clone(), i, Recorder::disabled())))
        .collect();
    let mut cfg0 = base.clone();
    cfg0.clause_exchange = Some(endpoints[0].clone() as Arc<dyn ClauseExchange>);
    let mut template = FlatModel::build(&circuit, &device, &cfg0, opt + 1).expect("template build");
    let mut cohort = Vec::with_capacity(3);
    for (i, endpoint) in endpoints.iter().enumerate().skip(1) {
        let mut cfg = base.clone();
        cfg.diversification = SolverDiversification::variant(0x5EED, i);
        cfg.clause_exchange = Some(endpoint.clone() as Arc<dyn ClauseExchange>);
        cohort.push(template.fork(&cfg));
    }
    cohort.insert(0, template);

    // Every member requests the bound *before* anyone searches, so all
    // three fences advance through the identical allocation history and
    // end bound to the identical fingerprint.
    let activators: Vec<_> = cohort.iter_mut().map(|m| m.depth_bound(opt - 1)).collect();
    for (i, (member, act)) in cohort.iter_mut().zip(&activators).enumerate() {
        assert_eq!(
            member.solve(&[*act]),
            SolveResult::Unsat,
            "member {i} failed to refute depth {}",
            opt - 1
        );
    }

    let mut exported = 0;
    let mut imported = 0;
    let mut filtered = 0;
    for endpoint in &endpoints {
        let stats = endpoint.stats();
        exported += stats.exported;
        imported += stats.imported;
        filtered += stats.filtered;
    }
    assert!(exported > 0, "no clauses exported across the forked cohort");
    assert!(imported > 0, "no clauses imported across the forked cohort");
    assert_eq!(
        filtered, 0,
        "fingerprint violation: {filtered} clauses dropped by the fence in an aligned cohort"
    );
}

/// Proof differential: refutations produced by forked members must pass
/// the RUP checker — at the model level (a fork of a proof-logging
/// template refutes a sub-optimal bound; the core-lemma log checks) and
/// at the synthesis level (prove-mode cube with forked workers stitches
/// a self-contained optimality certificate).
#[test]
fn forked_unsat_proofs_rup_check() {
    let circuit = qaoa_circuit(4, 42);
    let device = line(4);
    let base = SynthesisConfig::with_swap_duration(1);
    let seq = Olsq2Synthesizer::new(base.clone())
        .optimize_depth(&circuit, &device)
        .expect("sequential reference solves");
    assert!(seq.proven_optimal);
    let opt = seq.result.depth;
    assert!(
        opt >= 2,
        "need a refutable sub-optimal bound, optimum is {opt}"
    );

    let mut cfg = base.clone();
    cfg.proof_log = true;
    let mut template = FlatModel::build(&circuit, &device, &cfg, opt + 1).expect("template build");
    let mut fcfg = cfg.clone();
    fcfg.diversification = SolverDiversification::variant(0xBEEF, 1);
    let mut forked = template.fork(&fcfg);
    forked.solver_mut().set_core_lemmas(true);
    let act = forked.depth_bound(opt - 1);
    assert_eq!(forked.solve(&[act]), SolveResult::Unsat);
    let core = forked.solver_mut().final_conflict().to_vec();
    assert!(!core.is_empty(), "UNSAT under assumptions must name a core");
    let mut proof = forked
        .solver_mut()
        .take_proof()
        .expect("proof logging must survive the fork");
    assert!(proof.num_lemmas() > 0, "refutation recorded no lemmas");
    // Close the log into a refutation of formula ∧ core: the core-lemma
    // pass logged the negated core as the final lemma, so asserting the
    // core assumptions (the bound activator and the window guard) as
    // axioms makes the empty clause RUP — the same move the cube
    // stitcher applies to base assumptions.
    for &a in &core {
        proof.push(olsq2_sat::ProofStep::Original(vec![a]));
    }
    proof.push(olsq2_sat::ProofStep::Empty);
    assert!(proof.claims_unsat());
    proof
        .check()
        .expect("forked member's refutation must RUP-check");

    // Synthesis level: default fork_spawn means workers 1..n of the
    // prove-mode cube cohort are forks; the stitched certificate they
    // contribute to must still check.
    let mut prove_cfg = SynthesisConfig::with_swap_duration(1);
    prove_cfg.recorder = Recorder::new();
    let out = CubeSynthesizer::new(
        prove_cfg.clone(),
        CubeParams {
            workers: 2,
            prove: true,
            ..CubeParams::default()
        },
    )
    .optimize_depth(&circuit, &device)
    .expect("prove-mode cube synthesis");
    assert!(out.outcome.proven_optimal);
    assert_eq!(out.outcome.result.depth, opt);
    let snap = prove_cfg.recorder.snapshot();
    assert!(
        snap.spans.iter().any(|s| s.name == "fork"),
        "prove-mode cohort spawned no forked workers"
    );
    let t_lb = DependencyGraph::new(&circuit).longest_chain().max(1);
    if opt > t_lb {
        let proof = out.proof.expect("stitched optimality certificate");
        assert!(proof.claims_unsat());
        proof
            .check()
            .expect("stitched certificate from forked workers must RUP-check");
    }
}
