//! Commutation-aware synthesis (gate absorption, the paper's ref. [23]):
//! relaxing dependencies between provably commuting gates can only help,
//! and results remain valid under the matching relaxed verifier.

use olsq2::{Olsq2Synthesizer, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::grid;
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_circuit::DependencyGraph;
use olsq2_layout::{verify_with_dag, Violation};

#[test]
fn qaoa_commutation_dag_is_dependency_free() {
    let circuit = qaoa_circuit(8, 3);
    let plain = DependencyGraph::new(&circuit);
    let aware = DependencyGraph::new_with_commutation(&circuit);
    assert!(plain.longest_chain() >= 3);
    assert_eq!(aware.longest_chain(), 1, "ZZ gates all commute");
    assert!(aware.dependencies().is_empty());
}

#[test]
fn commutation_aware_depth_is_no_worse() {
    let circuit = qaoa_circuit(8, 3);
    let device = grid(3, 3);
    let plain = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1))
        .optimize_depth(&circuit, &device)
        .expect("plain solves");
    let mut config = SynthesisConfig::with_swap_duration(1);
    config.commutation_aware = true;
    let aware = Olsq2Synthesizer::new(config)
        .optimize_depth(&circuit, &device)
        .expect("aware solves");
    // The relaxed problem's optimum can only be ≤ the plain optimum.
    assert!(
        aware.result.depth <= plain.result.depth,
        "aware {} > plain {}",
        aware.result.depth,
        plain.result.depth
    );
    // Valid under the relaxed dependency graph...
    let dag = DependencyGraph::new_with_commutation(&circuit);
    assert_eq!(
        verify_with_dag(&circuit, &device, &aware.result, &dag),
        Ok(())
    );
    // ...and any dependency violations against the plain verifier involve
    // only commuting pairs (reordering them is semantically free).
    if let Err(violations) = olsq2_layout::verify(&circuit, &device, &aware.result) {
        for v in violations {
            match v {
                Violation::DependencyViolated { earlier, later } => {
                    assert!(
                        circuit.gate(earlier).commutes_with(circuit.gate(later)),
                        "non-commuting pair reordered"
                    );
                }
                other => panic!("unexpected violation {other:?}"),
            }
        }
    }
}

#[test]
fn commutation_aware_tb_swaps_no_worse() {
    let circuit = qaoa_circuit(6, 5);
    let device = grid(3, 3);
    let plain = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1))
        .optimize_swaps(&circuit, &device)
        .expect("plain solves");
    let mut config = SynthesisConfig::with_swap_duration(1);
    config.commutation_aware = true;
    let aware = TbOlsq2Synthesizer::new(config)
        .optimize_swaps(&circuit, &device)
        .expect("aware solves");
    assert!(aware.outcome.result.swap_count() <= plain.outcome.result.swap_count());
    let dag = DependencyGraph::new_with_commutation(&circuit);
    assert_eq!(
        verify_with_dag(&circuit, &device, &aware.outcome.result, &dag),
        Ok(())
    );
}
