//! All encoding configurations must compute the *same* optima — only their
//! runtime differs (Table I is a pure performance ablation). This pins the
//! semantic equivalence of the one-hot, binary, and inverse-channeling
//! formulations end-to-end.

use olsq2::{EncodingConfig, Olsq2Synthesizer, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::{grid, line};
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_circuit::{Circuit, Gate, GateKind};
use olsq2_layout::verify;

fn configs() -> Vec<(&'static str, EncodingConfig)> {
    vec![
        ("int", EncodingConfig::int()),
        ("bv", EncodingConfig::bv()),
        ("euf_int", EncodingConfig::euf_int()),
        ("euf_bv", EncodingConfig::euf_bv()),
    ]
}

#[test]
fn same_optimal_depth_across_encodings() {
    let circuit = qaoa_circuit(6, 2);
    let device = grid(3, 3);
    let mut depths = Vec::new();
    for (name, enc) in configs() {
        let synth = Olsq2Synthesizer::new(SynthesisConfig {
            encoding: enc,
            swap_duration: 1,
            ..SynthesisConfig::default()
        });
        let out = synth.optimize_depth(&circuit, &device).expect("solves");
        assert!(out.proven_optimal, "{name}");
        assert_eq!(verify(&circuit, &device, &out.result), Ok(()), "{name}");
        depths.push((name, out.result.depth));
    }
    let first = depths[0].1;
    for (name, d) in depths {
        assert_eq!(d, first, "encoding {name} disagreed");
    }
}

#[test]
fn same_optimal_swap_count_across_encodings() {
    let mut circuit = Circuit::new(3);
    circuit.push(Gate::two(GateKind::Cx, 0, 1));
    circuit.push(Gate::two(GateKind::Cx, 1, 2));
    circuit.push(Gate::two(GateKind::Cx, 0, 2));
    let device = line(4);
    let mut counts = Vec::new();
    for (name, enc) in configs() {
        let synth = TbOlsq2Synthesizer::new(SynthesisConfig {
            encoding: enc,
            swap_duration: 1,
            ..SynthesisConfig::default()
        });
        let out = synth.optimize_swaps(&circuit, &device).expect("solves");
        assert!(out.outcome.proven_optimal, "{name}");
        assert_eq!(
            verify(&circuit, &device, &out.outcome.result),
            Ok(()),
            "{name}"
        );
        counts.push((name, out.outcome.result.swap_count()));
    }
    let first = counts[0].1;
    for (name, c) in counts {
        assert_eq!(c, first, "encoding {name} disagreed");
    }
}

#[test]
fn amo_choice_does_not_change_optima() {
    use olsq2_encode::AmoEncoding;
    let circuit = qaoa_circuit(6, 5);
    let device = grid(3, 3);
    let mut depths = Vec::new();
    for amo in [
        AmoEncoding::Pairwise,
        AmoEncoding::Sequential,
        AmoEncoding::Commander,
    ] {
        let mut enc = EncodingConfig::int();
        enc.amo = amo;
        let synth = Olsq2Synthesizer::new(SynthesisConfig {
            encoding: enc,
            swap_duration: 1,
            ..SynthesisConfig::default()
        });
        let out = synth.optimize_depth(&circuit, &device).expect("solves");
        assert!(out.proven_optimal);
        depths.push(out.result.depth);
    }
    assert!(depths.windows(2).all(|w| w[0] == w[1]), "{depths:?}");
}

#[test]
fn cardinality_choice_does_not_change_optima() {
    use olsq2_encode::CardEncoding;
    let mut circuit = Circuit::new(3);
    circuit.push(Gate::two(GateKind::Cx, 0, 1));
    circuit.push(Gate::two(GateKind::Cx, 1, 2));
    circuit.push(Gate::two(GateKind::Cx, 0, 2));
    let device = line(3);
    let mut counts = Vec::new();
    for card in [
        CardEncoding::SequentialCounter,
        CardEncoding::Totalizer,
        CardEncoding::AdderNetwork,
    ] {
        let mut enc = EncodingConfig::int();
        enc.cardinality = card;
        let synth = Olsq2Synthesizer::new(SynthesisConfig {
            encoding: enc,
            swap_duration: 1,
            pareto_relax_limit: Some(1),
            ..SynthesisConfig::default()
        });
        let out = synth.optimize_swaps(&circuit, &device).expect("solves");
        counts.push(out.best.result.swap_count());
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}
