//! Randomized tests over the full synthesis stack: random small circuits
//! on random small devices, every synthesizer's output checked by the
//! five-constraint verifier, and the exact tools' optimality
//! cross-checked against the heuristics. Instances come from a seeded
//! in-repo PRNG for reproducibility.

use olsq2::{Olsq2Synthesizer, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_circuit::{Circuit, Gate, GateKind};
use olsq2_heuristic::{sabre_route, satmap_route, SabreConfig, SatMapConfig};
use olsq2_layout::verify;
use olsq2_prng::Rng;

/// A random circuit over `nq` qubits with up to `max_gates` two-qubit gates.
fn random_circuit(rng: &mut Rng, nq: usize, max_gates: usize) -> Circuit {
    let len = rng.gen_range(1usize..=max_gates);
    let mut c = Circuit::new(nq);
    for _ in 0..len {
        let a = rng.gen_range(0..nq as u16);
        let b = rng.gen_range(0..nq as u16);
        if a != b {
            c.push(Gate::two(GateKind::Cx, a, b));
        }
    }
    if c.is_empty() {
        c.push(Gate::two(GateKind::Cx, 0, 1));
    }
    c
}

fn devices() -> Vec<CouplingGraph> {
    vec![line(4), grid(2, 2), grid(2, 3)]
}

#[test]
fn every_synthesizer_produces_verified_layouts() {
    let mut rng = Rng::seed_from_u64(0x5717_0001);
    for round in 0..12 {
        let circuit = random_circuit(&mut rng, 4, 6);
        let device = &devices()[rng.gen_range(0usize..3)];

        let sabre_cfg = SabreConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let sabre = sabre_route(&circuit, device, &sabre_cfg).expect("sabre routes");
        assert_eq!(verify(&circuit, device, &sabre), Ok(()), "round {round}");

        let sm = SatMapConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let satmap = satmap_route(&circuit, device, &sm).expect("satmap maps");
        assert_eq!(
            verify(&circuit, device, &satmap.result),
            Ok(()),
            "round {round}"
        );

        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let depth_opt = synth
            .optimize_depth(&circuit, device)
            .expect("olsq2 solves");
        assert!(depth_opt.proven_optimal, "round {round}");
        assert_eq!(
            verify(&circuit, device, &depth_opt.result),
            Ok(()),
            "round {round}"
        );
        // Optimal depth can never exceed SABRE's.
        assert!(depth_opt.result.depth <= sabre.depth, "round {round}");

        let tb = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let swap_opt = tb.optimize_swaps(&circuit, device).expect("tb solves");
        assert!(swap_opt.outcome.proven_optimal, "round {round}");
        assert_eq!(
            verify(&circuit, device, &swap_opt.outcome.result),
            Ok(()),
            "round {round}"
        );
        // Proven-optimal swap count is a lower bound for every heuristic.
        let optimal = swap_opt.outcome.result.swap_count();
        assert!(sabre.swap_count() >= optimal, "round {round}");
        assert!(satmap.result.swap_count() >= optimal, "round {round}");
    }
}

#[test]
fn depth_optimum_at_least_longest_chain() {
    let mut rng = Rng::seed_from_u64(0x5717_0002);
    for round in 0..12 {
        let circuit = random_circuit(&mut rng, 4, 5);
        let device = grid(2, 2);
        let dag = olsq2_circuit::DependencyGraph::new(&circuit);
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth.optimize_depth(&circuit, &device).expect("solves");
        assert!(out.result.depth >= dag.longest_chain(), "round {round}");
    }
}
