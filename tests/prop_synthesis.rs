//! Property tests over the full synthesis stack: random small circuits on
//! random small devices, every synthesizer's output checked by the
//! five-constraint verifier, and the exact tools' optimality
//! cross-checked against the heuristics.

use olsq2::{Olsq2Synthesizer, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_circuit::{Circuit, Gate, GateKind};
use olsq2_heuristic::{sabre_route, satmap_route, SabreConfig, SatMapConfig};
use olsq2_layout::verify;
use proptest::prelude::*;

/// A random circuit over `nq` qubits with `len` two-qubit gates.
fn arb_circuit(nq: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec((0..nq as u16, 0..nq as u16), 1..=max_gates).prop_map(
        move |pairs| {
            let mut c = Circuit::new(nq);
            for (a, b) in pairs {
                if a != b {
                    c.push(Gate::two(GateKind::Cx, a, b));
                }
            }
            if c.is_empty() {
                c.push(Gate::two(GateKind::Cx, 0, 1));
            }
            c
        },
    )
}

fn devices() -> Vec<CouplingGraph> {
    vec![line(4), grid(2, 2), grid(2, 3)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_synthesizer_produces_verified_layouts(
        circuit in arb_circuit(4, 6),
        device_idx in 0usize..3,
    ) {
        let device = &devices()[device_idx];

        let mut sabre_cfg = SabreConfig::default();
        sabre_cfg.swap_duration = 1;
        let sabre = sabre_route(&circuit, device, &sabre_cfg).expect("sabre routes");
        prop_assert_eq!(verify(&circuit, device, &sabre), Ok(()));

        let mut sm = SatMapConfig::default();
        sm.swap_duration = 1;
        let satmap = satmap_route(&circuit, device, &sm).expect("satmap maps");
        prop_assert_eq!(verify(&circuit, device, &satmap.result), Ok(()));

        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let depth_opt = synth.optimize_depth(&circuit, device).expect("olsq2 solves");
        prop_assert!(depth_opt.proven_optimal);
        prop_assert_eq!(verify(&circuit, device, &depth_opt.result), Ok(()));
        // Optimal depth can never exceed SABRE's.
        prop_assert!(depth_opt.result.depth <= sabre.depth);

        let tb = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let swap_opt = tb.optimize_swaps(&circuit, device).expect("tb solves");
        prop_assert!(swap_opt.outcome.proven_optimal);
        prop_assert_eq!(verify(&circuit, device, &swap_opt.outcome.result), Ok(()));
        // Proven-optimal swap count is a lower bound for every heuristic.
        let optimal = swap_opt.outcome.result.swap_count();
        prop_assert!(sabre.swap_count() >= optimal);
        prop_assert!(satmap.result.swap_count() >= optimal);
    }

    #[test]
    fn depth_optimum_at_least_longest_chain(circuit in arb_circuit(4, 5)) {
        let device = grid(2, 2);
        let dag = olsq2_circuit::DependencyGraph::new(&circuit);
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth.optimize_depth(&circuit, &device).expect("solves");
        prop_assert!(out.result.depth >= dag.longest_chain());
    }
}
