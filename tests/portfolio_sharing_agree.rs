//! Differential property tests for the sharing/diversified portfolio:
//! on seeded random circuits and devices, the optima reported with
//! clause sharing on, sharing off, diversified, and by a lone
//! `Olsq2Synthesizer` must be identical — sharing may only change *who
//! wins and how fast*, never the answer — and every layout must pass
//! the five-constraint verifier. A QAOA benchmark asserts the sharing
//! path is actually exercised (nonzero imported clauses), so these
//! tests cannot silently pass against dead wiring.

use olsq2::{
    EncodingConfig, Olsq2Synthesizer, PortfolioConfig, PortfolioSynthesizer, SynthesisConfig,
};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_circuit::{Circuit, Gate, GateKind};
use olsq2_layout::verify;
use olsq2_prng::Rng;

fn random_circuit(rng: &mut Rng, nq: usize, max_gates: usize) -> Circuit {
    let len = rng.gen_range(1usize..=max_gates);
    let mut c = Circuit::new(nq);
    for _ in 0..len {
        let a = rng.gen_range(0..nq as u16);
        let b = rng.gen_range(0..nq as u16);
        if a != b {
            c.push(Gate::two(GateKind::Cx, a, b));
        }
    }
    if c.is_empty() {
        c.push(Gate::two(GateKind::Cx, 0, 1));
    }
    c
}

fn devices() -> Vec<CouplingGraph> {
    vec![line(4), grid(2, 2), grid(2, 3)]
}

fn sharing_portfolio(base: &SynthesisConfig, share: bool, seed: u64) -> PortfolioSynthesizer {
    let mut cfg = PortfolioConfig::standard()
        .with_encodings(vec![EncodingConfig::int(), EncodingConfig::bv()])
        .diversify(2)
        .with_seed(seed);
    if share {
        cfg = cfg.with_sharing();
    }
    PortfolioSynthesizer::with_config(base.clone(), &cfg)
}

#[test]
fn depth_optima_agree_with_sharing_on_off_and_single() {
    let mut rng = Rng::seed_from_u64(0x5A2E_0001);
    for round in 0..10 {
        let circuit = random_circuit(&mut rng, 4, 6);
        let device = &devices()[rng.gen_range(0usize..3)];
        let base = SynthesisConfig::with_swap_duration(1);

        let single = Olsq2Synthesizer::new(base.clone())
            .optimize_depth(&circuit, device)
            .expect("single solves");
        assert!(single.proven_optimal, "round {round}");

        let off = sharing_portfolio(&base, false, round)
            .optimize_depth_report(&circuit, device)
            .expect("sharing-off portfolio solves");
        let on = sharing_portfolio(&base, true, round)
            .optimize_depth_report(&circuit, device)
            .expect("sharing-on portfolio solves");

        assert_eq!(
            single.result.depth, off.outcome.result.depth,
            "round {round}: sharing-off depth diverged from single"
        );
        assert_eq!(
            single.result.depth, on.outcome.result.depth,
            "round {round}: sharing-on depth diverged from single"
        );
        assert!(off.sharing.is_none(), "round {round}");
        assert!(on.sharing.is_some(), "round {round}");
        for (label, outcome) in [("off", &off.outcome), ("on", &on.outcome)] {
            assert!(outcome.proven_optimal, "round {round} ({label})");
            assert_eq!(
                verify(&circuit, device, &outcome.result),
                Ok(()),
                "round {round} ({label})"
            );
        }
    }
}

#[test]
fn swap_optima_agree_with_sharing_on_off_and_single() {
    let mut rng = Rng::seed_from_u64(0x5A2E_0002);
    for round in 0..4 {
        let circuit = random_circuit(&mut rng, 4, 5);
        let device = &devices()[rng.gen_range(0usize..3)];
        let mut base = SynthesisConfig::with_swap_duration(1);
        base.pareto_relax_limit = Some(0);

        let single = Olsq2Synthesizer::new(base.clone())
            .optimize_swaps(&circuit, device)
            .expect("single solves")
            .best;
        let off = sharing_portfolio(&base, false, round)
            .optimize_swaps_report(&circuit, device)
            .expect("sharing-off portfolio solves");
        let on = sharing_portfolio(&base, true, round)
            .optimize_swaps_report(&circuit, device)
            .expect("sharing-on portfolio solves");

        let reference = single.result.swap_count();
        assert_eq!(
            reference,
            off.outcome.result.swap_count(),
            "round {round}: sharing-off swap count diverged"
        );
        assert_eq!(
            reference,
            on.outcome.result.swap_count(),
            "round {round}: sharing-on swap count diverged"
        );
        for (label, outcome) in [("off", &off.outcome), ("on", &on.outcome)] {
            assert_eq!(
                verify(&circuit, device, &outcome.result),
                Ok(()),
                "round {round} ({label})"
            );
        }
    }
}

#[test]
fn sharing_is_exercised_on_qaoa_benchmark() {
    // A same-encoding cohort of 3 on a QAOA instance big enough that
    // members restart and learn short clauses: the report must show a
    // nonzero imported-clause count, proving the pool is live (not just
    // wired) on a realistic benchmark.
    let circuit = qaoa_circuit(8, 5);
    let device = grid(3, 3);
    let mut base = SynthesisConfig::with_swap_duration(1);
    base.pareto_relax_limit = Some(0);
    let cfg = PortfolioConfig::standard()
        .with_encodings(vec![EncodingConfig::int()])
        .diversify(3)
        .with_sharing()
        .with_seed(17);
    let report = PortfolioSynthesizer::with_config(base, &cfg)
        .optimize_swaps_report(&circuit, &device)
        .expect("portfolio solves");
    assert_eq!(verify(&circuit, &device, &report.outcome.result), Ok(()));
    let stats = report.sharing.expect("sharing was enabled");
    assert!(
        stats.exported > 0,
        "no clauses exported on a QAOA benchmark: {stats:?}"
    );
    assert!(
        stats.imported > 0,
        "no clauses imported on a QAOA benchmark: {stats:?}"
    );
}
