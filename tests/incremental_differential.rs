//! Differential tests for the zero-rebuild incremental encoding: a model
//! extended in place across window growth must be indistinguishable — at
//! every bound, not just the optimum — from a model freshly built at the
//! same window, for both the flat OLSQ2 formulation and TB-OLSQ2, and the
//! diversified sharing portfolio must report the same optima with the
//! incremental path on as a lone rebuild-only synthesizer. Every layout
//! must pass the five-constraint verifier.

use olsq2::{
    EncodingConfig, FlatModel, Olsq2Synthesizer, PortfolioConfig, PortfolioSynthesizer,
    SynthesisConfig, TbOlsq2Synthesizer,
};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_circuit::{Circuit, Gate, GateKind};
use olsq2_layout::verify;
use olsq2_prng::Rng;
use olsq2_sat::SolveResult;

fn random_circuit(rng: &mut Rng, nq: usize, max_gates: usize) -> Circuit {
    let len = rng.gen_range(1usize..=max_gates);
    let mut c = Circuit::new(nq);
    for _ in 0..len {
        let a = rng.gen_range(0..nq as u16);
        let b = rng.gen_range(0..nq as u16);
        if a != b {
            c.push(Gate::two(GateKind::Cx, a, b));
        }
    }
    if c.is_empty() {
        c.push(Gate::two(GateKind::Cx, 0, 1));
    }
    c
}

fn devices() -> Vec<CouplingGraph> {
    vec![line(4), grid(2, 2), grid(2, 3)]
}

/// Model-level differential: grow one model 3→5→7→9 in place and after
/// every growth step compare it against a fresh build at the same window —
/// the SAT/UNSAT verdict must agree at *every* depth bound in the window,
/// and both extracted layouts must verify. Three growth steps per round
/// exercise guard chaining (generation N's guard falsified by N+1).
#[test]
fn extended_flat_model_matches_fresh_build_at_every_depth() {
    let mut rng = Rng::seed_from_u64(0x1AC4_0001);
    for round in 0..6 {
        let circuit = random_circuit(&mut rng, 4, 7);
        let device = &devices()[rng.gen_range(0usize..3)];
        let inc_cfg = SynthesisConfig::with_swap_duration(1);
        let mut fresh_cfg = inc_cfg.clone();
        fresh_cfg.incremental = false;

        let mut extended =
            FlatModel::build(&circuit, device, &inc_cfg, 3).expect("incremental build");
        for (step, new_t_ub) in [5usize, 7, 9].into_iter().enumerate() {
            assert!(
                extended.extend_window(&circuit, device, new_t_ub),
                "round {round} step {step}: extension refused"
            );
            let mut fresh =
                FlatModel::build(&circuit, device, &fresh_cfg, new_t_ub).expect("fresh build");
            for k in 1..=new_t_ub {
                let ext_act = extended.depth_bound(k);
                let fresh_act = fresh.depth_bound(k);
                let ext_res = extended.solve(&[ext_act]);
                let fresh_res = fresh.solve(&[fresh_act]);
                assert_eq!(
                    ext_res, fresh_res,
                    "round {round} step {step}: verdict diverged at depth bound {k}"
                );
                if ext_res == SolveResult::Sat {
                    for (label, result) in
                        [("extended", extended.extract()), ("fresh", fresh.extract())]
                    {
                        assert!(
                            result.depth <= k,
                            "round {round} step {step} ({label}): depth {} > bound {k}",
                            result.depth
                        );
                        assert_eq!(
                            verify(&circuit, device, &result),
                            Ok(()),
                            "round {round} step {step} ({label}) at bound {k}"
                        );
                    }
                }
            }
        }
        assert_eq!(extended.extensions(), 3, "round {round}");
    }
}

/// TB-OLSQ2 differential: block and SWAP optimization with the incremental
/// block-window extension on must report the same block counts and SWAP
/// counts as the rebuild-on-growth path.
#[test]
fn tb_incremental_and_rebuild_agree() {
    let mut rng = Rng::seed_from_u64(0x1AC4_0002);
    for round in 0..5 {
        let circuit = random_circuit(&mut rng, 4, 6);
        let device = &devices()[rng.gen_range(0usize..3)];
        let on = SynthesisConfig::with_swap_duration(1);
        let mut off = on.clone();
        off.incremental = false;

        let blocks_on = TbOlsq2Synthesizer::new(on.clone())
            .optimize_blocks(&circuit, device)
            .expect("incremental block optimization");
        let blocks_off = TbOlsq2Synthesizer::new(off.clone())
            .optimize_blocks(&circuit, device)
            .expect("rebuild block optimization");
        assert_eq!(
            blocks_on.block_count, blocks_off.block_count,
            "round {round}: block optimum diverged"
        );
        assert_eq!(blocks_off.outcome.extensions, 0, "round {round}");

        let swaps_on = TbOlsq2Synthesizer::new(on)
            .optimize_swaps(&circuit, device)
            .expect("incremental swap optimization");
        let swaps_off = TbOlsq2Synthesizer::new(off)
            .optimize_swaps(&circuit, device)
            .expect("rebuild swap optimization");
        assert_eq!(
            swaps_on.outcome.result.swap_count(),
            swaps_off.outcome.result.swap_count(),
            "round {round}: swap optimum diverged"
        );
        for (label, tb) in [
            ("blocks on", &blocks_on),
            ("blocks off", &blocks_off),
            ("swaps on", &swaps_on),
            ("swaps off", &swaps_off),
        ] {
            assert_eq!(
                verify(&circuit, device, &tb.outcome.result),
                Ok(()),
                "round {round} ({label})"
            );
        }
    }
}

/// Synthesizer-level differential with growth forced: a tight initial
/// window (`tub_factor = 1.0`, SWAP duration 3) makes phase-1 relaxation
/// outgrow the window, so the incremental runs must actually extend —
/// and still land on exactly the rebuild path's optima.
#[test]
fn forced_window_growth_extends_and_agrees() {
    let mut rng = Rng::seed_from_u64(0x1AC4_0003);
    let mut total_extensions = 0usize;
    for round in 0..6 {
        let circuit = random_circuit(&mut rng, 4, 8);
        let device = line(4);
        let mut on = SynthesisConfig::with_swap_duration(3);
        on.tub_factor = 1.0;
        let mut off = on.clone();
        off.incremental = false;

        let a = Olsq2Synthesizer::new(on)
            .optimize_depth(&circuit, &device)
            .expect("incremental depth optimization");
        let b = Olsq2Synthesizer::new(off)
            .optimize_depth(&circuit, &device)
            .expect("rebuild depth optimization");
        assert!(a.proven_optimal && b.proven_optimal, "round {round}");
        assert_eq!(
            a.result.depth, b.result.depth,
            "round {round}: depth optimum diverged"
        );
        assert_eq!(b.extensions, 0, "round {round}: rebuild path extended");
        for (label, out) in [("incremental", &a), ("rebuild", &b)] {
            assert_eq!(
                verify(&circuit, &device, &out.result),
                Ok(()),
                "round {round} ({label})"
            );
        }
        total_extensions += a.extensions;
    }
    assert!(
        total_extensions >= 1,
        "no round triggered a window extension: the growth path went untested"
    );
}

/// Sharing-fuzz-style round: a diversified same-encoding cohort with
/// clause sharing on and a tight initial window, so learned clauses are
/// imported while members extend their windows in place. The portfolio
/// optimum must match a lone rebuild-only synthesizer, and the sharing
/// stats must prove imports actually happened.
#[test]
fn sharing_portfolio_agrees_and_imports_across_extensions() {
    let circuit = qaoa_circuit(8, 5);
    let device = grid(3, 3);
    let mut base = SynthesisConfig::with_swap_duration(1);
    base.pareto_relax_limit = Some(0);
    base.tub_factor = 1.0;
    let mut lone_cfg = base.clone();
    lone_cfg.incremental = false;

    let lone = Olsq2Synthesizer::new(lone_cfg)
        .optimize_swaps(&circuit, &device)
        .expect("lone rebuild-only synthesizer solves")
        .best;
    assert_eq!(lone.extensions, 0);

    let cfg = PortfolioConfig::standard()
        .with_encodings(vec![EncodingConfig::int()])
        .diversify(3)
        .with_sharing()
        .with_seed(23);
    let report = PortfolioSynthesizer::with_config(base, &cfg)
        .optimize_swaps_report(&circuit, &device)
        .expect("sharing portfolio solves");
    assert_eq!(
        report.outcome.result.swap_count(),
        lone.result.swap_count(),
        "sharing + incremental diverged from rebuild-only reference"
    );
    assert_eq!(verify(&circuit, &device, &report.outcome.result), Ok(()));
    let stats = report.sharing.expect("sharing was enabled");
    assert!(
        stats.imported > 0,
        "no clauses imported across the cohort: {stats:?}"
    );
}
