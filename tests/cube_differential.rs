//! Differential tests for the cube-and-conquer subsystem: on every
//! instance the cube engine must report exactly the verdict a single
//! sequential solver reports — for seeded CNF fuzzer families (random
//! 3-SAT, one-hot structured instances, instances under standing
//! assumptions) across several worker/split-depth configurations — and
//! `CubeSynthesizer` must report the same optimum as the sequential
//! synthesizer on real benchmarks. UNSAT instances are re-run in prove
//! mode and the stitched refutation is checked.

use olsq2::{CubeParams, CubeSynthesizer, Olsq2Synthesizer, SynthesisConfig};
use olsq2_arch::line;
use olsq2_circuit::generators::{qaoa_circuit, qft_decomposed};
use olsq2_cube::{solve_cubes, CubeConfig, SatCubeSolver, SplitGroup};
use olsq2_layout::verify;
use olsq2_obs::Recorder;
use olsq2_prng::Rng;
use olsq2_sat::{Lit, SolveResult, Solver, Var};

fn lit(v: usize) -> Lit {
    Lit::positive(Var::from_index(v))
}

/// Worker/depth grid each instance is solved under. Depth 1 with one
/// worker degenerates to plain sequential search inside the engine;
/// the larger cells exercise stealing and re-splitting.
const CONFIGS: &[(usize, usize)] = &[(1, 1), (2, 2), (4, 3)];

fn random_3sat(rng: &mut Rng, n: usize, m: usize) -> Vec<Vec<Lit>> {
    let mut clauses = Vec::with_capacity(m);
    for _ in 0..m {
        let mut vars = [0usize; 3];
        loop {
            for v in &mut vars {
                *v = rng.gen_range(0..n);
            }
            if vars[0] != vars[1] && vars[1] != vars[2] && vars[0] != vars[2] {
                break;
            }
        }
        clauses.push(
            vars.iter()
                .map(|&v| if rng.gen_bool(0.5) { lit(v) } else { !lit(v) })
                .collect(),
        );
    }
    clauses
}

fn sequential_verdict(num_vars: usize, clauses: &[Vec<Lit>], assumptions: &[Lit]) -> SolveResult {
    let mut solver = Solver::new();
    while solver.num_vars() < num_vars {
        solver.new_var();
    }
    for c in clauses {
        solver.add_clause(c.iter().copied());
    }
    solver.solve(assumptions)
}

/// Asserts the SAT witness's model satisfies every clause under the
/// standing assumptions.
fn check_model(worker: &SatCubeSolver, clauses: &[Vec<Lit>], assumptions: &[Lit]) {
    for a in assumptions {
        assert_eq!(
            worker.solver().model_value(*a),
            Some(true),
            "assumption violated"
        );
    }
    for (i, c) in clauses.iter().enumerate() {
        assert!(
            c.iter()
                .any(|&l| worker.solver().model_value(l) == Some(true)),
            "clause {i} unsatisfied by cube witness"
        );
    }
}

/// Runs the cube engine over `clauses` under every config in
/// [`CONFIGS`] and asserts each verdict equals `expected`; on UNSAT the
/// instance is additionally re-solved in prove mode (single config) and
/// the stitched refutation checked.
fn assert_cube_matches(
    label: &str,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    hints: &[SplitGroup],
    assumptions: &[Lit],
    expected: SolveResult,
) {
    for &(workers, depth) in CONFIGS {
        let cfg = CubeConfig {
            workers,
            depth,
            conflict_budget: 500,
            ..CubeConfig::default()
        };
        let run = solve_cubes(
            |_| {
                let mut w = SatCubeSolver::new(num_vars, clauses, false);
                w.set_base(assumptions.to_vec());
                for g in hints {
                    w.add_hint(g.clone());
                }
                w
            },
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(
            run.result, expected,
            "{label}: cube (workers={workers}, depth={depth}) disagrees with sequential"
        );
        if expected == SolveResult::Sat {
            check_model(
                run.witness().expect("SAT run carries a witness"),
                clauses,
                assumptions,
            );
        }
    }
    if expected == SolveResult::Unsat && assumptions.is_empty() {
        let cfg = CubeConfig {
            workers: 2,
            depth: 2,
            prove: true,
            ..CubeConfig::default()
        };
        let run = solve_cubes(
            |_| {
                let mut w = SatCubeSolver::new(num_vars, clauses, true);
                for g in hints {
                    w.add_hint(g.clone());
                }
                w
            },
            &cfg,
            &Recorder::disabled(),
        );
        assert_eq!(
            run.result,
            SolveResult::Unsat,
            "{label}: prove-mode verdict flipped"
        );
        let proof = run
            .proof
            .expect("prove-mode UNSAT carries a stitched proof");
        assert!(
            proof.check().is_ok(),
            "{label}: stitched refutation rejected by the checker"
        );
    }
}

/// Family A: random 3-SAT around the phase transition (clause/variable
/// ratio swept 3.5–5.0 so both verdicts occur). No split hints — the
/// splitter falls back to VSIDS variable cubes.
#[test]
fn random_3sat_matches_sequential_across_configs() {
    let mut rng = Rng::seed_from_u64(0xC0BE_0001);
    let mut sat = 0;
    let mut unsat = 0;
    for round in 0..24 {
        let n = rng.gen_range(8usize..=14);
        let m = n * 7 / 2 + rng.gen_range(0..=n * 3 / 2);
        let clauses = random_3sat(&mut rng, n, m);
        let expected = sequential_verdict(n, &clauses, &[]);
        match expected {
            SolveResult::Sat => sat += 1,
            SolveResult::Unsat => unsat += 1,
            SolveResult::Unknown => panic!("sequential solver returned Unknown"),
        }
        assert_cube_matches(
            &format!("3sat round {round}"),
            n,
            &clauses,
            &[],
            &[],
            expected,
        );
    }
    assert!(
        sat > 0 && unsat > 0,
        "fuzzer family must cover both verdicts (sat={sat}, unsat={unsat})"
    );
}

/// Family B: one-hot structured instances — `k` exactly-one groups plus
/// random implications between group members, mirroring the mapping
/// constraints the synthesis encoder emits. Groups are registered as
/// split hints, so the lookahead splitter's one-hot path is on trial.
#[test]
fn one_hot_instances_with_hints_match_sequential() {
    let mut rng = Rng::seed_from_u64(0xC0BE_0002);
    let mut sat = 0;
    let mut unsat = 0;
    for round in 0..16 {
        let groups = rng.gen_range(3usize..=5);
        let width = rng.gen_range(3usize..=4);
        let n = groups * width;
        let member = |g: usize, i: usize| lit(g * width + i);
        let mut clauses = Vec::new();
        let mut hints = Vec::new();
        for g in 0..groups {
            let row: Vec<Lit> = (0..width).map(|i| member(g, i)).collect();
            clauses.push(row.clone());
            for a in 0..width {
                for b in a + 1..width {
                    clauses.push(vec![!row[a], !row[b]]);
                }
            }
            hints.push(SplitGroup {
                family: olsq2_encode::ConstraintFamily::Mapping,
                lits: row,
            });
        }
        // Random implications member(g1, i) -> ¬member(g2, j): enough of
        // them over-constrains the instance into UNSAT.
        let conflicts = rng.gen_range(n * 2..n * 10);
        for _ in 0..conflicts {
            let g1 = rng.gen_range(0..groups);
            let g2 = rng.gen_range(0..groups);
            if g1 == g2 {
                continue;
            }
            let i = rng.gen_range(0..width);
            let j = rng.gen_range(0..width);
            clauses.push(vec![!member(g1, i), !member(g2, j)]);
        }
        let expected = sequential_verdict(n, &clauses, &[]);
        match expected {
            SolveResult::Sat => sat += 1,
            SolveResult::Unsat => unsat += 1,
            SolveResult::Unknown => panic!("sequential solver returned Unknown"),
        }
        assert_cube_matches(
            &format!("one-hot round {round}"),
            n,
            &clauses,
            &hints,
            &[],
            expected,
        );
    }
    assert!(
        sat > 0 && unsat > 0,
        "fuzzer family must cover both verdicts (sat={sat}, unsat={unsat})"
    );
}

/// Family C: random 3-SAT under standing base assumptions — every cube
/// must inherit the base, and `solve(assumptions)` on the sequential
/// side is the reference.
#[test]
fn standing_assumptions_match_sequential() {
    let mut rng = Rng::seed_from_u64(0xC0BE_0003);
    for round in 0..12 {
        let n = rng.gen_range(8usize..=12);
        let m = n * 4;
        let clauses = random_3sat(&mut rng, n, m);
        let picks = rng.gen_range(1usize..=3);
        let mut assumptions = Vec::new();
        for _ in 0..picks {
            let v = rng.gen_range(0..n);
            if assumptions
                .iter()
                .all(|a: &Lit| a.var() != Var::from_index(v))
            {
                assumptions.push(if rng.gen_bool(0.5) { lit(v) } else { !lit(v) });
            }
        }
        let expected = sequential_verdict(n, &clauses, &assumptions);
        if expected == SolveResult::Unknown {
            panic!("sequential solver returned Unknown");
        }
        assert_cube_matches(
            &format!("assumption round {round}"),
            n,
            &clauses,
            &[],
            &assumptions,
            expected,
        );
    }
}

/// Synthesis benchmarks: the cube synthesizer must land on the same
/// proven optimum as the sequential one (which decides the same SAT/
/// UNSAT questions bound by bound), its layout must pass the verifier,
/// and in prove mode it must hand back a checkable refutation of
/// `depth ≤ optimum − 1`.
#[test]
fn synthesis_optima_match_sequential() {
    let benchmarks = [
        ("qaoa-4", qaoa_circuit(4, 42), line(4), 1usize),
        ("qft-4", qft_decomposed(4), line(4), 3),
    ];
    for (name, circuit, device, swap_duration) in &benchmarks {
        let config = SynthesisConfig::with_swap_duration(*swap_duration);
        let seq = Olsq2Synthesizer::new(config.clone())
            .optimize_depth(circuit, device)
            .expect("sequential synthesis");
        assert!(seq.proven_optimal, "{name}: sequential optimum not proven");

        for &(workers, depth) in &[(2usize, 2usize), (4, 3)] {
            let params = CubeParams {
                workers,
                depth,
                ..CubeParams::default()
            };
            let cube = CubeSynthesizer::new(config.clone(), params)
                .optimize_depth(circuit, device)
                .expect("cube synthesis");
            assert!(
                cube.outcome.proven_optimal,
                "{name}: cube optimum not proven"
            );
            assert_eq!(
                cube.outcome.result.depth, seq.result.depth,
                "{name}: cube (workers={workers}, depth={depth}) found a different optimum"
            );
            assert_eq!(
                verify(circuit, device, &cube.outcome.result),
                Ok(()),
                "{name}: cube layout failed verification"
            );
        }

        let prove_params = CubeParams {
            workers: 2,
            prove: true,
            ..CubeParams::default()
        };
        let proved = CubeSynthesizer::new(config.clone(), prove_params)
            .optimize_depth(circuit, device)
            .expect("prove-mode cube synthesis");
        assert_eq!(proved.outcome.result.depth, seq.result.depth);
        if let Some(proof) = proved.proof {
            assert!(
                proof.check().is_ok(),
                "{name}: stitched optimality proof rejected"
            );
        } else {
            // The optimum can sit exactly on the transition lower bound,
            // in which case no depth-decrement query ran and there is
            // nothing to refute.
            assert!(
                !proved.outcome.proven_optimal || proved.outcome.result.depth > 0,
                "{name}: missing proof without a lower-bound explanation"
            );
        }
    }
}
