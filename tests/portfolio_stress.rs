//! Stress test for the shared clause pool under cooperative
//! cancellation: an 8-member diversified portfolio (two encodings × four
//! seed-diversified members, sharing on) races repeatedly, so losing
//! members are cancelled mid-solve while their cohort mates are still
//! publishing into and draining the shared pool. CI runs this in both
//! debug and `--release` to exercise the pool's atomics under different
//! instruction interleavings. Every race must produce exactly one
//! winner, a verified layout, and the same optimum as a lone solver.

use olsq2::{
    EncodingConfig, MemberOutcome, Olsq2Synthesizer, PortfolioConfig, PortfolioSynthesizer,
    SynthesisConfig,
};
use olsq2_arch::{grid, line, CouplingGraph};
use olsq2_circuit::{Circuit, Gate, GateKind};
use olsq2_layout::verify;
use olsq2_prng::Rng;

fn random_circuit(rng: &mut Rng, nq: usize, max_gates: usize) -> Circuit {
    let len = rng.gen_range(2usize..=max_gates);
    let mut c = Circuit::new(nq);
    for _ in 0..len {
        let a = rng.gen_range(0..nq as u16);
        let b = rng.gen_range(0..nq as u16);
        if a != b {
            c.push(Gate::two(GateKind::Cx, a, b));
        }
    }
    if c.is_empty() {
        c.push(Gate::two(GateKind::Cx, 0, 1));
    }
    c
}

#[test]
fn eight_member_sharing_portfolio_under_cancellation() {
    let devices: Vec<CouplingGraph> = vec![line(4), grid(2, 2), grid(2, 3)];
    let mut rng = Rng::seed_from_u64(0x57E5_0001);
    let cfg = PortfolioConfig::standard()
        .with_encodings(vec![EncodingConfig::int(), EncodingConfig::bv()])
        .diversify(4)
        .with_sharing()
        .with_seed(0x57E5);
    let mut cancelled_total = 0usize;
    for round in 0..6 {
        let circuit = random_circuit(&mut rng, 4, 6);
        let device = &devices[rng.gen_range(0usize..3)];
        let base = SynthesisConfig::with_swap_duration(1);

        let reference = Olsq2Synthesizer::new(base.clone())
            .optimize_depth(&circuit, device)
            .expect("reference solves");

        let portfolio = PortfolioSynthesizer::with_config(base, &cfg);
        assert_eq!(portfolio.num_members(), 8);
        let report = portfolio
            .optimize_depth_report(&circuit, device)
            .expect("portfolio solves");

        // Exactly one winner, every member accounted for.
        assert_eq!(report.members.len(), 8, "round {round}");
        let winners = report
            .members
            .iter()
            .filter(|m| matches!(m, MemberOutcome::Won(_)))
            .count();
        assert_eq!(winners, 1, "round {round}: want exactly one winner");
        assert!(
            report.members[report.winner].is_winner(),
            "round {round}: winner index mismatch"
        );
        cancelled_total += report.members.iter().filter(|m| m.is_cancelled()).count();
        // No member may fail outright on a solvable instance.
        for (i, m) in report.members.iter().enumerate() {
            assert!(
                !matches!(m, MemberOutcome::Failed(_)),
                "round {round}: member {i} failed: {m:?}"
            );
        }

        assert_eq!(
            report.outcome.result.depth, reference.result.depth,
            "round {round}: sharing portfolio depth diverged from reference"
        );
        assert_eq!(
            verify(&circuit, device, &report.outcome.result),
            Ok(()),
            "round {round}"
        );
        assert!(report.sharing.is_some(), "round {round}");
    }
    // Across 6 races of 8 members, cancellation must actually trigger —
    // otherwise this test isn't stressing the pool under cancellation.
    assert!(
        cancelled_total > 0,
        "no member was ever cancelled; stress scenario not exercised"
    );
}
