//! The §IV-C optimality check: QUEKO benchmarks have a known-optimal depth
//! and a zero-SWAP embedding by construction. OLSQ2's depth optimization
//! must recover exactly that depth, and TB-OLSQ2's swap optimization must
//! find zero SWAPs — on every seed.

use olsq2::{Olsq2Synthesizer, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::{aspen4, grid};
use olsq2_circuit::generators::queko_circuit;
use olsq2_layout::verify;

#[test]
fn olsq2_recovers_known_optimal_depth_on_grid() {
    let device = grid(3, 3);
    for (depth, seed) in [(3usize, 1u64), (5, 2), (7, 3)] {
        let q = queko_circuit(device.num_qubits(), device.edges(), depth, depth * 4, seed);
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
        let out = synth.optimize_depth(&q.circuit, &device).expect("solves");
        assert!(out.proven_optimal, "depth {depth} seed {seed}");
        assert_eq!(
            out.result.depth, q.optimal_depth,
            "depth {depth} seed {seed}: got {}, constructed optimum {}",
            out.result.depth, q.optimal_depth
        );
        assert_eq!(verify(&q.circuit, &device, &out.result), Ok(()));
    }
}

#[test]
fn tb_olsq2_finds_zero_swaps_on_queko() {
    let device = aspen4();
    let q = queko_circuit(device.num_qubits(), device.edges(), 5, 30, 9);
    let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
    let out = synth.optimize_swaps(&q.circuit, &device).expect("solves");
    assert_eq!(out.outcome.result.swap_count(), 0);
    assert_eq!(out.block_count, 1);
    assert_eq!(verify(&q.circuit, &device, &out.outcome.result), Ok(()));
}

#[test]
fn hidden_mapping_is_itself_a_valid_zero_swap_layout() {
    // Sanity-check the generator against the verifier: scheduling each
    // gate at its ASAP level under the hidden mapping must verify.
    let device = grid(3, 3);
    let q = queko_circuit(device.num_qubits(), device.edges(), 6, 24, 4);
    let dag = olsq2_circuit::DependencyGraph::new(&q.circuit);
    let schedule: Vec<usize> = (0..q.circuit.num_gates())
        .map(|g| dag.asap_level_of(g))
        .collect();
    let result = olsq2_layout::LayoutResult {
        initial_mapping: q.hidden_mapping.clone(),
        schedule,
        swaps: vec![],
        depth: q.optimal_depth,
        swap_duration: 3,
    };
    assert_eq!(verify(&q.circuit, &device, &result), Ok(()));
}
