//! Trace smoke test: a traced synthesis run must produce a JSONL trace
//! from which the per-iteration timing breakdown — (T, swap-bound) pairs
//! with encode/solve times — and the per-family clause counts can be
//! reconstructed offline. This is the acceptance contract of the
//! observability layer: everything `olsq2 trace-report` and the paper's
//! timing tables need is in the file, not only in the process.

use olsq2::{Olsq2Synthesizer, Recorder, SolverFeatures, SynthesisConfig};
use olsq2_arch::grid;
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_service::json::{self, Json};

/// One reconstructed `iteration` span.
#[derive(Debug)]
struct Iteration {
    objective: String,
    t_bound: Option<u64>,
    swap_bound: Option<u64>,
    solve_us: u64,
    result: String,
}

#[test]
fn traced_qaoa_run_round_trips_through_jsonl() {
    let recorder = Recorder::new();
    let mut config = SynthesisConfig::with_swap_duration(1);
    config.recorder = recorder.clone();
    let circuit = qaoa_circuit(4, 3);
    let device = grid(2, 2);
    let out = Olsq2Synthesizer::new(config)
        .optimize_swaps(&circuit, &device)
        .expect("synthesis succeeds");

    let text = recorder.snapshot().to_jsonl();

    // Every line is valid JSON; the first is the versioned meta line.
    let lines: Vec<Json> = text
        .lines()
        .enumerate()
        .map(|(i, line)| json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1)))
        .collect();
    assert_eq!(
        lines[0].get("type").and_then(Json::as_str),
        Some("meta"),
        "first line is the meta header"
    );
    assert_eq!(lines[0].get("version").and_then(Json::as_u64), Some(1));

    let spans: Vec<&Json> = lines
        .iter()
        .filter(|l| l.get("type").and_then(Json::as_str) == Some("span"))
        .collect();

    // Reconstruct the iteration schedule from the trace alone.
    let iterations: Vec<Iteration> = spans
        .iter()
        .filter(|s| s.get("name").and_then(Json::as_str) == Some("iteration"))
        .map(|s| {
            let fields = s.get("fields").expect("iteration has fields");
            let num = |key: &str| fields.get(key).and_then(Json::as_u64);
            Iteration {
                objective: fields
                    .get("objective")
                    .and_then(Json::as_str)
                    .expect("objective field")
                    .to_string(),
                t_bound: num("t_bound"),
                swap_bound: num("swap_bound"),
                solve_us: num("solve_us").expect("solve_us field"),
                result: fields
                    .get("result")
                    .and_then(Json::as_str)
                    .expect("result field")
                    .to_string(),
            }
        })
        .collect();
    assert!(!iterations.is_empty(), "trace contains iteration spans");
    for it in &iterations {
        assert!(
            matches!(it.result.as_str(), "sat" | "unsat" | "unknown"),
            "iteration result is a solver verdict: {it:?}"
        );
        assert!(it.t_bound.is_some(), "every iteration records T: {it:?}");
    }
    // The run optimized SWAPs after depth: both phases left iterations,
    // and the SWAP ones carry the (T, swap-bound) pair.
    assert!(iterations.iter().any(|it| it.objective == "depth"));
    let swap_iters: Vec<&Iteration> = iterations
        .iter()
        .filter(|it| it.objective == "swaps")
        .collect();
    assert!(!swap_iters.is_empty(), "SWAP descent traced");
    assert!(swap_iters.iter().all(|it| it.swap_bound.is_some()));
    // The last SWAP iteration to answer "unsat" proves the bound under
    // which the returned solution is optimal.
    if out.best.proven_optimal {
        assert!(swap_iters.iter().any(|it| it.result == "unsat"));
    }
    // Wall-time reconstruction: per-iteration solve times are present and
    // bounded by the parent optimize span's duration.
    let total_solve: u64 = iterations.iter().map(|it| it.solve_us).sum();
    let outer_total: u64 = spans
        .iter()
        .filter(|s| {
            matches!(
                s.get("name").and_then(Json::as_str),
                Some("optimize_depth" | "optimize_swaps")
            )
        })
        .filter_map(|s| s.get("dur_us").and_then(Json::as_u64))
        .sum();
    assert!(
        total_solve <= outer_total,
        "solve time ({total_solve}us) fits inside the optimize spans ({outer_total}us)"
    );

    // Per-family formula breakdown survives the round trip.
    let encode = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("encode"))
        .expect("encode span present");
    let fields = encode.get("fields").expect("encode has fields");
    let total_clauses = fields
        .get("clauses")
        .and_then(Json::as_u64)
        .expect("total clause count");
    let family_sum: u64 = ["mapping", "dependency", "swap", "scheduling", "transition"]
        .iter()
        .map(|fam| {
            fields
                .get(&format!("clauses.{fam}"))
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("clauses.{fam} present"))
        })
        .sum();
    assert!(family_sum > 0, "family clause counts are populated");
    assert!(
        family_sum <= total_clauses,
        "families partition the formula ({family_sum} <= {total_clauses})"
    );

    // Solver counters made it out too.
    let counters: Vec<&Json> = lines
        .iter()
        .filter(|l| l.get("type").and_then(Json::as_str) == Some("counter"))
        .collect();
    let counter = |name: &str| {
        counters
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|c| c.get("value"))
            .and_then(Json::as_u64)
    };
    assert!(counter("sat.solves").unwrap_or(0) >= iterations.len() as u64);
    assert!(counter("sat.decisions").unwrap_or(0) > 0);
}

/// Regression for the `--legacy-solver` A/B path: a legacy-configured
/// synthesis run must not exercise any of the modern search policies, so
/// its trace counters for chronological backtracks, blocked restarts,
/// and target rephasings stay at zero — otherwise a `trace-diff` of a
/// legacy/modern pair would attribute time to policies both sides ran.
#[test]
fn legacy_solver_trace_pair_stays_meaningful() {
    let circuit = qaoa_circuit(6, 2);
    let device = grid(3, 3);
    let run = |features: SolverFeatures| {
        let recorder = Recorder::new();
        let mut config = SynthesisConfig::with_swap_duration(1);
        config.recorder = recorder.clone();
        config.solver_features = features;
        let out = Olsq2Synthesizer::new(config)
            .optimize_depth(&circuit, &device)
            .expect("synthesis succeeds");
        (out, recorder.snapshot().to_jsonl())
    };
    let (legacy_out, legacy_trace) = run(SolverFeatures::legacy());
    let (modern_out, _modern_trace) = run(SolverFeatures::default());

    // Same optimum either way — the A/B pair compares time, not answers.
    assert!(legacy_out.proven_optimal && modern_out.proven_optimal);
    assert_eq!(legacy_out.result.depth, modern_out.result.depth);

    let counter_total = |trace: &str, name: &str| -> u64 {
        trace
            .lines()
            .filter_map(|l| json::parse(l).ok())
            .filter(|j| j.get("type").and_then(Json::as_str) == Some("counter"))
            .filter(|j| j.get("name").and_then(Json::as_str) == Some(name))
            .filter_map(|j| j.get("value").and_then(Json::as_u64))
            .max()
            .unwrap_or(0)
    };
    for name in [
        "sat.chrono_backtracks",
        "sat.blocked_restarts",
        "sat.target_rephases",
    ] {
        assert_eq!(
            counter_total(&legacy_trace, name),
            0,
            "legacy run exercised a modern policy: {name}"
        );
    }
    // The legacy trace still carries the classic counters, so diffs align.
    assert!(counter_total(&legacy_trace, "sat.decisions") > 0);
}
