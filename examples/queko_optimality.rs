//! QUEKO optimality check (§IV-C of the paper): QUEKO circuits have a
//! *known* optimal depth by construction. OLSQ2 recovers it exactly, while
//! SABRE overshoots — the mechanism behind Table III's largest ratios.
//!
//! Run with: `cargo run --release --example queko_optimality -- [depth] [seed]`

use olsq2::{Olsq2Synthesizer, SynthesisConfig};
use olsq2_arch::grid;
use olsq2_circuit::generators::queko_circuit;
use olsq2_heuristic::{sabre_route, SabreConfig};
use olsq2_layout::verify;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let depth: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    let device = grid(3, 3);
    let edges = device.edges().to_vec();
    let queko = queko_circuit(device.num_qubits(), &edges, depth, depth * 4, seed);
    println!(
        "workload: {} (known optimal depth {})   device: {}",
        queko.circuit.name(),
        queko.optimal_depth,
        device
    );

    let sabre_cfg = SabreConfig {
        swap_duration: 3,
        ..Default::default()
    };
    let sabre = sabre_route(&queko.circuit, &device, &sabre_cfg)?;
    verify(&queko.circuit, &device, &sabre).map_err(|v| format!("{v:?}"))?;
    println!("SABRE: depth={} swaps={}", sabre.depth, sabre.swap_count());

    let mut cfg = SynthesisConfig::with_swap_duration(3);
    cfg.time_budget = Some(Duration::from_secs(600));
    let synth = Olsq2Synthesizer::new(cfg);
    let out = synth.optimize_depth(&queko.circuit, &device)?;
    verify(&queko.circuit, &device, &out.result).map_err(|v| format!("{v:?}"))?;
    println!(
        "OLSQ2: depth={} swaps={} (proven optimal: {})",
        out.result.depth,
        out.result.swap_count(),
        out.proven_optimal
    );
    assert_eq!(
        out.result.depth, queko.optimal_depth,
        "OLSQ2 must recover the constructed optimum"
    );
    println!(
        "\nOLSQ2 recovered the known optimum; SABRE is {:.2}x deeper.",
        sabre.depth as f64 / out.result.depth as f64
    );
    Ok(())
}
