//! Quickstart: synthesize the Toffoli circuit onto IBM QX2 — the paper's
//! running example (Figs. 2–4) — optimizing depth, then SWAP count, and
//! print the resulting physical circuit.
//!
//! Run with: `cargo run --release --example quickstart`

use olsq2::{Olsq2Synthesizer, SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::ibm_qx2;
use olsq2_circuit::generators::toffoli_circuit;
use olsq2_circuit::write_qasm;
use olsq2_layout::{emit_physical_circuit, verify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = toffoli_circuit();
    let device = ibm_qx2();
    println!("circuit: {circuit}   device: {device}");

    // SWAP gates decompose into 3 CNOTs on this device (S_D = 3).
    let config = SynthesisConfig::with_swap_duration(3);

    // Depth optimization (§III-B-1).
    let synth = Olsq2Synthesizer::new(config.clone());
    let depth_opt = synth.optimize_depth(&circuit, &device)?;
    verify(&circuit, &device, &depth_opt.result).map_err(|v| format!("{v:?}"))?;
    println!(
        "depth-optimal: depth={} swaps={} (proven optimal: {}, {} solver calls, {:.2?})",
        depth_opt.result.depth,
        depth_opt.result.swap_count(),
        depth_opt.proven_optimal,
        depth_opt.iterations,
        depth_opt.elapsed,
    );

    // SWAP-count optimization with the transition-based model (§III-D).
    let tb = TbOlsq2Synthesizer::new(config);
    let swap_opt = tb.optimize_swaps(&circuit, &device)?;
    verify(&circuit, &device, &swap_opt.outcome.result).map_err(|v| format!("{v:?}"))?;
    println!(
        "swap-optimal:  swaps={} blocks={} depth={} ({:.2?})",
        swap_opt.outcome.result.swap_count(),
        swap_opt.block_count,
        swap_opt.outcome.result.depth,
        swap_opt.outcome.elapsed,
    );

    // Emit the executable physical circuit (Fig. 4 of the paper).
    let physical = emit_physical_circuit(&circuit, &device, &depth_opt.result);
    println!(
        "\nphysical circuit (QASM):\n{}",
        write_qasm(&physical.decompose_swaps())
    );
    println!("initial mapping: {:?}", depth_opt.result.initial_mapping);
    Ok(())
}
