//! Full QASM-in/QASM-out pipeline: parse an OpenQASM 2.0 program, lay it
//! out on a device, and emit the executable physical circuit as QASM —
//! what a downstream compiler user would do with this library.
//!
//! Run with: `cargo run --release --example qasm_pipeline`

use olsq2::{SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::ibm_qx2;
use olsq2_circuit::{parse_qasm, write_qasm};
use olsq2_layout::{emit_physical_circuit, verify};

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
rz(pi/4) q[3];
cx q[0],q[3];
ccx q[0],q[1],q[2];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_qasm(PROGRAM)?;
    let device = ibm_qx2();
    println!(
        "parsed {} gates over {} qubits (ccx auto-decomposed)",
        circuit.num_gates(),
        circuit.num_qubits()
    );

    let config = SynthesisConfig::with_swap_duration(3);
    let tb = TbOlsq2Synthesizer::new(config);
    let out = tb.optimize_swaps(&circuit, &device)?;
    verify(&circuit, &device, &out.outcome.result).map_err(|v| format!("{v:?}"))?;
    println!(
        "layout: {} swaps, depth {}, {} blocks",
        out.outcome.result.swap_count(),
        out.outcome.result.depth,
        out.block_count
    );

    let physical = emit_physical_circuit(&circuit, &device, &out.outcome.result);
    println!(
        "\n--- physical program ---\n{}",
        write_qasm(&physical.decompose_swaps())
    );
    Ok(())
}
