//! Compare layout synthesizers on a QAOA workload — the paper's headline
//! scenario: how many SWAPs does each tool insert for the phase-splitting
//! operator of a random 3-regular graph?
//!
//! Run with: `cargo run --release --example qaoa_compare -- [n] [seed]`
//! (defaults: n = 10 program qubits, seed = 1, device = 4×4 grid).

use olsq2::{SynthesisConfig, TbOlsq2Synthesizer};
use olsq2_arch::grid;
use olsq2_circuit::generators::qaoa_circuit;
use olsq2_heuristic::{
    astar_route, sabre_route, satmap_route, AstarConfig, SabreConfig, SatMapConfig,
};
use olsq2_layout::{estimate_success_rate, verify, ErrorModel};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let circuit = qaoa_circuit(n, seed);
    let device = grid(4, 4);
    println!("workload: {}   device: {}", circuit.name(), device);
    println!(
        "{:<12} {:>6} {:>7} {:>9} {:>10}",
        "tool", "swaps", "depth", "est.P", "time"
    );
    let model = ErrorModel::default();

    // SABRE (heuristic baseline).
    let sabre_cfg = SabreConfig {
        // QAOA convention from §IV
        swap_duration: 1,
        ..Default::default()
    };
    let t = Instant::now();
    let sabre = sabre_route(&circuit, &device, &sabre_cfg)?;
    verify(&circuit, &device, &sabre).map_err(|v| format!("{v:?}"))?;
    println!(
        "{:<12} {:>6} {:>7} {:>8.1}% {:>10.2?}",
        "SABRE",
        sabre.swap_count(),
        sabre.depth,
        100.0 * estimate_success_rate(&circuit, &sabre, &model),
        t.elapsed()
    );

    // A* layer router (Zulehner-style).
    let astar_cfg = AstarConfig {
        swap_duration: 1,
        ..Default::default()
    };
    let t = Instant::now();
    let astar = astar_route(&circuit, &device, &astar_cfg)?;
    verify(&circuit, &device, &astar).map_err(|v| format!("{v:?}"))?;
    println!(
        "{:<12} {:>6} {:>7} {:>8.1}% {:>10.2?}",
        "A*",
        astar.swap_count(),
        astar.depth,
        100.0 * estimate_success_rate(&circuit, &astar, &model),
        t.elapsed()
    );

    // SATMap-style slice mapper.
    let satmap_cfg = SatMapConfig {
        swap_duration: 1,
        time_budget: Some(Duration::from_secs(120)),
        ..Default::default()
    };
    let t = Instant::now();
    match satmap_route(&circuit, &device, &satmap_cfg) {
        Ok(out) => {
            verify(&circuit, &device, &out.result).map_err(|v| format!("{v:?}"))?;
            println!(
                "{:<12} {:>6} {:>7} {:>8.1}% {:>10.2?}",
                "SATMap*",
                out.result.swap_count(),
                out.result.depth,
                100.0 * estimate_success_rate(&circuit, &out.result, &model),
                t.elapsed()
            );
        }
        Err(e) => println!("{:<12} {e}", "SATMap*"),
    }

    // TB-OLSQ2 (this paper).
    let mut cfg = SynthesisConfig::with_swap_duration(1);
    cfg.time_budget = Some(Duration::from_secs(300));
    let tb = TbOlsq2Synthesizer::new(cfg);
    let t = Instant::now();
    match tb.optimize_swaps(&circuit, &device) {
        Ok(out) => {
            verify(&circuit, &device, &out.outcome.result).map_err(|v| format!("{v:?}"))?;
            println!(
                "{:<12} {:>6} {:>7} {:>8.1}% {:>10.2?}{}",
                "TB-OLSQ2",
                out.outcome.result.swap_count(),
                out.outcome.result.depth,
                100.0 * estimate_success_rate(&circuit, &out.outcome.result, &model),
                t.elapsed(),
                if out.outcome.proven_optimal {
                    "  (optimal)"
                } else {
                    "  (budget)"
                }
            );
        }
        Err(e) => println!("{:<12} {e}", "TB-OLSQ2"),
    }
    Ok(())
}
