/root/repo/target/release/libolsq2_arch.rlib: /root/repo/crates/arch/src/devices.rs /root/repo/crates/arch/src/graph.rs /root/repo/crates/arch/src/lib.rs
