/root/repo/target/release/libolsq2_prng.rlib: /root/repo/crates/prng/src/lib.rs
