/root/repo/target/release/deps/olsq2_service-e3451c4caa343e6c.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

/root/repo/target/release/deps/libolsq2_service-e3451c4caa343e6c.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

/root/repo/target/release/deps/libolsq2_service-e3451c4caa343e6c.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/json.rs:
crates/service/src/manifest.rs:
crates/service/src/metrics.rs:
crates/service/src/request.rs:
crates/service/src/service.rs:
