/root/repo/target/release/deps/ablation-4e24801e276868e4.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-4e24801e276868e4: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
