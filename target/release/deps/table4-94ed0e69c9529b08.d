/root/repo/target/release/deps/table4-94ed0e69c9529b08.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-94ed0e69c9529b08: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
