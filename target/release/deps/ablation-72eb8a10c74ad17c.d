/root/repo/target/release/deps/ablation-72eb8a10c74ad17c.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-72eb8a10c74ad17c: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
