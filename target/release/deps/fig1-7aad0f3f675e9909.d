/root/repo/target/release/deps/fig1-7aad0f3f675e9909.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-7aad0f3f675e9909: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
