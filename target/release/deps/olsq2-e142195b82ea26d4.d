/root/repo/target/release/deps/olsq2-e142195b82ea26d4.d: crates/cli/src/bin/olsq2.rs

/root/repo/target/release/deps/olsq2-e142195b82ea26d4: crates/cli/src/bin/olsq2.rs

crates/cli/src/bin/olsq2.rs:
