/root/repo/target/release/deps/olsq2_obs-5f32210754f650fe.d: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libolsq2_obs-5f32210754f650fe.rlib: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libolsq2_obs-5f32210754f650fe.rmeta: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/prom.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
