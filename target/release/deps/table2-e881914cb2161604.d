/root/repo/target/release/deps/table2-e881914cb2161604.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e881914cb2161604: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
