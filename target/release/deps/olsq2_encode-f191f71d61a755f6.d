/root/repo/target/release/deps/olsq2_encode-f191f71d61a755f6.d: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/release/deps/libolsq2_encode-f191f71d61a755f6.rlib: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/release/deps/libolsq2_encode-f191f71d61a755f6.rmeta: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

crates/encode/src/lib.rs:
crates/encode/src/bitvec.rs:
crates/encode/src/cardinality.rs:
crates/encode/src/dimacs.rs:
crates/encode/src/families.rs:
crates/encode/src/gates.rs:
crates/encode/src/onehot.rs:
crates/encode/src/sink.rs:
