/root/repo/target/release/deps/olsq2_heuristic-abf6142ebb802240.d: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

/root/repo/target/release/deps/libolsq2_heuristic-abf6142ebb802240.rlib: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

/root/repo/target/release/deps/libolsq2_heuristic-abf6142ebb802240.rmeta: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

crates/heuristic/src/lib.rs:
crates/heuristic/src/astar.rs:
crates/heuristic/src/retime.rs:
crates/heuristic/src/sabre.rs:
crates/heuristic/src/satmap.rs:
