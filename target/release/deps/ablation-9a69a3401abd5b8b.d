/root/repo/target/release/deps/ablation-9a69a3401abd5b8b.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-9a69a3401abd5b8b: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
