/root/repo/target/release/deps/table1-44e1e85ca8864ebf.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-44e1e85ca8864ebf: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
