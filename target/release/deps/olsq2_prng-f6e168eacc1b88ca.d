/root/repo/target/release/deps/olsq2_prng-f6e168eacc1b88ca.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/libolsq2_prng-f6e168eacc1b88ca.rlib: crates/prng/src/lib.rs

/root/repo/target/release/deps/libolsq2_prng-f6e168eacc1b88ca.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
