/root/repo/target/release/deps/table3-5ef8be14e186f5b0.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-5ef8be14e186f5b0: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
