/root/repo/target/release/deps/table4-3cdf0a15ba4bc38c.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-3cdf0a15ba4bc38c: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
