/root/repo/target/release/deps/olsq2_suite-feca4c9de3bf520c.d: src/lib.rs

/root/repo/target/release/deps/libolsq2_suite-feca4c9de3bf520c.rlib: src/lib.rs

/root/repo/target/release/deps/libolsq2_suite-feca4c9de3bf520c.rmeta: src/lib.rs

src/lib.rs:
