/root/repo/target/release/deps/fig1-db27f6318ccb3184.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-db27f6318ccb3184: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
