/root/repo/target/release/deps/timing_probe-bd1363375a10f2db.d: crates/service/tests/timing_probe.rs

/root/repo/target/release/deps/timing_probe-bd1363375a10f2db: crates/service/tests/timing_probe.rs

crates/service/tests/timing_probe.rs:
