/root/repo/target/release/deps/olsq2-478784874f270522.d: crates/cli/src/bin/olsq2.rs

/root/repo/target/release/deps/olsq2-478784874f270522: crates/cli/src/bin/olsq2.rs

crates/cli/src/bin/olsq2.rs:
