/root/repo/target/release/deps/olsq2_heuristic-4b41a27eda551e13.d: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

/root/repo/target/release/deps/libolsq2_heuristic-4b41a27eda551e13.rlib: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

/root/repo/target/release/deps/libolsq2_heuristic-4b41a27eda551e13.rmeta: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

crates/heuristic/src/lib.rs:
crates/heuristic/src/astar.rs:
crates/heuristic/src/retime.rs:
crates/heuristic/src/sabre.rs:
crates/heuristic/src/satmap.rs:
