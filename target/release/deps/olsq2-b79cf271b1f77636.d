/root/repo/target/release/deps/olsq2-b79cf271b1f77636.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

/root/repo/target/release/deps/libolsq2-b79cf271b1f77636.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

/root/repo/target/release/deps/libolsq2-b79cf271b1f77636.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/incumbent.rs:
crates/core/src/model.rs:
crates/core/src/optimize.rs:
crates/core/src/portfolio.rs:
crates/core/src/transition.rs:
crates/core/src/vars.rs:
