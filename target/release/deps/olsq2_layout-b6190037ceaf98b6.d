/root/repo/target/release/deps/olsq2_layout-b6190037ceaf98b6.d: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

/root/repo/target/release/deps/libolsq2_layout-b6190037ceaf98b6.rlib: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

/root/repo/target/release/deps/libolsq2_layout-b6190037ceaf98b6.rmeta: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

crates/layout/src/lib.rs:
crates/layout/src/emit.rs:
crates/layout/src/fidelity.rs:
crates/layout/src/result.rs:
crates/layout/src/verify.rs:
