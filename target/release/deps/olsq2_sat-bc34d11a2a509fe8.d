/root/repo/target/release/deps/olsq2_sat-bc34d11a2a509fe8.d: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/release/deps/libolsq2_sat-bc34d11a2a509fe8.rlib: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/release/deps/libolsq2_sat-bc34d11a2a509fe8.rmeta: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/clause.rs:
crates/sat/src/heap.rs:
crates/sat/src/lit.rs:
crates/sat/src/preprocess.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
