/root/repo/target/release/deps/olsq2_arch-b4ab4d50aaf4f245.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

/root/repo/target/release/deps/libolsq2_arch-b4ab4d50aaf4f245.rlib: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

/root/repo/target/release/deps/libolsq2_arch-b4ab4d50aaf4f245.rmeta: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/graph.rs:
