/root/repo/target/release/deps/olsq2_bench-5c10cc5c6833bae4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libolsq2_bench-5c10cc5c6833bae4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libolsq2_bench-5c10cc5c6833bae4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
