/root/repo/target/release/deps/table1-52c3ecdf9d98e055.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-52c3ecdf9d98e055: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
