/root/repo/target/release/deps/table2-30dafc3f0ffb4a02.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-30dafc3f0ffb4a02: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
