/root/repo/target/release/deps/olsq2_bench-37d12d62b3c2d4bb.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libolsq2_bench-37d12d62b3c2d4bb.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libolsq2_bench-37d12d62b3c2d4bb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
