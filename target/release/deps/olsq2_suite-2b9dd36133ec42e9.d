/root/repo/target/release/deps/olsq2_suite-2b9dd36133ec42e9.d: src/lib.rs

/root/repo/target/release/deps/libolsq2_suite-2b9dd36133ec42e9.rlib: src/lib.rs

/root/repo/target/release/deps/libolsq2_suite-2b9dd36133ec42e9.rmeta: src/lib.rs

src/lib.rs:
