/root/repo/target/release/deps/cnf_solve-44e180575c351cbc.d: crates/encode/src/bin/cnf_solve.rs

/root/repo/target/release/deps/cnf_solve-44e180575c351cbc: crates/encode/src/bin/cnf_solve.rs

crates/encode/src/bin/cnf_solve.rs:
