/root/repo/target/release/deps/table3-8fc7f34ee520e0bd.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-8fc7f34ee520e0bd: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
