/root/repo/target/release/deps/fig1-95dc2c189707f929.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-95dc2c189707f929: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
