/root/repo/target/release/deps/table4-5ed8bc2ba05c3917.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-5ed8bc2ba05c3917: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
