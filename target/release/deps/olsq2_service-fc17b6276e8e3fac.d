/root/repo/target/release/deps/olsq2_service-fc17b6276e8e3fac.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

/root/repo/target/release/deps/libolsq2_service-fc17b6276e8e3fac.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

/root/repo/target/release/deps/libolsq2_service-fc17b6276e8e3fac.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/json.rs:
crates/service/src/manifest.rs:
crates/service/src/metrics.rs:
crates/service/src/request.rs:
crates/service/src/service.rs:
