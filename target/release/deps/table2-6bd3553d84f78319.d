/root/repo/target/release/deps/table2-6bd3553d84f78319.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-6bd3553d84f78319: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
