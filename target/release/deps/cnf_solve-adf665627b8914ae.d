/root/repo/target/release/deps/cnf_solve-adf665627b8914ae.d: crates/encode/src/bin/cnf_solve.rs

/root/repo/target/release/deps/cnf_solve-adf665627b8914ae: crates/encode/src/bin/cnf_solve.rs

crates/encode/src/bin/cnf_solve.rs:
