/root/repo/target/release/deps/olsq2_encode-5e13a43448e1b150.d: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/release/deps/libolsq2_encode-5e13a43448e1b150.rlib: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/release/deps/libolsq2_encode-5e13a43448e1b150.rmeta: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

crates/encode/src/lib.rs:
crates/encode/src/bitvec.rs:
crates/encode/src/cardinality.rs:
crates/encode/src/dimacs.rs:
crates/encode/src/gates.rs:
crates/encode/src/onehot.rs:
crates/encode/src/sink.rs:
