/root/repo/target/release/deps/table1-335bb7978bb6ce25.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-335bb7978bb6ce25: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
