/root/repo/target/release/deps/table3-3e1eeaa4487de730.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-3e1eeaa4487de730: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
