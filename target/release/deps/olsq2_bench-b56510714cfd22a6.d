/root/repo/target/release/deps/olsq2_bench-b56510714cfd22a6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/olsq2_bench-b56510714cfd22a6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
