/root/repo/target/release/deps/micro-96059a210764623f.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-96059a210764623f: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
