/root/repo/target/debug/examples/qasm_pipeline-40cb14dac874093f.d: examples/qasm_pipeline.rs

/root/repo/target/debug/examples/qasm_pipeline-40cb14dac874093f: examples/qasm_pipeline.rs

examples/qasm_pipeline.rs:
