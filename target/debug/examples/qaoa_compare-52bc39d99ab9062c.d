/root/repo/target/debug/examples/qaoa_compare-52bc39d99ab9062c.d: examples/qaoa_compare.rs

/root/repo/target/debug/examples/qaoa_compare-52bc39d99ab9062c: examples/qaoa_compare.rs

examples/qaoa_compare.rs:
