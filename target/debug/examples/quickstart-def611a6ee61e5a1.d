/root/repo/target/debug/examples/quickstart-def611a6ee61e5a1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-def611a6ee61e5a1: examples/quickstart.rs

examples/quickstart.rs:
