/root/repo/target/debug/examples/qaoa_compare-30fc7d62d68a001d.d: examples/qaoa_compare.rs Cargo.toml

/root/repo/target/debug/examples/libqaoa_compare-30fc7d62d68a001d.rmeta: examples/qaoa_compare.rs Cargo.toml

examples/qaoa_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
