/root/repo/target/debug/examples/qasm_pipeline-f640cf6be5da42ba.d: examples/qasm_pipeline.rs

/root/repo/target/debug/examples/qasm_pipeline-f640cf6be5da42ba: examples/qasm_pipeline.rs

examples/qasm_pipeline.rs:
