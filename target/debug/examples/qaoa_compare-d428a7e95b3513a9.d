/root/repo/target/debug/examples/qaoa_compare-d428a7e95b3513a9.d: examples/qaoa_compare.rs

/root/repo/target/debug/examples/qaoa_compare-d428a7e95b3513a9: examples/qaoa_compare.rs

examples/qaoa_compare.rs:
