/root/repo/target/debug/examples/queko_optimality-79a6f9adba442308.d: examples/queko_optimality.rs Cargo.toml

/root/repo/target/debug/examples/libqueko_optimality-79a6f9adba442308.rmeta: examples/queko_optimality.rs Cargo.toml

examples/queko_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
