/root/repo/target/debug/examples/queko_optimality-f37721fc7b536d18.d: examples/queko_optimality.rs Cargo.toml

/root/repo/target/debug/examples/libqueko_optimality-f37721fc7b536d18.rmeta: examples/queko_optimality.rs Cargo.toml

examples/queko_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
