/root/repo/target/debug/examples/quickstart-54592994b86b9d0f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-54592994b86b9d0f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
