/root/repo/target/debug/examples/queko_optimality-4c2299c6520d06fa.d: examples/queko_optimality.rs

/root/repo/target/debug/examples/queko_optimality-4c2299c6520d06fa: examples/queko_optimality.rs

examples/queko_optimality.rs:
