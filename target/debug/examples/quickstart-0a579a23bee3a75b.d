/root/repo/target/debug/examples/quickstart-0a579a23bee3a75b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0a579a23bee3a75b: examples/quickstart.rs

examples/quickstart.rs:
