/root/repo/target/debug/examples/qasm_pipeline-a1e5dada18797401.d: examples/qasm_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libqasm_pipeline-a1e5dada18797401.rmeta: examples/qasm_pipeline.rs Cargo.toml

examples/qasm_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
