/root/repo/target/debug/examples/qaoa_compare-dd5224b75a26faa5.d: examples/qaoa_compare.rs Cargo.toml

/root/repo/target/debug/examples/libqaoa_compare-dd5224b75a26faa5.rmeta: examples/qaoa_compare.rs Cargo.toml

examples/qaoa_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
