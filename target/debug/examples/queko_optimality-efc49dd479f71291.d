/root/repo/target/debug/examples/queko_optimality-efc49dd479f71291.d: examples/queko_optimality.rs

/root/repo/target/debug/examples/queko_optimality-efc49dd479f71291: examples/queko_optimality.rs

examples/queko_optimality.rs:
