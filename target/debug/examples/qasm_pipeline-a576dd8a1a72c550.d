/root/repo/target/debug/examples/qasm_pipeline-a576dd8a1a72c550.d: examples/qasm_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libqasm_pipeline-a576dd8a1a72c550.rmeta: examples/qasm_pipeline.rs Cargo.toml

examples/qasm_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
