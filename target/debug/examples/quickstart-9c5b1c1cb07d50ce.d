/root/repo/target/debug/examples/quickstart-9c5b1c1cb07d50ce.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9c5b1c1cb07d50ce.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
