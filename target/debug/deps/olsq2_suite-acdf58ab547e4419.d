/root/repo/target/debug/deps/olsq2_suite-acdf58ab547e4419.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_suite-acdf58ab547e4419.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
