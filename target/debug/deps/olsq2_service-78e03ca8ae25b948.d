/root/repo/target/debug/deps/olsq2_service-78e03ca8ae25b948.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

/root/repo/target/debug/deps/olsq2_service-78e03ca8ae25b948: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/json.rs:
crates/service/src/manifest.rs:
crates/service/src/metrics.rs:
crates/service/src/request.rs:
crates/service/src/service.rs:
