/root/repo/target/debug/deps/qasm_pipeline-f58333d69b9dc2ce.d: tests/qasm_pipeline.rs

/root/repo/target/debug/deps/qasm_pipeline-f58333d69b9dc2ce: tests/qasm_pipeline.rs

tests/qasm_pipeline.rs:
