/root/repo/target/debug/deps/service_e2e-bd19016e0fcfc47c.d: crates/service/tests/service_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libservice_e2e-bd19016e0fcfc47c.rmeta: crates/service/tests/service_e2e.rs Cargo.toml

crates/service/tests/service_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
