/root/repo/target/debug/deps/proof_checking-1388c8d4979e47e2.d: crates/sat/tests/proof_checking.rs Cargo.toml

/root/repo/target/debug/deps/libproof_checking-1388c8d4979e47e2.rmeta: crates/sat/tests/proof_checking.rs Cargo.toml

crates/sat/tests/proof_checking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
