/root/repo/target/debug/deps/olsq2-cf5a3d9e96e806da.d: crates/cli/src/bin/olsq2.rs

/root/repo/target/debug/deps/olsq2-cf5a3d9e96e806da: crates/cli/src/bin/olsq2.rs

crates/cli/src/bin/olsq2.rs:
