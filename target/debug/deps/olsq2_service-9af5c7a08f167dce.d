/root/repo/target/debug/deps/olsq2_service-9af5c7a08f167dce.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

/root/repo/target/debug/deps/libolsq2_service-9af5c7a08f167dce.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

/root/repo/target/debug/deps/libolsq2_service-9af5c7a08f167dce.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/json.rs:
crates/service/src/manifest.rs:
crates/service/src/metrics.rs:
crates/service/src/request.rs:
crates/service/src/service.rs:
