/root/repo/target/debug/deps/olsq2_service-19842210c376dec7.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_service-19842210c376dec7.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/json.rs:
crates/service/src/manifest.rs:
crates/service/src/metrics.rs:
crates/service/src/request.rs:
crates/service/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
