/root/repo/target/debug/deps/queko_optimal-09968f10098d0342.d: tests/queko_optimal.rs

/root/repo/target/debug/deps/queko_optimal-09968f10098d0342: tests/queko_optimal.rs

tests/queko_optimal.rs:
