/root/repo/target/debug/deps/prop_synthesis-060f4e59ad4fe174.d: tests/prop_synthesis.rs Cargo.toml

/root/repo/target/debug/deps/libprop_synthesis-060f4e59ad4fe174.rmeta: tests/prop_synthesis.rs Cargo.toml

tests/prop_synthesis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
