/root/repo/target/debug/deps/qasm_pipeline-c47a52350ef6058a.d: tests/qasm_pipeline.rs

/root/repo/target/debug/deps/qasm_pipeline-c47a52350ef6058a: tests/qasm_pipeline.rs

tests/qasm_pipeline.rs:
