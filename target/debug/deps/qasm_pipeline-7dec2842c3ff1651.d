/root/repo/target/debug/deps/qasm_pipeline-7dec2842c3ff1651.d: tests/qasm_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libqasm_pipeline-7dec2842c3ff1651.rmeta: tests/qasm_pipeline.rs Cargo.toml

tests/qasm_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
