/root/repo/target/debug/deps/cnf_solve-2abcdb4df574e587.d: crates/encode/src/bin/cnf_solve.rs

/root/repo/target/debug/deps/cnf_solve-2abcdb4df574e587: crates/encode/src/bin/cnf_solve.rs

crates/encode/src/bin/cnf_solve.rs:
