/root/repo/target/debug/deps/olsq2_layout-029d5067dd71438f.d: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

/root/repo/target/debug/deps/libolsq2_layout-029d5067dd71438f.rmeta: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

crates/layout/src/lib.rs:
crates/layout/src/emit.rs:
crates/layout/src/fidelity.rs:
crates/layout/src/result.rs:
crates/layout/src/verify.rs:
