/root/repo/target/debug/deps/olsq2_arch-e0b326dbd809ba7c.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_arch-e0b326dbd809ba7c.rmeta: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
