/root/repo/target/debug/deps/trace_smoke-5cb8ebeb2ac65715.d: tests/trace_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_smoke-5cb8ebeb2ac65715.rmeta: tests/trace_smoke.rs Cargo.toml

tests/trace_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
