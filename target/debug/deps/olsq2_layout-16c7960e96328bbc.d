/root/repo/target/debug/deps/olsq2_layout-16c7960e96328bbc.d: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

/root/repo/target/debug/deps/olsq2_layout-16c7960e96328bbc: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

crates/layout/src/lib.rs:
crates/layout/src/emit.rs:
crates/layout/src/fidelity.rs:
crates/layout/src/result.rs:
crates/layout/src/verify.rs:
