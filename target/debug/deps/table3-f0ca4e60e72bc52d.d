/root/repo/target/debug/deps/table3-f0ca4e60e72bc52d.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-f0ca4e60e72bc52d.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
