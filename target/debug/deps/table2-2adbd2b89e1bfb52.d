/root/repo/target/debug/deps/table2-2adbd2b89e1bfb52.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2adbd2b89e1bfb52: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
