/root/repo/target/debug/deps/olsq2_layout-e4208c46555aee83.d: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_layout-e4208c46555aee83.rmeta: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs Cargo.toml

crates/layout/src/lib.rs:
crates/layout/src/emit.rs:
crates/layout/src/fidelity.rs:
crates/layout/src/result.rs:
crates/layout/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
