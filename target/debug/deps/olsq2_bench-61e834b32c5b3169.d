/root/repo/target/debug/deps/olsq2_bench-61e834b32c5b3169.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/olsq2_bench-61e834b32c5b3169: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
