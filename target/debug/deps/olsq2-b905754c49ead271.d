/root/repo/target/debug/deps/olsq2-b905754c49ead271.d: crates/cli/src/bin/olsq2.rs

/root/repo/target/debug/deps/olsq2-b905754c49ead271: crates/cli/src/bin/olsq2.rs

crates/cli/src/bin/olsq2.rs:
