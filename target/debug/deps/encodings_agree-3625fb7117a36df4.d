/root/repo/target/debug/deps/encodings_agree-3625fb7117a36df4.d: tests/encodings_agree.rs Cargo.toml

/root/repo/target/debug/deps/libencodings_agree-3625fb7117a36df4.rmeta: tests/encodings_agree.rs Cargo.toml

tests/encodings_agree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
