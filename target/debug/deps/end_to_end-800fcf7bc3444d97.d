/root/repo/target/debug/deps/end_to_end-800fcf7bc3444d97.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-800fcf7bc3444d97: tests/end_to_end.rs

tests/end_to_end.rs:
