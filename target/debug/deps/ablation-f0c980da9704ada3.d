/root/repo/target/debug/deps/ablation-f0c980da9704ada3.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-f0c980da9704ada3.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
