/root/repo/target/debug/deps/prop_encodings-812c5ef8ebbb07ce.d: crates/encode/tests/prop_encodings.rs Cargo.toml

/root/repo/target/debug/deps/libprop_encodings-812c5ef8ebbb07ce.rmeta: crates/encode/tests/prop_encodings.rs Cargo.toml

crates/encode/tests/prop_encodings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
