/root/repo/target/debug/deps/olsq2_encode-bc13db1c04425070.d: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_encode-bc13db1c04425070.rmeta: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs Cargo.toml

crates/encode/src/lib.rs:
crates/encode/src/bitvec.rs:
crates/encode/src/cardinality.rs:
crates/encode/src/dimacs.rs:
crates/encode/src/gates.rs:
crates/encode/src/onehot.rs:
crates/encode/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
