/root/repo/target/debug/deps/olsq2-9b8f4de6448c27b4.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

/root/repo/target/debug/deps/olsq2-9b8f4de6448c27b4: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/incumbent.rs:
crates/core/src/model.rs:
crates/core/src/optimize.rs:
crates/core/src/portfolio.rs:
crates/core/src/transition.rs:
crates/core/src/vars.rs:
