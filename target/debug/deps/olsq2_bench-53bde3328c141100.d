/root/repo/target/debug/deps/olsq2_bench-53bde3328c141100.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_bench-53bde3328c141100.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
