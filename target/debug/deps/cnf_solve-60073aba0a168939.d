/root/repo/target/debug/deps/cnf_solve-60073aba0a168939.d: crates/encode/src/bin/cnf_solve.rs

/root/repo/target/debug/deps/cnf_solve-60073aba0a168939: crates/encode/src/bin/cnf_solve.rs

crates/encode/src/bin/cnf_solve.rs:
