/root/repo/target/debug/deps/olsq2-301fad8c9eb7dba5.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

/root/repo/target/debug/deps/libolsq2-301fad8c9eb7dba5.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

/root/repo/target/debug/deps/libolsq2-301fad8c9eb7dba5.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/incumbent.rs:
crates/core/src/model.rs:
crates/core/src/optimize.rs:
crates/core/src/portfolio.rs:
crates/core/src/transition.rs:
crates/core/src/vars.rs:
