/root/repo/target/debug/deps/olsq2_suite-b9122732041ff483.d: src/lib.rs

/root/repo/target/debug/deps/olsq2_suite-b9122732041ff483: src/lib.rs

src/lib.rs:
