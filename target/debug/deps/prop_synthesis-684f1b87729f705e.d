/root/repo/target/debug/deps/prop_synthesis-684f1b87729f705e.d: tests/prop_synthesis.rs

/root/repo/target/debug/deps/prop_synthesis-684f1b87729f705e: tests/prop_synthesis.rs

tests/prop_synthesis.rs:
