/root/repo/target/debug/deps/olsq2_bench-1e778d09e0b9bc66.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_bench-1e778d09e0b9bc66.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
