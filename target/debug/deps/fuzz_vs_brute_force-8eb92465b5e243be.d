/root/repo/target/debug/deps/fuzz_vs_brute_force-8eb92465b5e243be.d: crates/sat/tests/fuzz_vs_brute_force.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_vs_brute_force-8eb92465b5e243be.rmeta: crates/sat/tests/fuzz_vs_brute_force.rs Cargo.toml

crates/sat/tests/fuzz_vs_brute_force.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
