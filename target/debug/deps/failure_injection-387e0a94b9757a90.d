/root/repo/target/debug/deps/failure_injection-387e0a94b9757a90.d: crates/layout/tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-387e0a94b9757a90.rmeta: crates/layout/tests/failure_injection.rs Cargo.toml

crates/layout/tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
