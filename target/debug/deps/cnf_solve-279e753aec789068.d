/root/repo/target/debug/deps/cnf_solve-279e753aec789068.d: crates/encode/src/bin/cnf_solve.rs Cargo.toml

/root/repo/target/debug/deps/libcnf_solve-279e753aec789068.rmeta: crates/encode/src/bin/cnf_solve.rs Cargo.toml

crates/encode/src/bin/cnf_solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
