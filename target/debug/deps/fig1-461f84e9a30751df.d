/root/repo/target/debug/deps/fig1-461f84e9a30751df.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-461f84e9a30751df.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
