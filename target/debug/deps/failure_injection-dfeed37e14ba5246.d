/root/repo/target/debug/deps/failure_injection-dfeed37e14ba5246.d: crates/layout/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-dfeed37e14ba5246: crates/layout/tests/failure_injection.rs

crates/layout/tests/failure_injection.rs:
