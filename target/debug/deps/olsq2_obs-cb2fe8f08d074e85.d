/root/repo/target/debug/deps/olsq2_obs-cb2fe8f08d074e85.d: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_obs-cb2fe8f08d074e85.rmeta: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/prom.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
