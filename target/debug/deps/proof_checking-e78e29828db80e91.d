/root/repo/target/debug/deps/proof_checking-e78e29828db80e91.d: crates/sat/tests/proof_checking.rs

/root/repo/target/debug/deps/proof_checking-e78e29828db80e91: crates/sat/tests/proof_checking.rs

crates/sat/tests/proof_checking.rs:
