/root/repo/target/debug/deps/table1-349b8f524d959d3a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-349b8f524d959d3a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
