/root/repo/target/debug/deps/service_e2e-233f48a242a1d193.d: crates/service/tests/service_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libservice_e2e-233f48a242a1d193.rmeta: crates/service/tests/service_e2e.rs Cargo.toml

crates/service/tests/service_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
