/root/repo/target/debug/deps/end_to_end-241c096914ef8cb5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-241c096914ef8cb5: tests/end_to_end.rs

tests/end_to_end.rs:
