/root/repo/target/debug/deps/fuzz_vs_brute_force-d285ec2d6ac7d07f.d: crates/sat/tests/fuzz_vs_brute_force.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_vs_brute_force-d285ec2d6ac7d07f.rmeta: crates/sat/tests/fuzz_vs_brute_force.rs Cargo.toml

crates/sat/tests/fuzz_vs_brute_force.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
