/root/repo/target/debug/deps/olsq2_arch-59bc07c18edec156.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

/root/repo/target/debug/deps/libolsq2_arch-59bc07c18edec156.rlib: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

/root/repo/target/debug/deps/libolsq2_arch-59bc07c18edec156.rmeta: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/graph.rs:
