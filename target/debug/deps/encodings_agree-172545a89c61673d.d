/root/repo/target/debug/deps/encodings_agree-172545a89c61673d.d: tests/encodings_agree.rs Cargo.toml

/root/repo/target/debug/deps/libencodings_agree-172545a89c61673d.rmeta: tests/encodings_agree.rs Cargo.toml

tests/encodings_agree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
