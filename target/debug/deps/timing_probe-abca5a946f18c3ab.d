/root/repo/target/debug/deps/timing_probe-abca5a946f18c3ab.d: crates/service/tests/timing_probe.rs

/root/repo/target/debug/deps/timing_probe-abca5a946f18c3ab: crates/service/tests/timing_probe.rs

crates/service/tests/timing_probe.rs:
