/root/repo/target/debug/deps/olsq2_bench-6a32b8032b753e59.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libolsq2_bench-6a32b8032b753e59.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libolsq2_bench-6a32b8032b753e59.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
