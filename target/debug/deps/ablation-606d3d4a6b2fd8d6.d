/root/repo/target/debug/deps/ablation-606d3d4a6b2fd8d6.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-606d3d4a6b2fd8d6.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
