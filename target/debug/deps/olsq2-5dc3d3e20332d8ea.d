/root/repo/target/debug/deps/olsq2-5dc3d3e20332d8ea.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2-5dc3d3e20332d8ea.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/incumbent.rs:
crates/core/src/model.rs:
crates/core/src/optimize.rs:
crates/core/src/portfolio.rs:
crates/core/src/transition.rs:
crates/core/src/vars.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
