/root/repo/target/debug/deps/table3-aaa32ffa526ce687.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-aaa32ffa526ce687: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
