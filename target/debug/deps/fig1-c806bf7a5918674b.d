/root/repo/target/debug/deps/fig1-c806bf7a5918674b.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-c806bf7a5918674b: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
