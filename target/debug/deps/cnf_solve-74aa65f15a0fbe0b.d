/root/repo/target/debug/deps/cnf_solve-74aa65f15a0fbe0b.d: crates/encode/src/bin/cnf_solve.rs

/root/repo/target/debug/deps/cnf_solve-74aa65f15a0fbe0b: crates/encode/src/bin/cnf_solve.rs

crates/encode/src/bin/cnf_solve.rs:
