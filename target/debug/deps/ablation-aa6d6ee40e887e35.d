/root/repo/target/debug/deps/ablation-aa6d6ee40e887e35.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-aa6d6ee40e887e35: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
