/root/repo/target/debug/deps/encodings_agree-5fc3ddae53f2fc7f.d: tests/encodings_agree.rs

/root/repo/target/debug/deps/encodings_agree-5fc3ddae53f2fc7f: tests/encodings_agree.rs

tests/encodings_agree.rs:
