/root/repo/target/debug/deps/commutation-5217bcff046c4050.d: tests/commutation.rs

/root/repo/target/debug/deps/commutation-5217bcff046c4050: tests/commutation.rs

tests/commutation.rs:
