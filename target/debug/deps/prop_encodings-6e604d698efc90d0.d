/root/repo/target/debug/deps/prop_encodings-6e604d698efc90d0.d: crates/encode/tests/prop_encodings.rs

/root/repo/target/debug/deps/prop_encodings-6e604d698efc90d0: crates/encode/tests/prop_encodings.rs

crates/encode/tests/prop_encodings.rs:
