/root/repo/target/debug/deps/olsq2_heuristic-15d1142c1a121eb0.d: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

/root/repo/target/debug/deps/olsq2_heuristic-15d1142c1a121eb0: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

crates/heuristic/src/lib.rs:
crates/heuristic/src/astar.rs:
crates/heuristic/src/retime.rs:
crates/heuristic/src/sabre.rs:
crates/heuristic/src/satmap.rs:
