/root/repo/target/debug/deps/olsq2_sat-943952470375530a.d: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/olsq2_sat-943952470375530a: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/clause.rs:
crates/sat/src/heap.rs:
crates/sat/src/lit.rs:
crates/sat/src/preprocess.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
