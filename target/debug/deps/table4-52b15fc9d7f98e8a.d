/root/repo/target/debug/deps/table4-52b15fc9d7f98e8a.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-52b15fc9d7f98e8a: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
