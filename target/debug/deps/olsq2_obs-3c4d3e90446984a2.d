/root/repo/target/debug/deps/olsq2_obs-3c4d3e90446984a2.d: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libolsq2_obs-3c4d3e90446984a2.rlib: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libolsq2_obs-3c4d3e90446984a2.rmeta: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/prom.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
