/root/repo/target/debug/deps/olsq2_layout-45a06d901793f7c5.d: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

/root/repo/target/debug/deps/libolsq2_layout-45a06d901793f7c5.rlib: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

/root/repo/target/debug/deps/libolsq2_layout-45a06d901793f7c5.rmeta: crates/layout/src/lib.rs crates/layout/src/emit.rs crates/layout/src/fidelity.rs crates/layout/src/result.rs crates/layout/src/verify.rs

crates/layout/src/lib.rs:
crates/layout/src/emit.rs:
crates/layout/src/fidelity.rs:
crates/layout/src/result.rs:
crates/layout/src/verify.rs:
