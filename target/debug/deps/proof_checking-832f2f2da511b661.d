/root/repo/target/debug/deps/proof_checking-832f2f2da511b661.d: crates/sat/tests/proof_checking.rs

/root/repo/target/debug/deps/proof_checking-832f2f2da511b661: crates/sat/tests/proof_checking.rs

crates/sat/tests/proof_checking.rs:
