/root/repo/target/debug/deps/olsq2_encode-6f8786f65151068a.d: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/debug/deps/olsq2_encode-6f8786f65151068a: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

crates/encode/src/lib.rs:
crates/encode/src/bitvec.rs:
crates/encode/src/cardinality.rs:
crates/encode/src/dimacs.rs:
crates/encode/src/families.rs:
crates/encode/src/gates.rs:
crates/encode/src/onehot.rs:
crates/encode/src/sink.rs:
