/root/repo/target/debug/deps/service_e2e-c325bef1171e37a8.d: crates/service/tests/service_e2e.rs

/root/repo/target/debug/deps/service_e2e-c325bef1171e37a8: crates/service/tests/service_e2e.rs

crates/service/tests/service_e2e.rs:
