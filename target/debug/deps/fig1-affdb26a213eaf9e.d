/root/repo/target/debug/deps/fig1-affdb26a213eaf9e.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-affdb26a213eaf9e: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
