/root/repo/target/debug/deps/olsq2_bench-706eeeccc6e33c82.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libolsq2_bench-706eeeccc6e33c82.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
