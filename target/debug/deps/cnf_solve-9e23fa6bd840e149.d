/root/repo/target/debug/deps/cnf_solve-9e23fa6bd840e149.d: crates/encode/src/bin/cnf_solve.rs Cargo.toml

/root/repo/target/debug/deps/libcnf_solve-9e23fa6bd840e149.rmeta: crates/encode/src/bin/cnf_solve.rs Cargo.toml

crates/encode/src/bin/cnf_solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
