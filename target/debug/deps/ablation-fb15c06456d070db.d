/root/repo/target/debug/deps/ablation-fb15c06456d070db.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-fb15c06456d070db: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
