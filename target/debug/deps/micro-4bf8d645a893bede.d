/root/repo/target/debug/deps/micro-4bf8d645a893bede.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-4bf8d645a893bede.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
