/root/repo/target/debug/deps/olsq2-b11e08c85897557a.d: crates/cli/src/bin/olsq2.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2-b11e08c85897557a.rmeta: crates/cli/src/bin/olsq2.rs Cargo.toml

crates/cli/src/bin/olsq2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
