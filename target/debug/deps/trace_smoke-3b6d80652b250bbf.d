/root/repo/target/debug/deps/trace_smoke-3b6d80652b250bbf.d: tests/trace_smoke.rs

/root/repo/target/debug/deps/trace_smoke-3b6d80652b250bbf: tests/trace_smoke.rs

tests/trace_smoke.rs:
