/root/repo/target/debug/deps/table4-5f7d5aec1974234a.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-5f7d5aec1974234a: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
