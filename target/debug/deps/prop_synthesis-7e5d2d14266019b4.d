/root/repo/target/debug/deps/prop_synthesis-7e5d2d14266019b4.d: tests/prop_synthesis.rs Cargo.toml

/root/repo/target/debug/deps/libprop_synthesis-7e5d2d14266019b4.rmeta: tests/prop_synthesis.rs Cargo.toml

tests/prop_synthesis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
