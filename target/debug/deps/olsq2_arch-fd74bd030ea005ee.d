/root/repo/target/debug/deps/olsq2_arch-fd74bd030ea005ee.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_arch-fd74bd030ea005ee.rmeta: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
