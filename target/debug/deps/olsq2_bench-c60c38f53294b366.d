/root/repo/target/debug/deps/olsq2_bench-c60c38f53294b366.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_bench-c60c38f53294b366.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
