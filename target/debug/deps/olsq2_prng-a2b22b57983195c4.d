/root/repo/target/debug/deps/olsq2_prng-a2b22b57983195c4.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libolsq2_prng-a2b22b57983195c4.rlib: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libolsq2_prng-a2b22b57983195c4.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
