/root/repo/target/debug/deps/olsq2_sat-d9571571d4f2c7ca.d: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libolsq2_sat-d9571571d4f2c7ca.rlib: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libolsq2_sat-d9571571d4f2c7ca.rmeta: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/clause.rs:
crates/sat/src/heap.rs:
crates/sat/src/lit.rs:
crates/sat/src/preprocess.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
