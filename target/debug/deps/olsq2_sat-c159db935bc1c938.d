/root/repo/target/debug/deps/olsq2_sat-c159db935bc1c938.d: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_sat-c159db935bc1c938.rmeta: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs Cargo.toml

crates/sat/src/lib.rs:
crates/sat/src/clause.rs:
crates/sat/src/heap.rs:
crates/sat/src/lit.rs:
crates/sat/src/preprocess.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
