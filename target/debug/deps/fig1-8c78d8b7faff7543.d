/root/repo/target/debug/deps/fig1-8c78d8b7faff7543.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-8c78d8b7faff7543.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
