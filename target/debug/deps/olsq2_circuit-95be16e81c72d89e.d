/root/repo/target/debug/deps/olsq2_circuit-95be16e81c72d89e.d: crates/circuit/src/lib.rs crates/circuit/src/circuit.rs crates/circuit/src/dag.rs crates/circuit/src/gate.rs crates/circuit/src/generators/mod.rs crates/circuit/src/generators/adders.rs crates/circuit/src/generators/arithmetic.rs crates/circuit/src/generators/graphs.rs crates/circuit/src/generators/qaoa.rs crates/circuit/src/generators/qft.rs crates/circuit/src/generators/queko.rs crates/circuit/src/qasm.rs

/root/repo/target/debug/deps/libolsq2_circuit-95be16e81c72d89e.rmeta: crates/circuit/src/lib.rs crates/circuit/src/circuit.rs crates/circuit/src/dag.rs crates/circuit/src/gate.rs crates/circuit/src/generators/mod.rs crates/circuit/src/generators/adders.rs crates/circuit/src/generators/arithmetic.rs crates/circuit/src/generators/graphs.rs crates/circuit/src/generators/qaoa.rs crates/circuit/src/generators/qft.rs crates/circuit/src/generators/queko.rs crates/circuit/src/qasm.rs

crates/circuit/src/lib.rs:
crates/circuit/src/circuit.rs:
crates/circuit/src/dag.rs:
crates/circuit/src/gate.rs:
crates/circuit/src/generators/mod.rs:
crates/circuit/src/generators/adders.rs:
crates/circuit/src/generators/arithmetic.rs:
crates/circuit/src/generators/graphs.rs:
crates/circuit/src/generators/qaoa.rs:
crates/circuit/src/generators/qft.rs:
crates/circuit/src/generators/queko.rs:
crates/circuit/src/qasm.rs:
