/root/repo/target/debug/deps/olsq2-cdc99c0bd33d26fe.d: crates/cli/src/bin/olsq2.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2-cdc99c0bd33d26fe.rmeta: crates/cli/src/bin/olsq2.rs Cargo.toml

crates/cli/src/bin/olsq2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
