/root/repo/target/debug/deps/olsq2_suite-b7ae213fa6ed0662.d: src/lib.rs

/root/repo/target/debug/deps/libolsq2_suite-b7ae213fa6ed0662.rlib: src/lib.rs

/root/repo/target/debug/deps/libolsq2_suite-b7ae213fa6ed0662.rmeta: src/lib.rs

src/lib.rs:
