/root/repo/target/debug/deps/proof_checking-2855afb665f3fdaa.d: crates/sat/tests/proof_checking.rs Cargo.toml

/root/repo/target/debug/deps/libproof_checking-2855afb665f3fdaa.rmeta: crates/sat/tests/proof_checking.rs Cargo.toml

crates/sat/tests/proof_checking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
