/root/repo/target/debug/deps/olsq2_heuristic-2d8e71d671a22f08.d: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_heuristic-2d8e71d671a22f08.rmeta: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs Cargo.toml

crates/heuristic/src/lib.rs:
crates/heuristic/src/astar.rs:
crates/heuristic/src/retime.rs:
crates/heuristic/src/sabre.rs:
crates/heuristic/src/satmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
