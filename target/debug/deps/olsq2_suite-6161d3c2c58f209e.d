/root/repo/target/debug/deps/olsq2_suite-6161d3c2c58f209e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_suite-6161d3c2c58f209e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
