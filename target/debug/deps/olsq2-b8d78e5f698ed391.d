/root/repo/target/debug/deps/olsq2-b8d78e5f698ed391.d: crates/cli/src/bin/olsq2.rs

/root/repo/target/debug/deps/olsq2-b8d78e5f698ed391: crates/cli/src/bin/olsq2.rs

crates/cli/src/bin/olsq2.rs:
