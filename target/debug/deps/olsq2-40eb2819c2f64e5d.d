/root/repo/target/debug/deps/olsq2-40eb2819c2f64e5d.d: crates/cli/src/bin/olsq2.rs

/root/repo/target/debug/deps/olsq2-40eb2819c2f64e5d: crates/cli/src/bin/olsq2.rs

crates/cli/src/bin/olsq2.rs:
