/root/repo/target/debug/deps/olsq2_arch-da174dc2d74d2d7f.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

/root/repo/target/debug/deps/libolsq2_arch-da174dc2d74d2d7f.rmeta: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/graph.rs:
