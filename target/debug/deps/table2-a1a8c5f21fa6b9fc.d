/root/repo/target/debug/deps/table2-a1a8c5f21fa6b9fc.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a1a8c5f21fa6b9fc: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
