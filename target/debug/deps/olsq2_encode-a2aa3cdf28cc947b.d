/root/repo/target/debug/deps/olsq2_encode-a2aa3cdf28cc947b.d: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/debug/deps/libolsq2_encode-a2aa3cdf28cc947b.rmeta: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

crates/encode/src/lib.rs:
crates/encode/src/bitvec.rs:
crates/encode/src/cardinality.rs:
crates/encode/src/dimacs.rs:
crates/encode/src/families.rs:
crates/encode/src/gates.rs:
crates/encode/src/onehot.rs:
crates/encode/src/sink.rs:
