/root/repo/target/debug/deps/qasm_pipeline-999123568e5f8eca.d: tests/qasm_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libqasm_pipeline-999123568e5f8eca.rmeta: tests/qasm_pipeline.rs Cargo.toml

tests/qasm_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
