/root/repo/target/debug/deps/prop_encodings-edcd9c3e89475574.d: crates/encode/tests/prop_encodings.rs Cargo.toml

/root/repo/target/debug/deps/libprop_encodings-edcd9c3e89475574.rmeta: crates/encode/tests/prop_encodings.rs Cargo.toml

crates/encode/tests/prop_encodings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
