/root/repo/target/debug/deps/olsq2-95213b7eda758f0d.d: crates/cli/src/bin/olsq2.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2-95213b7eda758f0d.rmeta: crates/cli/src/bin/olsq2.rs Cargo.toml

crates/cli/src/bin/olsq2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
