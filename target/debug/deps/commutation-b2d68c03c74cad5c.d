/root/repo/target/debug/deps/commutation-b2d68c03c74cad5c.d: tests/commutation.rs Cargo.toml

/root/repo/target/debug/deps/libcommutation-b2d68c03c74cad5c.rmeta: tests/commutation.rs Cargo.toml

tests/commutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
