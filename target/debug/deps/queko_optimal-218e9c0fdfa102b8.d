/root/repo/target/debug/deps/queko_optimal-218e9c0fdfa102b8.d: tests/queko_optimal.rs Cargo.toml

/root/repo/target/debug/deps/libqueko_optimal-218e9c0fdfa102b8.rmeta: tests/queko_optimal.rs Cargo.toml

tests/queko_optimal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
