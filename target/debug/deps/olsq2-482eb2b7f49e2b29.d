/root/repo/target/debug/deps/olsq2-482eb2b7f49e2b29.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

/root/repo/target/debug/deps/libolsq2-482eb2b7f49e2b29.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

/root/repo/target/debug/deps/libolsq2-482eb2b7f49e2b29.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/incumbent.rs:
crates/core/src/model.rs:
crates/core/src/optimize.rs:
crates/core/src/portfolio.rs:
crates/core/src/transition.rs:
crates/core/src/vars.rs:
