/root/repo/target/debug/deps/olsq2_prng-37348835fbe97a32.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libolsq2_prng-37348835fbe97a32.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
