/root/repo/target/debug/deps/olsq2_bench-7e75f71fdcb628c0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/olsq2_bench-7e75f71fdcb628c0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
