/root/repo/target/debug/deps/commutation-ebe254036d4979cf.d: tests/commutation.rs

/root/repo/target/debug/deps/commutation-ebe254036d4979cf: tests/commutation.rs

tests/commutation.rs:
