/root/repo/target/debug/deps/prop_synthesis-8e98de5ee3a4a18e.d: tests/prop_synthesis.rs

/root/repo/target/debug/deps/prop_synthesis-8e98de5ee3a4a18e: tests/prop_synthesis.rs

tests/prop_synthesis.rs:
