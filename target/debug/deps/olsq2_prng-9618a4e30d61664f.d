/root/repo/target/debug/deps/olsq2_prng-9618a4e30d61664f.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/olsq2_prng-9618a4e30d61664f: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
