/root/repo/target/debug/deps/olsq2_encode-2fce8077f32bf70f.d: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_encode-2fce8077f32bf70f.rmeta: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs Cargo.toml

crates/encode/src/lib.rs:
crates/encode/src/bitvec.rs:
crates/encode/src/cardinality.rs:
crates/encode/src/dimacs.rs:
crates/encode/src/families.rs:
crates/encode/src/gates.rs:
crates/encode/src/onehot.rs:
crates/encode/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
