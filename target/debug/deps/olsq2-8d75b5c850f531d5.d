/root/repo/target/debug/deps/olsq2-8d75b5c850f531d5.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2-8d75b5c850f531d5.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/incumbent.rs:
crates/core/src/model.rs:
crates/core/src/optimize.rs:
crates/core/src/portfolio.rs:
crates/core/src/transition.rs:
crates/core/src/vars.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
