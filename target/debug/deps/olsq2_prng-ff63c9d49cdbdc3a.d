/root/repo/target/debug/deps/olsq2_prng-ff63c9d49cdbdc3a.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_prng-ff63c9d49cdbdc3a.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
