/root/repo/target/debug/deps/olsq2_encode-c21c5fb048a617ba.d: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/debug/deps/libolsq2_encode-c21c5fb048a617ba.rlib: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/debug/deps/libolsq2_encode-c21c5fb048a617ba.rmeta: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/families.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

crates/encode/src/lib.rs:
crates/encode/src/bitvec.rs:
crates/encode/src/cardinality.rs:
crates/encode/src/dimacs.rs:
crates/encode/src/families.rs:
crates/encode/src/gates.rs:
crates/encode/src/onehot.rs:
crates/encode/src/sink.rs:
