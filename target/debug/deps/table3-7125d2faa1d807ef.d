/root/repo/target/debug/deps/table3-7125d2faa1d807ef.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-7125d2faa1d807ef: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
