/root/repo/target/debug/deps/olsq2_suite-8ad14d3ecab5730b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_suite-8ad14d3ecab5730b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
