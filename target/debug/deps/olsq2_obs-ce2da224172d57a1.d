/root/repo/target/debug/deps/olsq2_obs-ce2da224172d57a1.d: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/olsq2_obs-ce2da224172d57a1: crates/obs/src/lib.rs crates/obs/src/prom.rs crates/obs/src/recorder.rs crates/obs/src/report.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/prom.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
crates/obs/src/trace.rs:
