/root/repo/target/debug/deps/queko_optimal-e577005d7e3507ae.d: tests/queko_optimal.rs

/root/repo/target/debug/deps/queko_optimal-e577005d7e3507ae: tests/queko_optimal.rs

tests/queko_optimal.rs:
