/root/repo/target/debug/deps/olsq2_suite-64fa06643318236c.d: src/lib.rs

/root/repo/target/debug/deps/olsq2_suite-64fa06643318236c: src/lib.rs

src/lib.rs:
