/root/repo/target/debug/deps/cnf_solve-9553875487b33cde.d: crates/encode/src/bin/cnf_solve.rs

/root/repo/target/debug/deps/cnf_solve-9553875487b33cde: crates/encode/src/bin/cnf_solve.rs

crates/encode/src/bin/cnf_solve.rs:
