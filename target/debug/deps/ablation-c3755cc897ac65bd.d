/root/repo/target/debug/deps/ablation-c3755cc897ac65bd.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-c3755cc897ac65bd.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
