/root/repo/target/debug/deps/table1-389da62d7d1eec03.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-389da62d7d1eec03: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
