/root/repo/target/debug/deps/olsq2_bench-c23bfa03a829fedc.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_bench-c23bfa03a829fedc.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
