/root/repo/target/debug/deps/olsq2_service-88aa974fc44d5e64.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

/root/repo/target/debug/deps/libolsq2_service-88aa974fc44d5e64.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/json.rs:
crates/service/src/manifest.rs:
crates/service/src/metrics.rs:
crates/service/src/request.rs:
crates/service/src/service.rs:
