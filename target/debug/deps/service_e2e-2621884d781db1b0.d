/root/repo/target/debug/deps/service_e2e-2621884d781db1b0.d: crates/service/tests/service_e2e.rs

/root/repo/target/debug/deps/service_e2e-2621884d781db1b0: crates/service/tests/service_e2e.rs

crates/service/tests/service_e2e.rs:
