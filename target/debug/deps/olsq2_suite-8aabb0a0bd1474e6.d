/root/repo/target/debug/deps/olsq2_suite-8aabb0a0bd1474e6.d: src/lib.rs

/root/repo/target/debug/deps/libolsq2_suite-8aabb0a0bd1474e6.rlib: src/lib.rs

/root/repo/target/debug/deps/libolsq2_suite-8aabb0a0bd1474e6.rmeta: src/lib.rs

src/lib.rs:
