/root/repo/target/debug/deps/olsq2_bench-c30c684469f7389a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libolsq2_bench-c30c684469f7389a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libolsq2_bench-c30c684469f7389a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
