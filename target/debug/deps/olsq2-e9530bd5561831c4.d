/root/repo/target/debug/deps/olsq2-e9530bd5561831c4.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

/root/repo/target/debug/deps/olsq2-e9530bd5561831c4: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/incumbent.rs crates/core/src/model.rs crates/core/src/optimize.rs crates/core/src/portfolio.rs crates/core/src/transition.rs crates/core/src/vars.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/incumbent.rs:
crates/core/src/model.rs:
crates/core/src/optimize.rs:
crates/core/src/portfolio.rs:
crates/core/src/transition.rs:
crates/core/src/vars.rs:
