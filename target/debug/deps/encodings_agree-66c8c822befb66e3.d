/root/repo/target/debug/deps/encodings_agree-66c8c822befb66e3.d: tests/encodings_agree.rs

/root/repo/target/debug/deps/encodings_agree-66c8c822befb66e3: tests/encodings_agree.rs

tests/encodings_agree.rs:
