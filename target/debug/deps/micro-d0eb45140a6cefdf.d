/root/repo/target/debug/deps/micro-d0eb45140a6cefdf.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-d0eb45140a6cefdf.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
