/root/repo/target/debug/deps/queko_optimal-e9551c2dd89c19b3.d: tests/queko_optimal.rs Cargo.toml

/root/repo/target/debug/deps/libqueko_optimal-e9551c2dd89c19b3.rmeta: tests/queko_optimal.rs Cargo.toml

tests/queko_optimal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
