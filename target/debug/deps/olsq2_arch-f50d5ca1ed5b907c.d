/root/repo/target/debug/deps/olsq2_arch-f50d5ca1ed5b907c.d: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

/root/repo/target/debug/deps/olsq2_arch-f50d5ca1ed5b907c: crates/arch/src/lib.rs crates/arch/src/devices.rs crates/arch/src/graph.rs

crates/arch/src/lib.rs:
crates/arch/src/devices.rs:
crates/arch/src/graph.rs:
