/root/repo/target/debug/deps/olsq2_prng-cce6fbc6098fa193.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_prng-cce6fbc6098fa193.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
