/root/repo/target/debug/deps/olsq2_circuit-f547da3be63383f4.d: crates/circuit/src/lib.rs crates/circuit/src/circuit.rs crates/circuit/src/dag.rs crates/circuit/src/gate.rs crates/circuit/src/generators/mod.rs crates/circuit/src/generators/adders.rs crates/circuit/src/generators/arithmetic.rs crates/circuit/src/generators/graphs.rs crates/circuit/src/generators/qaoa.rs crates/circuit/src/generators/qft.rs crates/circuit/src/generators/queko.rs crates/circuit/src/qasm.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_circuit-f547da3be63383f4.rmeta: crates/circuit/src/lib.rs crates/circuit/src/circuit.rs crates/circuit/src/dag.rs crates/circuit/src/gate.rs crates/circuit/src/generators/mod.rs crates/circuit/src/generators/adders.rs crates/circuit/src/generators/arithmetic.rs crates/circuit/src/generators/graphs.rs crates/circuit/src/generators/qaoa.rs crates/circuit/src/generators/qft.rs crates/circuit/src/generators/queko.rs crates/circuit/src/qasm.rs Cargo.toml

crates/circuit/src/lib.rs:
crates/circuit/src/circuit.rs:
crates/circuit/src/dag.rs:
crates/circuit/src/gate.rs:
crates/circuit/src/generators/mod.rs:
crates/circuit/src/generators/adders.rs:
crates/circuit/src/generators/arithmetic.rs:
crates/circuit/src/generators/graphs.rs:
crates/circuit/src/generators/qaoa.rs:
crates/circuit/src/generators/qft.rs:
crates/circuit/src/generators/queko.rs:
crates/circuit/src/qasm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
