/root/repo/target/debug/deps/commutation-720c79a2aeb5d586.d: tests/commutation.rs Cargo.toml

/root/repo/target/debug/deps/libcommutation-720c79a2aeb5d586.rmeta: tests/commutation.rs Cargo.toml

tests/commutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
