/root/repo/target/debug/deps/olsq2_encode-2e3a6f815702d9b0.d: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/debug/deps/libolsq2_encode-2e3a6f815702d9b0.rlib: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

/root/repo/target/debug/deps/libolsq2_encode-2e3a6f815702d9b0.rmeta: crates/encode/src/lib.rs crates/encode/src/bitvec.rs crates/encode/src/cardinality.rs crates/encode/src/dimacs.rs crates/encode/src/gates.rs crates/encode/src/onehot.rs crates/encode/src/sink.rs

crates/encode/src/lib.rs:
crates/encode/src/bitvec.rs:
crates/encode/src/cardinality.rs:
crates/encode/src/dimacs.rs:
crates/encode/src/gates.rs:
crates/encode/src/onehot.rs:
crates/encode/src/sink.rs:
