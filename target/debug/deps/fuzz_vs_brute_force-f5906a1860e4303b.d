/root/repo/target/debug/deps/fuzz_vs_brute_force-f5906a1860e4303b.d: crates/sat/tests/fuzz_vs_brute_force.rs

/root/repo/target/debug/deps/fuzz_vs_brute_force-f5906a1860e4303b: crates/sat/tests/fuzz_vs_brute_force.rs

crates/sat/tests/fuzz_vs_brute_force.rs:
