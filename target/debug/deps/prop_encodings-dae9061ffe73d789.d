/root/repo/target/debug/deps/prop_encodings-dae9061ffe73d789.d: crates/encode/tests/prop_encodings.rs

/root/repo/target/debug/deps/prop_encodings-dae9061ffe73d789: crates/encode/tests/prop_encodings.rs

crates/encode/tests/prop_encodings.rs:
