/root/repo/target/debug/deps/olsq2_heuristic-bb2c15eb7d6e0885.d: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

/root/repo/target/debug/deps/libolsq2_heuristic-bb2c15eb7d6e0885.rlib: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

/root/repo/target/debug/deps/libolsq2_heuristic-bb2c15eb7d6e0885.rmeta: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

crates/heuristic/src/lib.rs:
crates/heuristic/src/astar.rs:
crates/heuristic/src/retime.rs:
crates/heuristic/src/sabre.rs:
crates/heuristic/src/satmap.rs:
