/root/repo/target/debug/deps/fuzz_vs_brute_force-c17f48255abc7eb3.d: crates/sat/tests/fuzz_vs_brute_force.rs

/root/repo/target/debug/deps/fuzz_vs_brute_force-c17f48255abc7eb3: crates/sat/tests/fuzz_vs_brute_force.rs

crates/sat/tests/fuzz_vs_brute_force.rs:
