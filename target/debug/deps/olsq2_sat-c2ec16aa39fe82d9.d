/root/repo/target/debug/deps/olsq2_sat-c2ec16aa39fe82d9.d: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libolsq2_sat-c2ec16aa39fe82d9.rmeta: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/clause.rs:
crates/sat/src/heap.rs:
crates/sat/src/lit.rs:
crates/sat/src/preprocess.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
