/root/repo/target/debug/deps/olsq2_service-4df2ca14a65c710d.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_service-4df2ca14a65c710d.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/json.rs crates/service/src/manifest.rs crates/service/src/metrics.rs crates/service/src/request.rs crates/service/src/service.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/json.rs:
crates/service/src/manifest.rs:
crates/service/src/metrics.rs:
crates/service/src/request.rs:
crates/service/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
