/root/repo/target/debug/deps/olsq2_sat-c7302d3f61cd8858.d: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2_sat-c7302d3f61cd8858.rmeta: crates/sat/src/lib.rs crates/sat/src/clause.rs crates/sat/src/heap.rs crates/sat/src/lit.rs crates/sat/src/preprocess.rs crates/sat/src/proof.rs crates/sat/src/solver.rs Cargo.toml

crates/sat/src/lib.rs:
crates/sat/src/clause.rs:
crates/sat/src/heap.rs:
crates/sat/src/lit.rs:
crates/sat/src/preprocess.rs:
crates/sat/src/proof.rs:
crates/sat/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
