/root/repo/target/debug/deps/olsq2_heuristic-fb3d387fcfd9181c.d: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

/root/repo/target/debug/deps/libolsq2_heuristic-fb3d387fcfd9181c.rmeta: crates/heuristic/src/lib.rs crates/heuristic/src/astar.rs crates/heuristic/src/retime.rs crates/heuristic/src/sabre.rs crates/heuristic/src/satmap.rs

crates/heuristic/src/lib.rs:
crates/heuristic/src/astar.rs:
crates/heuristic/src/retime.rs:
crates/heuristic/src/sabre.rs:
crates/heuristic/src/satmap.rs:
