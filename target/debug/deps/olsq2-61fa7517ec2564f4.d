/root/repo/target/debug/deps/olsq2-61fa7517ec2564f4.d: crates/cli/src/bin/olsq2.rs Cargo.toml

/root/repo/target/debug/deps/libolsq2-61fa7517ec2564f4.rmeta: crates/cli/src/bin/olsq2.rs Cargo.toml

crates/cli/src/bin/olsq2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
