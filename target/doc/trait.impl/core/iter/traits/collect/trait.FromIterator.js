(function() {
    const implementors = Object.fromEntries([["olsq2_circuit",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;<a class=\"struct\" href=\"olsq2_circuit/struct.Gate.html\" title=\"struct olsq2_circuit::Gate\">Gate</a>&gt; for <a class=\"struct\" href=\"olsq2_circuit/struct.Circuit.html\" title=\"struct olsq2_circuit::Circuit\">Circuit</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[447]}