(function() {
    const implementors = Object.fromEntries([["olsq2_obs",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"olsq2_obs/struct.SpanGuard.html\" title=\"struct olsq2_obs::SpanGuard\">SpanGuard</a>",0]]],["olsq2_service",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"olsq2_service/service/struct.SynthesisService.html\" title=\"struct olsq2_service::service::SynthesisService\">SynthesisService</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[281,332]}