(function() {
    const implementors = Object.fromEntries([["olsq2_sat",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"olsq2_sat/struct.Lit.html\" title=\"struct olsq2_sat::Lit\">Lit</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"olsq2_sat/struct.Var.html\" title=\"struct olsq2_sat::Var\">Var</a>",0]]],["olsq2_service",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"enum\" href=\"olsq2_service/request/enum.Priority.html\" title=\"enum olsq2_service::request::Priority\">Priority</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[483,288]}