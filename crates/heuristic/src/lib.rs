//! # olsq2-heuristic
//!
//! Heuristic layout-synthesis baselines for the OLSQ2 reproduction:
//!
//! * [`sabre_route`] — a from-scratch SABRE (Li et al., ASPLOS 2019), the
//!   leading heuristic synthesizer the paper compares against in
//!   Tables III–IV;
//! * [`satmap_route`] — a SATMap-style slice-and-relax mapper (after
//!   Molavi et al., MICRO 2022), the second baseline of Table IV.
//!
//! Both produce [`olsq2_layout::LayoutResult`] values that pass the same
//! five-constraint verifier as the exact synthesizers.
//!
//! ## Example
//!
//! ```
//! use olsq2_heuristic::{sabre_route, SabreConfig};
//! use olsq2_arch::sycamore54;
//! use olsq2_circuit::generators::qaoa_circuit;
//! use olsq2_layout::verify;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = qaoa_circuit(16, 42);
//! let device = sycamore54();
//! let mut config = SabreConfig::default();
//! config.swap_duration = 1;
//! let result = sabre_route(&circuit, &device, &config)?;
//! assert_eq!(verify(&circuit, &device, &result), Ok(()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod astar;
mod retime;
mod sabre;
mod satmap;

pub use astar::{astar_route, AstarConfig};
pub use sabre::{sabre_route, SabreConfig, SabreError};
pub use satmap::{satmap_route, SatMapConfig, SatMapError, SatMapOutcome};
