//! A*-based layer routing (after Zulehner, Paler, Wille, "An efficient
//! methodology for mapping quantum circuits to the IBM QX architectures",
//! TCAD 2018) — the depth-partitioning baseline the OLSQ2 paper's
//! related-work section critiques as greedy and therefore sub-optimal.
//!
//! The circuit is partitioned into layers of independent gates; for each
//! layer an A* search over mappings finds a SWAP sequence making every
//! two-qubit gate of the layer executable. The per-layer search is
//! optimal; the *partitioning* is greedy — exactly the structural
//! sub-optimality the paper contrasts with OLSQ2's global model.

use crate::retime::{retime, RoutedOp};
use crate::SabreError;
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, DependencyGraph, Operands};
use olsq2_layout::LayoutResult;
use std::collections::{BinaryHeap, HashMap};

/// Parameters for the A* router.
#[derive(Debug, Clone, PartialEq)]
pub struct AstarConfig {
    /// SWAP duration for the emitted schedule.
    pub swap_duration: usize,
    /// Cap on expanded states per layer; beyond it the best-so-far node is
    /// taken greedily (prevents pathological layers from exploding).
    pub max_expansions: usize,
}

impl Default for AstarConfig {
    fn default() -> Self {
        AstarConfig {
            swap_duration: 3,
            max_expansions: 200_000,
        }
    }
}

/// Admissible heuristic: each SWAP moves two qubits one step, so it can
/// reduce the summed gate distances by at most 2.
fn heuristic(graph: &CouplingGraph, mapping: &[u16], pairs: &[(u16, u16)]) -> usize {
    let total: usize = pairs
        .iter()
        .map(|&(a, b)| {
            graph
                .distance(mapping[a as usize], mapping[b as usize])
                .map(|d| (d as usize).saturating_sub(1))
                .unwrap_or(usize::MAX / 4)
        })
        .sum();
    total.div_ceil(2)
}

fn goal(graph: &CouplingGraph, mapping: &[u16], pairs: &[(u16, u16)]) -> bool {
    pairs
        .iter()
        .all(|&(a, b)| graph.is_adjacent(mapping[a as usize], mapping[b as usize]))
}

/// A* over mappings for one layer. Returns the swap sequence (edge
/// indices) and the resulting mapping.
fn route_layer(
    graph: &CouplingGraph,
    start: &[u16],
    pairs: &[(u16, u16)],
    max_expansions: usize,
) -> Option<(Vec<usize>, Vec<u16>)> {
    if goal(graph, start, pairs) {
        return Some((Vec::new(), start.to_vec()));
    }
    #[derive(PartialEq, Eq)]
    struct Node {
        f: usize,
        g: usize,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap by f, tie-break on larger g (deeper first).
            other
                .f
                .cmp(&self.f)
                .then(self.g.cmp(&other.g))
                .then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    // Arena of states: mapping, parent, and the edge swapped to get here.
    type State = (Vec<u16>, Option<(usize, usize)>);
    let mut states: Vec<State> = vec![(start.to_vec(), None)];
    let mut best_g: HashMap<Vec<u16>, usize> = HashMap::new();
    best_g.insert(start.to_vec(), 0);
    let mut open = BinaryHeap::new();
    open.push(Node {
        f: heuristic(graph, start, pairs),
        g: 0,
        id: 0,
    });
    let mut expansions = 0usize;
    let mut best_seen: (usize, usize) = (usize::MAX, 0); // (h, id) fallback

    // Only edges touching a qubit that is relevant to the layer (or becomes
    // relevant transitively) matter; for simplicity expand all edges —
    // device edge counts are small (≤ ~150).
    while let Some(Node { g, id, .. }) = open.pop() {
        let mapping = states[id].0.clone();
        if goal(graph, &mapping, pairs) {
            // Reconstruct the swap path.
            let mut path = Vec::new();
            let mut cur = id;
            while let (_, Some((parent, edge))) = &states[cur] {
                path.push(*edge);
                cur = *parent;
            }
            path.reverse();
            return Some((path, mapping));
        }
        let h_here = heuristic(graph, &mapping, pairs);
        if h_here < best_seen.0 {
            best_seen = (h_here, id);
        }
        expansions += 1;
        if expansions > max_expansions {
            break;
        }
        for e in 0..graph.num_edges() {
            let (a, b) = graph.edge(e);
            let mut next = mapping.clone();
            for m in &mut next {
                if *m == a {
                    *m = b;
                } else if *m == b {
                    *m = a;
                }
            }
            let ng = g + 1;
            if best_g.get(&next).is_some_and(|&old| old <= ng) {
                continue;
            }
            best_g.insert(next.clone(), ng);
            let h = heuristic(graph, &next, pairs);
            states.push((next, Some((id, e))));
            open.push(Node {
                f: ng + h,
                g: ng,
                id: states.len() - 1,
            });
        }
    }
    // Expansion cap hit: greedily walk from the most promising node.
    let (_, mut id) = best_seen;
    let mut mapping = states[id].0.clone();
    let mut path: Vec<usize> = Vec::new();
    {
        let mut cur = id;
        while let (_, Some((parent, edge))) = &states[cur] {
            path.push(*edge);
            cur = *parent;
        }
        path.reverse();
    }
    let _ = &mut id;
    let mut guard = 0;
    while !goal(graph, &mapping, pairs) {
        guard += 1;
        if guard > graph.num_qubits() * graph.num_qubits() {
            return None;
        }
        // Greedy: the swap with the best heuristic improvement.
        let mut best: Option<(usize, usize)> = None;
        for e in 0..graph.num_edges() {
            let (a, b) = graph.edge(e);
            let mut next = mapping.clone();
            for m in &mut next {
                if *m == a {
                    *m = b;
                } else if *m == b {
                    *m = a;
                }
            }
            let h = heuristic(graph, &next, pairs);
            if best.is_none_or(|(bh, _)| h < bh) {
                best = Some((h, e));
            }
        }
        let (_, e) = best?;
        let (a, b) = graph.edge(e);
        for m in &mut mapping {
            if *m == a {
                *m = b;
            } else if *m == b {
                *m = a;
            }
        }
        path.push(e);
    }
    Some((path, mapping))
}

/// Routes a circuit layer-by-layer with per-layer A* (Zulehner-style).
///
/// # Errors
///
/// [`SabreError::TooManyQubits`] when the circuit does not fit;
/// [`SabreError::Stuck`] if a layer cannot be routed (disconnected device).
///
/// # Examples
///
/// ```
/// use olsq2_heuristic::{astar_route, AstarConfig};
/// use olsq2_arch::line;
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// use olsq2_layout::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new(3);
/// c.push(Gate::two(GateKind::Cx, 0, 1));
/// c.push(Gate::two(GateKind::Cx, 0, 2));
/// let graph = line(3);
/// let result = astar_route(&c, &graph, &AstarConfig::default())?;
/// assert_eq!(verify(&c, &graph, &result), Ok(()));
/// # Ok(())
/// # }
/// ```
pub fn astar_route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    config: &AstarConfig,
) -> Result<LayoutResult, SabreError> {
    let nq = circuit.num_qubits();
    let np = graph.num_qubits();
    if nq > np {
        return Err(SabreError::TooManyQubits {
            program: nq,
            physical: np,
        });
    }
    let initial_mapping: Vec<u16> = (0..nq as u16).collect();
    if circuit.num_gates() == 0 {
        return Ok(LayoutResult {
            initial_mapping,
            schedule: vec![],
            swaps: vec![],
            depth: 0,
            swap_duration: config.swap_duration.max(1),
        });
    }
    let dag = DependencyGraph::new(circuit);
    let layers = dag.layers();
    let mut mapping = initial_mapping.clone();
    let mut ops: Vec<RoutedOp> = Vec::with_capacity(circuit.num_gates());
    for layer in layers {
        let pairs: Vec<(u16, u16)> = layer
            .iter()
            .filter_map(|&g| match circuit.gate(g).operands {
                Operands::Two(a, b) => Some((a, b)),
                Operands::One(_) => None,
            })
            .collect();
        if !pairs.is_empty() {
            let (swaps, new_mapping) = route_layer(graph, &mapping, &pairs, config.max_expansions)
                .ok_or(SabreError::Stuck)?;
            for e in swaps {
                ops.push(RoutedOp::Swap(e));
            }
            mapping = new_mapping;
        }
        for &g in &layer {
            ops.push(RoutedOp::Gate(g));
        }
    }
    Ok(retime(
        circuit,
        graph,
        &initial_mapping,
        &ops,
        config.swap_duration,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_arch::{grid, line};
    use olsq2_circuit::generators::{qaoa_circuit, tof_circuit};
    use olsq2_circuit::{Gate, GateKind};
    use olsq2_layout::verify;

    #[test]
    fn routes_adjacent_circuit_without_swaps() {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        let graph = line(3);
        let r = astar_route(&c, &graph, &AstarConfig::default()).expect("routes");
        assert_eq!(r.swap_count(), 0);
        assert_eq!(verify(&c, &graph, &r), Ok(()));
    }

    #[test]
    fn routes_triangle_on_line() {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let r = astar_route(&c, &graph, &AstarConfig::default()).expect("routes");
        assert_eq!(verify(&c, &graph, &r), Ok(()));
        assert!(r.swap_count() >= 1);
    }

    #[test]
    fn routes_qaoa_on_grid() {
        let c = qaoa_circuit(10, 3);
        let graph = grid(4, 4);
        let cfg = AstarConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let r = astar_route(&c, &graph, &cfg).expect("routes");
        assert_eq!(verify(&c, &graph, &r), Ok(()));
    }

    #[test]
    fn routes_tof_on_grid() {
        let c = tof_circuit(4);
        let graph = grid(3, 3);
        let r = astar_route(&c, &graph, &AstarConfig::default()).expect("routes");
        assert_eq!(verify(&c, &graph, &r), Ok(()));
    }

    #[test]
    fn per_layer_search_is_optimal_for_single_pair() {
        // One distant pair on a line: A* must use exactly dist-1 swaps.
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        let graph = line(5);
        // Identity mapping puts q0@p0, q1@p1 (adjacent) — craft distance by
        // inserting leading gates? Instead use 3 qubits mapped identity with
        // gate between q0 and q2 on a 3-line: distance 2 → 1 swap.
        let mut c2 = Circuit::new(3);
        c2.push(Gate::two(GateKind::Cx, 0, 2));
        let graph3 = line(3);
        let r = astar_route(&c2, &graph3, &AstarConfig::default()).expect("routes");
        assert_eq!(r.swap_count(), 1);
        assert_eq!(verify(&c2, &graph3, &r), Ok(()));
        let r1 = astar_route(&c, &graph, &AstarConfig::default()).expect("routes");
        assert_eq!(r1.swap_count(), 0);
    }

    #[test]
    fn rejects_oversized() {
        let mut c = Circuit::new(4);
        c.push(Gate::two(GateKind::Cx, 0, 3));
        assert!(astar_route(&c, &line(2), &AstarConfig::default()).is_err());
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(2);
        let r = astar_route(&c, &line(3), &AstarConfig::default()).expect("routes");
        assert_eq!(r.depth, 0);
    }
}
