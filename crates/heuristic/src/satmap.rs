//! A SATMap-style slice-based mapper (after Molavi et al., "Qubit mapping
//! and routing via MaxSAT", MICRO 2022) — the second baseline of Table IV.
//!
//! The constraint-relaxation scheme the OLSQ2 paper describes: the circuit
//! is cut into *slices* whose interaction graphs embed into the device;
//! every slice receives one mapping, consecutive mappings are linked by up
//! to `K` layers of SWAPs, and the **total** SWAP count is minimized
//! jointly over all slices by iterative descent (the MaxSAT objective,
//! realized here as a cardinality bound on the SAT solver).
//!
//! The gate-to-slice assignment is fixed before solving — exactly the
//! "unnecessary constraint" of layer-by-layer methods that the OLSQ2 paper
//! identifies as the source of sub-optimality relative to TB-OLSQ2.

// Indexed `for` loops are deliberate here: slice/edge index loops mirror the encoding.
#![allow(clippy::needless_range_loop)]
use crate::SabreError;
use olsq2::vars::FdVar;
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, Operands};
use olsq2_encode::{gates, CardEncoding, CardinalityNetwork, CnfSink};
use olsq2_layout::{LayoutResult, SwapOp};
use olsq2_sat::{Lit, SolveResult, Solver};
use std::time::{Duration, Instant};

/// Configuration for the slice mapper.
#[derive(Debug, Clone, PartialEq)]
pub struct SatMapConfig {
    /// Maximum SWAP layers per slice transition; the solver starts at 1
    /// and grows to this cap while infeasible.
    pub max_rounds: usize,
    /// Wall-clock budget (mirrors the 24 h timeout the paper applies to
    /// SATMap; exceeding it is the paper's "TO" failure mode).
    pub time_budget: Option<Duration>,
    /// SWAP duration for the emitted schedule.
    pub swap_duration: usize,
}

impl Default for SatMapConfig {
    fn default() -> Self {
        SatMapConfig {
            max_rounds: 8,
            time_budget: None,
            swap_duration: 3,
        }
    }
}

/// Errors from [`satmap_route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatMapError {
    /// The circuit does not fit or cannot be sliced.
    Infeasible(String),
    /// The time budget expired ("TO" in the paper's Table IV).
    Timeout,
}

impl std::fmt::Display for SatMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatMapError::Infeasible(m) => write!(f, "infeasible: {m}"),
            SatMapError::Timeout => write!(f, "time budget exhausted"),
        }
    }
}

impl std::error::Error for SatMapError {}

impl From<SabreError> for SatMapError {
    fn from(e: SabreError) -> Self {
        SatMapError::Infeasible(e.to_string())
    }
}

/// Outcome of the slice mapper.
#[derive(Debug, Clone)]
pub struct SatMapOutcome {
    /// The produced layout.
    pub result: LayoutResult,
    /// Number of slices the circuit was cut into.
    pub slices: usize,
}

/// Distinct interaction pairs of a gate set.
fn distinct_pairs(circuit: &Circuit, gates_in: &[usize]) -> Vec<(u16, u16)> {
    let mut pairs: Vec<(u16, u16)> = gates_in
        .iter()
        .filter_map(|&g| match circuit.gate(g).operands {
            Operands::Two(a, b) => Some((a.min(b), a.max(b))),
            Operands::One(_) => None,
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Adds pairwise-difference injectivity over one mapping epoch.
fn assert_injective(solver: &mut Solver, row: &mut [FdVar]) {
    for q1 in 0..row.len() {
        for q2 in (q1 + 1)..row.len() {
            let diffs: Vec<Lit> = row[q1]
                .raw_lits()
                .iter()
                .zip(row[q2].raw_lits())
                .map(|(&x, y)| gates::xor_lit(solver, x, y))
                .collect();
            let d = gates::or_all(solver, &diffs);
            solver.add_clause([d]);
        }
    }
}

/// Adds the adjacency disjunction for one interaction pair on one epoch.
fn assert_pair_adjacent(
    solver: &mut Solver,
    row: &mut [FdVar],
    graph: &CouplingGraph,
    qa: u16,
    qb: u16,
) {
    let mut options = Vec::with_capacity(2 * graph.num_edges());
    for e in 0..graph.num_edges() {
        let (pa, pb) = graph.edge(e);
        for (x, y) in [(pa, pb), (pb, pa)] {
            let la = row[qa as usize].eq_lit(solver, x as usize);
            let lb = row[qb as usize].eq_lit(solver, y as usize);
            options.push(gates::and_lit(solver, la, lb));
        }
    }
    let any = gates::or_all(solver, &options);
    solver.add_clause([any]);
}

/// Checks whether an interaction graph embeds into the device.
fn embeds(
    nq: usize,
    pairs: &[(u16, u16)],
    graph: &CouplingGraph,
    deadline: Option<Instant>,
) -> Result<bool, SatMapError> {
    let mut solver = Solver::new();
    solver.set_deadline(deadline);
    let mut mapping: Vec<FdVar> = (0..nq)
        .map(|_| FdVar::new_binary(&mut solver, graph.num_qubits()))
        .collect();
    assert_injective(&mut solver, &mut mapping);
    for &(qa, qb) in pairs {
        assert_pair_adjacent(&mut solver, &mut mapping, graph, qa, qb);
    }
    match solver.solve(&[]) {
        SolveResult::Sat => Ok(true),
        SolveResult::Unsat => Ok(false),
        SolveResult::Unknown => Err(SatMapError::Timeout),
    }
}

/// The joint model's decoded solution.
struct JointSolution {
    /// `mapping[epoch][q]`.
    mapping: Vec<Vec<u16>>,
    /// `layers[transition][layer]` = swapped edge indices.
    layers: Vec<Vec<Vec<usize>>>,
}

/// Builds and solves the joint slice model with `k` layers per transition,
/// minimizing total SWAPs by descent. Returns `None` when infeasible at
/// this `k`.
fn solve_joint(
    circuit: &Circuit,
    graph: &CouplingGraph,
    slices: &[Vec<usize>],
    k: usize,
    deadline: Option<Instant>,
) -> Result<Option<JointSolution>, SatMapError> {
    let nq = circuit.num_qubits();
    let np = graph.num_qubits();
    let ne = graph.num_edges();
    let s = slices.len();
    // Epoch layout: slice 0 is epoch 0; each transition contributes k
    // epochs, the last of which is the next slice's epoch.
    let epochs = 1 + (s - 1) * k;
    let slice_epoch = |i: usize| i * k;

    let mut solver = Solver::new();
    solver.set_deadline(deadline);
    let mut mapping: Vec<Vec<FdVar>> = (0..epochs)
        .map(|_| {
            (0..nq)
                .map(|_| FdVar::new_binary(&mut solver, np))
                .collect()
        })
        .collect();
    for row in &mut mapping {
        assert_injective(&mut solver, row);
    }
    // Swap layers between consecutive epochs.
    let swap_lits: Vec<Vec<Lit>> = (0..epochs.saturating_sub(1))
        .map(|_| {
            (0..ne)
                .map(|_| Lit::positive(CnfSink::new_var(&mut solver)))
                .collect()
        })
        .collect();
    for layer in &swap_lits {
        for e1 in 0..ne {
            let (a1, b1) = graph.edge(e1);
            for e2 in (e1 + 1)..ne {
                let (a2, b2) = graph.edge(e2);
                if a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2 {
                    solver.add_clause([!layer[e1], !layer[e2]]);
                }
            }
        }
    }
    // Transformation between epochs.
    for ep in 0..epochs.saturating_sub(1) {
        for q in 0..nq {
            for p in 0..np {
                let incident = graph.edges_at(p as u16);
                let antecedent = mapping[ep][q].neq_clause(p);
                for &bit in &mapping[ep + 1][q].eq_conj(p) {
                    let mut clause = antecedent.clone();
                    clause.extend(incident.iter().map(|&e| swap_lits[ep][e]));
                    clause.push(bit);
                    solver.add_clause(clause);
                }
            }
            for e in 0..ne {
                let (pa, pb) = graph.edge(e);
                for (fr, to) in [(pa, pb), (pb, pa)] {
                    let antecedent = mapping[ep][q].neq_clause(fr as usize);
                    for &bit in &mapping[ep + 1][q].eq_conj(to as usize) {
                        let mut clause = Vec::with_capacity(antecedent.len() + 2);
                        clause.push(!swap_lits[ep][e]);
                        clause.extend(antecedent.iter().copied());
                        clause.push(bit);
                        solver.add_clause(clause);
                    }
                }
            }
        }
    }
    // Adjacency for each slice at its epoch.
    for (i, slice) in slices.iter().enumerate() {
        let ep = slice_epoch(i);
        for (qa, qb) in distinct_pairs(circuit, slice) {
            let row = &mut mapping[ep];
            assert_pair_adjacent(&mut solver, row, graph, qa, qb);
        }
    }

    match solver.solve(&[]) {
        SolveResult::Unsat => return Ok(None),
        SolveResult::Unknown => return Err(SatMapError::Timeout),
        SolveResult::Sat => {}
    }

    // Descent on total swaps (the MaxSAT objective).
    let all_swaps: Vec<Lit> = swap_lits.iter().flatten().copied().collect();
    let count = |solver: &Solver| {
        all_swaps
            .iter()
            .filter(|&&l| solver.model_value(l) == Some(true))
            .count()
    };
    let decode = |solver: &Solver, mapping: &[Vec<FdVar>]| -> JointSolution {
        let maps: Vec<Vec<u16>> = mapping
            .iter()
            .map(|row| row.iter().map(|v| v.value_in(solver) as u16).collect())
            .collect();
        let layers: Vec<Vec<Vec<usize>>> = (0..s.saturating_sub(1))
            .map(|t| {
                (0..k)
                    .map(|l| {
                        let ep = t * k + l;
                        swap_lits[ep]
                            .iter()
                            .enumerate()
                            .filter(|(_, &lit)| solver.model_value(lit) == Some(true))
                            .map(|(e, _)| e)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        JointSolution {
            mapping: maps,
            layers,
        }
    };

    let mut best_count = count(&solver);
    let mut best = decode(&solver, &mapping);
    if best_count > 0 {
        let mut card = CardinalityNetwork::new(
            &mut solver,
            &all_swaps,
            best_count,
            CardEncoding::SequentialCounter,
        );
        while best_count > 0 {
            let bound = card.at_most(&mut solver, best_count - 1);
            match solver.solve(&[bound]) {
                SolveResult::Sat => {
                    best_count = count(&solver);
                    best = decode(&solver, &mapping);
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => break, // keep best under budget
            }
        }
    }
    Ok(Some(best))
}

/// Maps and routes a circuit via joint slice-based optimization.
///
/// # Errors
///
/// [`SatMapError::Infeasible`] if the circuit cannot fit the device, and
/// [`SatMapError::Timeout`] when the budget expires.
///
/// # Examples
///
/// ```
/// use olsq2_heuristic::{satmap_route, SatMapConfig};
/// use olsq2_arch::grid;
/// use olsq2_circuit::generators::qaoa_circuit;
/// use olsq2_layout::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = qaoa_circuit(8, 1);
/// let graph = grid(3, 3);
/// let mut config = SatMapConfig::default();
/// config.swap_duration = 1;
/// let out = satmap_route(&circuit, &graph, &config)?;
/// assert_eq!(verify(&circuit, &graph, &out.result), Ok(()));
/// # Ok(())
/// # }
/// ```
pub fn satmap_route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    config: &SatMapConfig,
) -> Result<SatMapOutcome, SatMapError> {
    let nq = circuit.num_qubits();
    if nq > graph.num_qubits() {
        return Err(SatMapError::Infeasible(format!(
            "{nq} program qubits on a {}-qubit device",
            graph.num_qubits()
        )));
    }
    let deadline = config.time_budget.map(|b| Instant::now() + b);
    let sd = config.swap_duration.max(1);

    // --- Slice the circuit greedily by embeddability --------------------
    let mut slices: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for g in 0..circuit.num_gates() {
        match circuit.gate(g).operands {
            Operands::One(_) => current.push(g),
            Operands::Two(..) => {
                let mut candidate = current.clone();
                candidate.push(g);
                let pairs = distinct_pairs(circuit, &candidate);
                let has_new_pair = distinct_pairs(circuit, &current).len() != pairs.len();
                let fits = !has_new_pair || embeds(nq, &pairs, graph, deadline)?;
                if fits {
                    current = candidate;
                } else {
                    slices.push(std::mem::take(&mut current));
                    current.push(g);
                    let single = distinct_pairs(circuit, &current);
                    if !embeds(nq, &single, graph, deadline)? {
                        return Err(SatMapError::Infeasible(
                            "a single two-qubit gate does not embed".into(),
                        ));
                    }
                }
            }
        }
    }
    if !current.is_empty() {
        slices.push(current);
    }
    if slices.is_empty() {
        return Ok(SatMapOutcome {
            result: LayoutResult {
                initial_mapping: (0..nq as u16).collect(),
                schedule: vec![],
                swaps: vec![],
                depth: 0,
                swap_duration: sd,
            },
            slices: 0,
        });
    }

    // --- Joint solve with growing per-transition layer budget -----------
    let mut solution = None;
    if slices.len() == 1 {
        // One slice: routing-free; the joint model degenerates to embedding.
        solution = solve_joint(circuit, graph, &slices, 1, deadline)?;
    } else {
        for k in 1..=config.max_rounds {
            if let Some(sol) = solve_joint(circuit, graph, &slices, k, deadline)? {
                solution = Some(sol);
                break;
            }
        }
    }
    let solution = solution.ok_or_else(|| {
        SatMapError::Infeasible(format!(
            "transitions not routable within {} layers",
            config.max_rounds
        ))
    })?;

    // --- Lower to a time-resolved LayoutResult --------------------------
    let k = if slices.len() > 1 {
        solution.layers[0].len()
    } else {
        0
    };
    let _ = k;
    let mut cursor = 0usize;
    let mut qubit_ready = vec![0usize; nq];
    let mut schedule = vec![0usize; circuit.num_gates()];
    let mut swaps: Vec<SwapOp> = Vec::new();
    let mut depth = 0usize;
    for (i, slice) in slices.iter().enumerate() {
        if i > 0 {
            for layer in &solution.layers[i - 1] {
                if layer.is_empty() {
                    continue;
                }
                let finish = cursor + sd - 1;
                for &e in layer {
                    swaps.push(SwapOp {
                        edge: e,
                        finish_time: finish,
                    });
                }
                cursor = finish + 1;
            }
            for r in &mut qubit_ready {
                *r = (*r).max(cursor);
            }
        }
        for &g in slice {
            let gate = circuit.gate(g);
            let start = gate
                .operands
                .qubits()
                .map(|q| qubit_ready[q as usize])
                .max()
                .unwrap_or(cursor)
                .max(cursor);
            schedule[g] = start;
            for q in gate.operands.qubits() {
                qubit_ready[q as usize] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        cursor = qubit_ready
            .iter()
            .copied()
            .max()
            .unwrap_or(cursor)
            .max(cursor);
    }
    depth = depth.max(swaps.iter().map(|s| s.finish_time + 1).max().unwrap_or(0));

    Ok(SatMapOutcome {
        result: LayoutResult {
            initial_mapping: solution.mapping[0].clone(),
            schedule,
            swaps,
            depth,
            swap_duration: sd,
        },
        slices: slices.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_arch::{grid, line};
    use olsq2_circuit::generators::{qaoa_circuit, tof_circuit};
    use olsq2_circuit::{Gate, GateKind};
    use olsq2_layout::verify;

    #[test]
    fn maps_triangle_on_line() {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let cfg = SatMapConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let out = satmap_route(&c, &graph, &cfg).expect("maps");
        assert_eq!(verify(&c, &graph, &out.result), Ok(()));
        assert!(out.result.swap_count() >= 1);
        assert!(out.slices >= 2);
    }

    #[test]
    fn zero_swaps_when_slice_embeds() {
        let mut c = Circuit::new(4);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 2, 3));
        let graph = grid(2, 2);
        let out = satmap_route(&c, &graph, &SatMapConfig::default()).expect("maps");
        assert_eq!(out.result.swap_count(), 0);
        assert_eq!(out.slices, 1);
        assert_eq!(verify(&c, &graph, &out.result), Ok(()));
    }

    #[test]
    fn maps_qaoa_on_grid() {
        let c = qaoa_circuit(8, 5);
        let graph = grid(3, 3);
        let cfg = SatMapConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let out = satmap_route(&c, &graph, &cfg).expect("maps");
        assert_eq!(verify(&c, &graph, &out.result), Ok(()));
    }

    #[test]
    fn maps_tof_on_grid() {
        let c = tof_circuit(4);
        let graph = grid(3, 3);
        let out = satmap_route(&c, &graph, &SatMapConfig::default()).expect("maps");
        assert_eq!(verify(&c, &graph, &out.result), Ok(()));
    }

    #[test]
    fn single_qubit_only_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::one(GateKind::H, 0));
        c.push(Gate::one(GateKind::T, 1));
        let out = satmap_route(&c, &line(2), &SatMapConfig::default()).expect("maps");
        assert_eq!(out.result.swap_count(), 0);
        assert_eq!(verify(&c, &line(2), &out.result), Ok(()));
    }

    #[test]
    fn rejects_oversized() {
        let mut c = Circuit::new(4);
        c.push(Gate::two(GateKind::Cx, 0, 3));
        assert!(matches!(
            satmap_route(&c, &line(2), &SatMapConfig::default()),
            Err(SatMapError::Infeasible(_))
        ));
    }
}
