//! SABRE — the leading heuristic layout synthesizer the paper compares
//! against (Li, Ding, Xie, "Tackling the qubit mapping problem for
//! NISQ-era quantum devices", ASPLOS 2019).
//!
//! From-scratch implementation of the published algorithm: front-layer
//! routing with a decay-weighted, lookahead distance heuristic and
//! bidirectional initial-mapping passes. Emits a [`LayoutResult`] by ASAP
//! re-timing of the produced op sequence so results verify under the same
//! oracle as the exact synthesizers.

use crate::retime::{retime, RoutedOp};
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, DependencyGraph, Operands};
use olsq2_layout::LayoutResult;
use olsq2_prng::Rng;

/// Tunable SABRE parameters (defaults follow the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct SabreConfig {
    /// Lookahead (extended-set) weight `W`.
    pub extended_weight: f64,
    /// Extended-set size cap.
    pub extended_size: usize,
    /// Decay increment per applied SWAP.
    pub decay_delta: f64,
    /// Number of SWAP selections between decay resets.
    pub decay_reset_interval: usize,
    /// Forward/backward initial-mapping passes (the paper uses 3 traversals).
    pub mapping_passes: usize,
    /// RNG seed for the random initial mapping and tie-breaking.
    pub seed: u64,
    /// SWAP duration used when re-timing the output.
    pub swap_duration: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_weight: 0.5,
            extended_size: 20,
            decay_delta: 0.001,
            decay_reset_interval: 5,
            mapping_passes: 3,
            seed: 0,
            swap_duration: 3,
        }
    }
}

/// Errors from [`sabre_route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SabreError {
    /// More program qubits than physical qubits.
    TooManyQubits {
        /// Program qubits in the circuit.
        program: usize,
        /// Physical qubits on the device.
        physical: usize,
    },
    /// The device is disconnected and routing got stuck.
    Stuck,
}

impl std::fmt::Display for SabreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SabreError::TooManyQubits { program, physical } => write!(
                f,
                "circuit uses {program} program qubits but the device has {physical}"
            ),
            SabreError::Stuck => write!(f, "routing made no progress (disconnected device?)"),
        }
    }
}

impl std::error::Error for SabreError {}

/// Runs SABRE and returns a verified-shape [`LayoutResult`].
///
/// # Errors
///
/// [`SabreError::TooManyQubits`] if the circuit does not fit the device;
/// [`SabreError::Stuck`] only on disconnected devices.
///
/// # Examples
///
/// ```
/// use olsq2_heuristic::{sabre_route, SabreConfig};
/// use olsq2_arch::line;
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// use olsq2_layout::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new(3);
/// c.push(Gate::two(GateKind::Cx, 0, 1));
/// c.push(Gate::two(GateKind::Cx, 0, 2));
/// let graph = line(3);
/// let result = sabre_route(&c, &graph, &SabreConfig::default())?;
/// assert_eq!(verify(&c, &graph, &result), Ok(()));
/// # Ok(())
/// # }
/// ```
pub fn sabre_route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    config: &SabreConfig,
) -> Result<LayoutResult, SabreError> {
    let nq = circuit.num_qubits();
    let np = graph.num_qubits();
    if nq > np {
        return Err(SabreError::TooManyQubits {
            program: nq,
            physical: np,
        });
    }
    let mut rng = Rng::seed_from_u64(config.seed);

    // Random initial mapping, refined by forward/backward passes: the final
    // mapping of each traversal seeds the next traversal of the reversed
    // circuit (the paper's bidirectional pre-processing).
    let mut mapping: Vec<u16> = {
        let mut phys: Vec<u16> = (0..np as u16).collect();
        rng.shuffle(&mut phys);
        phys.truncate(nq);
        phys
    };
    if circuit.num_gates() == 0 {
        return Ok(LayoutResult {
            initial_mapping: mapping,
            schedule: vec![],
            swaps: vec![],
            depth: 0,
            swap_duration: config.swap_duration.max(1),
        });
    }

    let reversed = circuit.reversed();
    for pass in 0..config.mapping_passes.saturating_sub(1) {
        let c = if pass % 2 == 0 { circuit } else { &reversed };
        let (_, final_mapping) = route_once(c, graph, config, mapping.clone())?;
        mapping = final_mapping;
    }
    let initial_mapping = mapping.clone();
    let (ops, _) = route_once(circuit, graph, config, mapping)?;

    Ok(retime(
        circuit,
        graph,
        &initial_mapping,
        &ops,
        config.swap_duration,
    ))
}

/// Core routing pass; returns the op sequence and the final mapping.
fn route_once(
    circuit: &Circuit,
    graph: &CouplingGraph,
    config: &SabreConfig,
    mut mapping: Vec<u16>,
) -> Result<(Vec<RoutedOp>, Vec<u16>), SabreError> {
    let dag = DependencyGraph::new(circuit);
    let n = circuit.num_gates();
    let mut remaining_preds: Vec<usize> = (0..n).map(|g| dag.predecessors(g).len()).collect();
    let mut front: Vec<usize> = dag.front_layer();
    let mut executed = vec![false; n];
    let mut ops = Vec::with_capacity(n);
    let mut decay = vec![1.0f64; graph.num_qubits()];
    let mut since_reset = 0usize;
    let mut executed_count = 0usize;

    let dist =
        |a: u16, b: u16| -> f64 { graph.distance(a, b).map(f64::from).unwrap_or(f64::INFINITY) };

    while executed_count < n {
        // Execute every currently executable front gate (repeat to fixpoint).
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut next_front = Vec::with_capacity(front.len());
            for &g in &front {
                let executable = match circuit.gate(g).operands {
                    Operands::One(_) => true,
                    Operands::Two(a, b) => {
                        graph.is_adjacent(mapping[a as usize], mapping[b as usize])
                    }
                };
                if executable {
                    executed[g] = true;
                    executed_count += 1;
                    ops.push(RoutedOp::Gate(g));
                    progressed = true;
                    for &succ in dag.successors(g) {
                        remaining_preds[succ] -= 1;
                        if remaining_preds[succ] == 0 {
                            next_front.push(succ);
                        }
                    }
                } else {
                    next_front.push(g);
                }
            }
            front = next_front;
        }
        if executed_count == n {
            break;
        }

        // Blocked: pick the best SWAP among edges touching front-gate qubits.
        let front_pairs: Vec<(u16, u16)> = front
            .iter()
            .filter_map(|&g| match circuit.gate(g).operands {
                Operands::Two(a, b) => Some((mapping[a as usize], mapping[b as usize])),
                Operands::One(_) => None,
            })
            .collect();
        if front_pairs.is_empty() {
            return Err(SabreError::Stuck);
        }
        // Extended set: successors of front gates, breadth-first, capped.
        let mut extended: Vec<(u16, u16)> = Vec::new();
        let mut queue: Vec<usize> = front.clone();
        'extend: while let Some(g) = queue.pop() {
            for &succ in dag.successors(g) {
                if extended.len() >= config.extended_size {
                    break 'extend;
                }
                if let Operands::Two(a, b) = circuit.gate(succ).operands {
                    extended.push((mapping[a as usize], mapping[b as usize]));
                }
                queue.push(succ);
            }
        }

        let candidate_edges: Vec<usize> = {
            let mut edges = Vec::new();
            for &(pa, pb) in &front_pairs {
                edges.extend(graph.edges_at(pa));
                edges.extend(graph.edges_at(pb));
            }
            edges.sort_unstable();
            edges.dedup();
            edges
        };

        let score_after = |e: usize| -> f64 {
            let (ea, eb) = graph.edge(e);
            let remap = |p: u16| {
                if p == ea {
                    eb
                } else if p == eb {
                    ea
                } else {
                    p
                }
            };
            let front_cost: f64 = front_pairs
                .iter()
                .map(|&(a, b)| dist(remap(a), remap(b)))
                .sum::<f64>()
                / front_pairs.len() as f64;
            let ext_cost: f64 = if extended.is_empty() {
                0.0
            } else {
                extended
                    .iter()
                    .map(|&(a, b)| dist(remap(a), remap(b)))
                    .sum::<f64>()
                    / extended.len() as f64
            };
            let decay_factor = decay[ea as usize].max(decay[eb as usize]);
            decay_factor * (front_cost + config.extended_weight * ext_cost)
        };

        let best = candidate_edges
            .iter()
            .copied()
            .min_by(|&x, &y| {
                score_after(x)
                    .partial_cmp(&score_after(y))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .ok_or(SabreError::Stuck)?;

        // Apply the SWAP.
        let (ea, eb) = graph.edge(best);
        for m in &mut mapping {
            if *m == ea {
                *m = eb;
            } else if *m == eb {
                *m = ea;
            }
        }
        decay[ea as usize] += config.decay_delta;
        decay[eb as usize] += config.decay_delta;
        ops.push(RoutedOp::Swap(best));
        since_reset += 1;
        if since_reset >= config.decay_reset_interval {
            decay.iter_mut().for_each(|d| *d = 1.0);
            since_reset = 0;
        }
    }
    Ok((ops, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_arch::{grid, line, sycamore54};
    use olsq2_circuit::generators::{qaoa_circuit, qft_decomposed, tof_circuit};
    use olsq2_circuit::{Gate, GateKind};
    use olsq2_layout::verify;

    #[test]
    fn routes_adjacent_circuit_with_no_swaps() {
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 0));
        let graph = line(2);
        let r = sabre_route(&c, &graph, &SabreConfig::default()).expect("routes");
        assert_eq!(r.swap_count(), 0);
        assert_eq!(verify(&c, &graph, &r), Ok(()));
    }

    #[test]
    fn routes_triangle_on_line() {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let r = sabre_route(&c, &graph, &SabreConfig::default()).expect("routes");
        assert_eq!(verify(&c, &graph, &r), Ok(()));
        assert!(r.swap_count() >= 1);
    }

    #[test]
    fn routes_qaoa_on_grid() {
        let c = qaoa_circuit(12, 3);
        let graph = grid(4, 4);
        let config = SabreConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let r = sabre_route(&c, &graph, &config).expect("routes");
        assert_eq!(verify(&c, &graph, &r), Ok(()));
    }

    #[test]
    fn routes_qft_on_sycamore() {
        let c = qft_decomposed(8);
        let graph = sycamore54();
        let r = sabre_route(&c, &graph, &SabreConfig::default()).expect("routes");
        assert_eq!(verify(&c, &graph, &r), Ok(()));
    }

    #[test]
    fn routes_tof_on_grid() {
        let c = tof_circuit(4);
        let graph = grid(3, 3);
        let r = sabre_route(&c, &graph, &SabreConfig::default()).expect("routes");
        assert_eq!(verify(&c, &graph, &r), Ok(()));
    }

    #[test]
    fn rejects_oversized_circuits() {
        let mut c = Circuit::new(5);
        c.push(Gate::two(GateKind::Cx, 0, 4));
        assert!(matches!(
            sabre_route(&c, &line(3), &SabreConfig::default()),
            Err(SabreError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn empty_circuit_routes_trivially() {
        let c = Circuit::new(3);
        let r = sabre_route(&c, &line(4), &SabreConfig::default()).expect("routes");
        assert_eq!(r.depth, 0);
        assert_eq!(r.swap_count(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = qaoa_circuit(8, 7);
        let graph = grid(3, 3);
        let config = SabreConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let a = sabre_route(&c, &graph, &config).expect("routes");
        let b = sabre_route(&c, &graph, &config).expect("routes");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_different_mappings() {
        let c = qaoa_circuit(8, 7);
        let graph = grid(3, 3);
        let c1 = SabreConfig {
            swap_duration: 1,
            ..Default::default()
        };
        let mut c2 = c1.clone();
        c2.seed = 99;
        let a = sabre_route(&c, &graph, &c1).expect("routes");
        let b = sabre_route(&c, &graph, &c2).expect("routes");
        // Different seeds virtually always give different initial mappings.
        assert_ne!(a.initial_mapping, b.initial_mapping);
    }
}
