//! Shared op-sequence re-timing for the heuristic routers.

use olsq2_arch::CouplingGraph;
use olsq2_circuit::Circuit;
use olsq2_layout::{LayoutResult, SwapOp};

/// One op of the routed sequence.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RoutedOp {
    /// Original gate index.
    Gate(usize),
    /// SWAP on a device edge.
    Swap(usize),
}

/// ASAP re-timing of a routed op sequence into a [`LayoutResult`].
pub(crate) fn retime(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_mapping: &[u16],
    ops: &[RoutedOp],
    swap_duration: usize,
) -> LayoutResult {
    let sd = swap_duration.max(1);
    let mut ready = vec![0usize; graph.num_qubits()];
    let mut mapping = initial_mapping.to_vec();
    let mut schedule = vec![0usize; circuit.num_gates()];
    let mut swaps = Vec::new();
    let mut depth = 0usize;
    for &op in ops {
        match op {
            RoutedOp::Gate(g) => {
                let phys: Vec<u16> = circuit
                    .gate(g)
                    .operands
                    .qubits()
                    .map(|q| mapping[q as usize])
                    .collect();
                let start = phys.iter().map(|&p| ready[p as usize]).max().unwrap_or(0);
                schedule[g] = start;
                for &p in &phys {
                    ready[p as usize] = start + 1;
                }
                depth = depth.max(start + 1);
            }
            RoutedOp::Swap(e) => {
                let (a, b) = graph.edge(e);
                let start = ready[a as usize].max(ready[b as usize]);
                let finish = start + sd - 1;
                swaps.push(SwapOp {
                    edge: e,
                    finish_time: finish,
                });
                ready[a as usize] = finish + 1;
                ready[b as usize] = finish + 1;
                depth = depth.max(finish + 1);
                for m in &mut mapping {
                    if *m == a {
                        *m = b;
                    } else if *m == b {
                        *m = a;
                    }
                }
            }
        }
    }
    LayoutResult {
        initial_mapping: initial_mapping.to_vec(),
        schedule,
        swaps,
        depth,
        swap_duration: sd,
    }
}
