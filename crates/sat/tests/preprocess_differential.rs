//! Differential testing of the SatELite-style preprocessor against the
//! plain solver, mirroring how the CLI's `sat --preprocess` path uses
//! it: the preprocessor runs with the assumption variables frozen, the
//! simplified formula is solved under those assumptions, and the model
//! is reconstructed over the original variables. For every seeded
//! formula the verdict must match an unpreprocessed solve, and every
//! reconstructed model must satisfy the *original* clauses plus the
//! assumptions.

use olsq2_prng::Rng;
use olsq2_sat::{Lit, Preprocessor, SolveResult, Solver, Var};

#[derive(Debug, Clone)]
struct Formula {
    num_vars: usize,
    clauses: Vec<Vec<i32>>, // DIMACS-ish: ±(var+1)
}

fn lit_of(code: i32) -> Lit {
    let var = Var::from_index(code.unsigned_abs() as usize - 1);
    Lit::new(var, code < 0)
}

fn random_formula(rng: &mut Rng) -> Formula {
    let num_vars = rng.gen_range(3usize..=16);
    let num_clauses = rng.gen_range(1usize..=(4 * num_vars + 8));
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1usize..=3);
            (0..len)
                .map(|_| {
                    let v = rng.gen_range(1i32..=num_vars as i32);
                    if rng.gen_bool(0.5) {
                        -v
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    Formula { num_vars, clauses }
}

fn plain_solve(f: &Formula, assumptions: &[Lit]) -> SolveResult {
    let mut s = Solver::new();
    for _ in 0..f.num_vars {
        s.new_var();
    }
    for clause in &f.clauses {
        s.add_clause(clause.iter().map(|&c| lit_of(c)));
    }
    s.solve(assumptions)
}

/// The CLI path: preprocess with assumption variables frozen, solve the
/// simplified formula under the assumptions, reconstruct the model.
fn preprocessed_solve(f: &Formula, assumptions: &[Lit]) -> (SolveResult, Option<Vec<bool>>) {
    let mut pre = Preprocessor::new(
        f.num_vars,
        f.clauses
            .iter()
            .map(|c| c.iter().map(|&x| lit_of(x)).collect()),
    );
    for a in assumptions {
        pre.freeze(a.var());
    }
    let simplified = pre.run();
    let mut s = Solver::new();
    simplified.load_into(&mut s);
    let verdict = s.solve(assumptions);
    if verdict != SolveResult::Sat {
        return (verdict, None);
    }
    let mut model: Vec<bool> = (0..f.num_vars)
        .map(|i| {
            s.model_value(Lit::positive(Var::from_index(i)))
                .unwrap_or(false)
        })
        .collect();
    simplified.reconstruct(&mut model);
    (verdict, Some(model))
}

fn model_satisfies(f: &Formula, model: &[bool], ctx: &str) {
    for clause in &f.clauses {
        let ok = clause.iter().any(|&c| {
            let value = model[c.unsigned_abs() as usize - 1];
            if c > 0 {
                value
            } else {
                !value
            }
        });
        assert!(
            ok,
            "{ctx}: reconstructed model violates original clause {clause:?}"
        );
    }
}

fn differential_round(f: &Formula, assumptions: &[Lit], ctx: &str) {
    let expected = plain_solve(f, assumptions);
    let (got, model) = preprocessed_solve(f, assumptions);
    assert_eq!(got, expected, "{ctx}: verdicts diverge");
    if let Some(model) = model {
        model_satisfies(f, &model, ctx);
        for a in assumptions {
            let value = model[a.var().index()];
            assert_eq!(
                value,
                a.is_positive(),
                "{ctx}: reconstructed model flips frozen assumption {a:?}"
            );
        }
    }
}

#[test]
fn preprocessed_and_plain_verdicts_agree() {
    let mut rng = Rng::seed_from_u64(0x5071_0001);
    let mut sat = 0;
    let mut unsat = 0;
    for round in 0..200 {
        let f = random_formula(&mut rng);
        let ctx = format!("plain round {round}");
        match plain_solve(&f, &[]) {
            SolveResult::Sat => sat += 1,
            SolveResult::Unsat => unsat += 1,
            SolveResult::Unknown => unreachable!(),
        }
        differential_round(&f, &[], &ctx);
    }
    assert!(
        sat >= 20 && unsat >= 20,
        "corpus unbalanced: {sat} SAT / {unsat} UNSAT"
    );
}

#[test]
fn preprocessed_solving_respects_frozen_assumptions() {
    let mut rng = Rng::seed_from_u64(0x5071_0002);
    for round in 0..150 {
        let f = random_formula(&mut rng);
        // One or two assumptions over distinct variables; freezing must
        // keep them meaningful through variable elimination.
        let n = rng.gen_range(1usize..=2.min(f.num_vars));
        let mut vars: Vec<usize> = Vec::new();
        while vars.len() < n {
            let v = rng.gen_range(0usize..f.num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let assumptions: Vec<Lit> = vars
            .into_iter()
            .map(|v| Lit::new(Var::from_index(v), rng.gen_bool(0.5)))
            .collect();
        differential_round(&f, &assumptions, &format!("assumed round {round}"));
    }
}
