//! Differential/fuzz testing of clause sharing and diversification.
//!
//! The portfolio's clause-sharing path is the one feature that can
//! silently corrupt "proven optimal" claims if it is wrong, so it gets
//! its own fuzz layer: seeded random CNFs plus crafted pigeonhole and
//! parity families are solved by a *pair of diversified, sharing*
//! solvers and by a plain solver, and every answer is checked against a
//! ≤20-variable brute-force reference. With proof logging on, a sharing
//! run must either RUP-check end to end or fail with the explicit
//! `ImportedNotVerified` error — never silently.

use olsq2_prng::Rng;
use olsq2_sat::{
    CheckProofError, ClauseExchange, ExchangeFilter, Lit, SolveResult, Solver, SolverFeatures, Var,
};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
struct Formula {
    num_vars: usize,
    clauses: Vec<Vec<i32>>, // DIMACS-ish: ±(var+1)
}

fn lit_of(code: i32) -> Lit {
    let var = Var::from_index(code.unsigned_abs() as usize - 1);
    Lit::new(var, code < 0)
}

fn clause_satisfied(clause: &[i32], assignment: u32) -> bool {
    clause.iter().any(|&c| {
        let bit = (assignment >> (c.unsigned_abs() - 1)) & 1 == 1;
        if c > 0 {
            bit
        } else {
            !bit
        }
    })
}

/// Exhaustive reference checker, capped at 20 variables.
fn brute_force(f: &Formula) -> Option<u32> {
    assert!(
        f.num_vars <= 20,
        "brute-force reference only handles ≤ 20 variables"
    );
    'outer: for assignment in 0..(1u32 << f.num_vars) {
        for clause in &f.clauses {
            if !clause_satisfied(clause, assignment) {
                continue 'outer;
            }
        }
        return Some(assignment);
    }
    None
}

fn build_solver(f: &Formula) -> Solver {
    let mut s = Solver::new();
    for _ in 0..f.num_vars {
        s.new_var();
    }
    for clause in &f.clauses {
        s.add_clause(clause.iter().map(|&c| lit_of(c)));
    }
    s
}

/// Two mailboxes: endpoint `me` exports into the *other* solver's queue
/// and imports from its own, with every export recorded for inspection.
#[derive(Debug, Default)]
struct PairHub {
    queues: [Mutex<Vec<Vec<Lit>>>; 2],
    exports: Mutex<Vec<(usize, Vec<Lit>, u32)>>,
}

#[derive(Debug)]
struct PairEndpoint {
    hub: Arc<PairHub>,
    me: usize,
}

impl ClauseExchange for PairEndpoint {
    fn export(&self, lits: &[Lit], lbd: u32) {
        self.hub
            .exports
            .lock()
            .unwrap()
            .push((self.me, lits.to_vec(), lbd));
        self.hub.queues[1 - self.me]
            .lock()
            .unwrap()
            .push(lits.to_vec());
    }

    fn import_into(&self, out: &mut Vec<Vec<Lit>>) {
        out.append(&mut self.hub.queues[self.me].lock().unwrap());
    }
}

/// A pair of differently-knobbed solvers wired through a [`PairHub`].
fn diversified_pair(f: &Formula, seed: u64, proof: bool) -> (Solver, Solver, Arc<PairHub>) {
    let hub = Arc::new(PairHub::default());
    let mut pair = Vec::new();
    for me in 0..2 {
        let mut s = Solver::new();
        if proof {
            s.enable_proof();
        }
        for _ in 0..f.num_vars {
            s.new_var();
        }
        for clause in &f.clauses {
            s.add_clause(clause.iter().map(|&c| lit_of(c)));
        }
        s.set_exchange(Some(Arc::new(PairEndpoint {
            hub: hub.clone(),
            me,
        })));
        // Diversification: different branching randomization, polarity,
        // decay, and restart cadence per member. Low restart bases make
        // restart-boundary imports actually happen on small instances.
        s.set_decision_seed(Some(seed.wrapping_add(me as u64 * 0x9E37) | 1));
        s.set_default_phase(me == 1);
        s.set_var_decay(if me == 0 { 0.93 } else { 0.99 });
        s.set_restart_base(if me == 0 { 50 } else { 150 });
        pair.push(s);
    }
    let b = pair.pop().unwrap();
    let a = pair.pop().unwrap();
    (a, b, hub)
}

fn check_model(s: &Solver, f: &Formula, ctx: &str) {
    for clause in &f.clauses {
        let ok = clause
            .iter()
            .any(|&c| s.model_value(lit_of(c)) == Some(true));
        assert!(ok, "{ctx}: model violates clause {clause:?}");
    }
}

/// Plain solver, both sharing solvers, and brute force must agree; SAT
/// models must satisfy the formula.
fn differential_round(f: &Formula, seed: u64, ctx: &str) {
    let expected_sat = brute_force(f).is_some();
    let mut plain = build_solver(f);
    let plain_result = plain.solve(&[]);
    assert_eq!(plain_result.is_sat(), expected_sat, "{ctx}: plain solver");
    // A solves first (exporting as it learns), then B — importing A's
    // clauses on entry — then A again to exercise the reverse direction.
    let (mut a, mut b, _hub) = diversified_pair(f, seed, false);
    let ra1 = a.solve(&[]);
    let rb = b.solve(&[]);
    let ra2 = a.solve(&[]);
    for (result, who) in [(ra1, "A#1"), (rb, "B"), (ra2, "A#2")] {
        assert_eq!(
            result.is_sat(),
            expected_sat,
            "{ctx}: sharing solver {who} disagrees with brute force"
        );
        assert_eq!(result == SolveResult::Unsat, !expected_sat, "{ctx}: {who}");
    }
    if expected_sat {
        check_model(&a, f, ctx);
        check_model(&b, f, ctx);
    }
}

fn random_formula(rng: &mut Rng) -> Formula {
    let num_vars = rng.gen_range(2usize..=14);
    // Lean dense: ~4.3 clauses/var sits near the 3-SAT phase transition,
    // so the corpus mixes SAT and UNSAT and forces real conflict work.
    let num_clauses = rng.gen_range(1usize..=(4 * num_vars + 8));
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1usize..=3);
            (0..len)
                .map(|_| {
                    let v = rng.gen_range(1i32..=num_vars as i32);
                    if rng.gen_bool(0.5) {
                        -v
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    Formula { num_vars, clauses }
}

/// PHP(pigeons, holes): each pigeon in a hole, no hole shared.
/// UNSAT whenever `pigeons > holes`.
fn pigeonhole(pigeons: usize, holes: usize) -> Formula {
    let var = |p: usize, h: usize| (p * holes + h + 1) as i32;
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| var(p, h)).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(vec![-var(p1, h), -var(p2, h)]);
            }
        }
    }
    Formula {
        num_vars: pigeons * holes,
        clauses,
    }
}

/// A random XOR system: each equation `a ⊕ b ⊕ c = rhs` over distinct
/// variables, expanded to its four CNF clauses. Parity constraints are
/// the classic hard case for resolution-based solvers.
fn parity_system(rng: &mut Rng, num_vars: usize, equations: usize) -> Formula {
    let mut clauses = Vec::new();
    for _ in 0..equations {
        let mut vars = Vec::new();
        while vars.len() < 3 {
            let v = rng.gen_range(1i32..=num_vars as i32);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let rhs = rng.gen_bool(0.5);
        let (a, b, c) = (vars[0], vars[1], vars[2]);
        // Clauses ruling out assignments of wrong parity.
        for mask in 0..8u32 {
            let parity = (mask.count_ones() % 2 == 1) == rhs;
            if !parity {
                let sign = |bit: u32, v: i32| if (mask >> bit) & 1 == 1 { -v } else { v };
                clauses.push(vec![sign(0, a), sign(1, b), sign(2, c)]);
            }
        }
    }
    Formula { num_vars, clauses }
}

#[test]
fn sharing_pair_agrees_on_seeded_random_cnfs() {
    let mut rng = Rng::seed_from_u64(0xF022_0004);
    for round in 0..150 {
        let f = random_formula(&mut rng);
        differential_round(&f, 0xD1CE_0000 + round, &format!("random round {round}"));
    }
}

#[test]
fn sharing_pair_agrees_on_crafted_families() {
    // Pigeonhole: UNSAT when over-full, SAT when pigeons fit.
    for (pigeons, holes) in [(3, 2), (4, 3), (3, 3), (4, 4), (5, 3)] {
        let f = pigeonhole(pigeons, holes);
        differential_round(
            &f,
            (pigeons * 31 + holes) as u64,
            &format!("pigeonhole({pigeons},{holes})"),
        );
    }
    // Parity systems over ≤ 14 vars; over-constrained ones go UNSAT.
    let mut rng = Rng::seed_from_u64(0xF022_0005);
    for round in 0..30 {
        let nv = rng.gen_range(4usize..=14);
        let eqs = rng.gen_range(1usize..=2 * nv);
        let f = parity_system(&mut rng, nv, eqs);
        differential_round(&f, 0x9A21 + round as u64, &format!("parity round {round}"));
    }
}

#[test]
fn sharing_actually_moves_clauses() {
    // On a PHP instance, A's learnts pass the filter and B must both
    // receive and count them — the path is exercised, not just wired.
    let f = pigeonhole(5, 4);
    let (mut a, mut b, hub) = diversified_pair(&f, 7, false);
    assert_eq!(a.solve(&[]), SolveResult::Unsat);
    assert!(
        !hub.exports.lock().unwrap().is_empty(),
        "A exported nothing on a pigeonhole instance"
    );
    assert!(a.stats().exported > 0);
    assert_eq!(b.solve(&[]), SolveResult::Unsat);
    assert!(
        b.stats().imported > 0,
        "B imported nothing despite a full mailbox"
    );
}

#[test]
fn export_filter_is_respected() {
    let f = pigeonhole(5, 4);
    let (mut a, _b, hub) = diversified_pair(&f, 21, false);
    let filter = ExchangeFilter {
        max_lbd: 2,
        max_len: 3,
    };
    a.set_exchange_filter(filter);
    let _ = a.solve(&[]);
    let exports = hub.exports.lock().unwrap();
    for (who, lits, lbd) in exports.iter() {
        if *who != 0 {
            continue;
        }
        assert!(
            filter.admits(lits.len(), *lbd),
            "exported clause violates the filter: len {} lbd {}",
            lits.len(),
            *lbd
        );
    }
}

/// An import source preloaded with hostile clauses: duplicates, a clause
/// over a variable the solver never allocated, and a valid lemma.
#[derive(Debug)]
struct InjectSource {
    payload: Mutex<Vec<Vec<Lit>>>,
}

impl ClauseExchange for InjectSource {
    fn export(&self, _lits: &[Lit], _lbd: u32) {}
    fn import_into(&self, out: &mut Vec<Vec<Lit>>) {
        out.append(&mut self.payload.lock().unwrap());
    }
}

#[test]
fn hostile_imports_are_filtered_not_fatal() {
    let f = Formula {
        num_vars: 4,
        clauses: vec![vec![1, 2], vec![-1, 2], vec![3, 4]],
    };
    let valid = vec![lit_of(2)]; // implied: (1∨2) ∧ (¬1∨2) ⊨ 2
    let unknown_var = vec![Lit::positive(Var::from_index(100))];
    let source = InjectSource {
        payload: Mutex::new(vec![
            valid.clone(),
            valid.clone(), // duplicate: dropped
            unknown_var,   // out of space: dropped
        ]),
    };
    let mut s = build_solver(&f);
    s.set_exchange(Some(Arc::new(source)));
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    let st = s.stats();
    assert_eq!(st.imported, 1, "only the first copy of the valid unit");
    assert_eq!(st.import_dropped, 2, "duplicate + unknown-variable clause");
    assert_eq!(s.model_value(lit_of(2)), Some(true));
}

/// Inprocessing cadence cranked far past production settings so that
/// vivification, deferred strengthening, and rephasing all fire many
/// times even on tiny formulas.
fn aggressive_features() -> SolverFeatures {
    SolverFeatures {
        vivify_interval: 4,
        rephase_interval: 6,
        ..SolverFeatures::default()
    }
}

fn inprocessing_solver(f: &Formula, proof: bool) -> Solver {
    let mut s = Solver::new();
    s.set_features(aggressive_features());
    if proof {
        s.enable_proof();
    }
    // Restart after every conflict: inprocessing runs at restart
    // boundaries, so this maximizes how often the database is rewritten
    // mid-solve.
    s.set_restart_base(1);
    for _ in 0..f.num_vars {
        s.new_var();
    }
    for clause in &f.clauses {
        s.add_clause(clause.iter().map(|&c| lit_of(c)));
    }
    s
}

#[test]
fn inprocessing_fuzz_agrees_with_brute_force() {
    // Random corpus near the phase transition, solved with every
    // inprocessing pass firing at maximum frequency under proof logging.
    // Verdicts must match the exhaustive reference, SAT models must
    // satisfy the formula, and — with no sharing in play — UNSAT proofs
    // must fully RUP-check even though vivification and strengthening
    // have been rewriting the clause database the proof talks about.
    let mut rng = Rng::seed_from_u64(0xF022_0007);
    let mut unsat_proofs = 0;
    for round in 0..120 {
        let f = random_formula(&mut rng);
        let expected_sat = brute_force(&f).is_some();
        let ctx = format!("inprocessing round {round}");
        let mut s = inprocessing_solver(&f, true);
        let first = s.solve(&[]);
        assert_eq!(first.is_sat(), expected_sat, "{ctx}");
        if expected_sat {
            check_model(&s, &f, &ctx);
            // Incremental re-solve under an assumption flipping the
            // model: inprocessing must not have baked the old model in.
            let pivot = lit_of(
                f.clauses
                    .first()
                    .and_then(|c| c.first())
                    .copied()
                    .unwrap_or(1),
            );
            let assumption = if s.model_value(pivot) == Some(true) {
                !pivot
            } else {
                pivot
            };
            let second = s.solve(&[assumption]);
            if second == SolveResult::Sat {
                check_model(&s, &f, &format!("{ctx} (assumed)"));
                assert_eq!(s.model_value(assumption), Some(true), "{ctx}");
            }
        } else {
            let proof = s.take_proof().expect("proof logging was enabled");
            assert!(proof.claims_unsat(), "{ctx}");
            assert_eq!(proof.check(), Ok(()), "{ctx}: inprocessed proof");
            unsat_proofs += 1;
        }
    }
    assert!(unsat_proofs >= 10, "corpus too easy: {unsat_proofs} UNSAT");
}

#[test]
fn inprocessing_agrees_on_crafted_families() {
    for (pigeons, holes) in [(3, 2), (4, 3), (3, 3), (4, 4), (5, 4)] {
        let f = pigeonhole(pigeons, holes);
        let expected_sat = pigeons <= holes;
        let ctx = format!("inprocessed pigeonhole({pigeons},{holes})");
        let mut s = inprocessing_solver(&f, true);
        assert_eq!(s.solve(&[]).is_sat(), expected_sat, "{ctx}");
        if expected_sat {
            check_model(&s, &f, &ctx);
        } else {
            let proof = s.take_proof().expect("proof");
            assert_eq!(proof.check(), Ok(()), "{ctx}");
        }
    }
    let mut rng = Rng::seed_from_u64(0xF022_0008);
    for round in 0..30 {
        let nv = rng.gen_range(4usize..=14);
        let eqs = rng.gen_range(1usize..=2 * nv);
        let f = parity_system(&mut rng, nv, eqs);
        let expected_sat = brute_force(&f).is_some();
        let ctx = format!("inprocessed parity round {round}");
        let mut s = inprocessing_solver(&f, false);
        assert_eq!(s.solve(&[]).is_sat(), expected_sat, "{ctx}");
        if expected_sat {
            check_model(&s, &f, &ctx);
        }
    }
}

#[test]
fn inprocessing_survives_hostile_imports() {
    // Same hostile mailbox as the plain import test — duplicates, a
    // clause over an unallocated variable, plus genuinely implied
    // clauses — but now the importing solver is also vivifying and
    // strengthening between restarts, rewriting the database the
    // imports sit next to. The verdict still has to match brute force
    // every time.
    let mut rng = Rng::seed_from_u64(0xF022_0009);
    for round in 0..40 {
        let f = random_formula(&mut rng);
        let expected_sat = brute_force(&f).is_some();
        let ctx = format!("hostile inprocessing round {round}");
        // Implied payload: any full clause of the formula is trivially
        // entailed, as is its duplicate.
        let implied: Vec<Lit> = f
            .clauses
            .first()
            .map(|c| c.iter().map(|&code| lit_of(code)).collect())
            .unwrap_or_else(|| vec![lit_of(1)]);
        let source = InjectSource {
            payload: Mutex::new(vec![
                implied.clone(),
                implied.clone(),
                vec![Lit::positive(Var::from_index(200))],
            ]),
        };
        let mut s = inprocessing_solver(&f, false);
        s.set_exchange(Some(Arc::new(source)));
        assert_eq!(s.solve(&[]).is_sat(), expected_sat, "{ctx}");
        if expected_sat {
            check_model(&s, &f, &ctx);
        }
    }
}

/// Search-policy stress: fully chronological backtracking (every conflict
/// undoes one level), target-phase branching, glucose restarts, and a
/// rephaser firing every few conflicts — the harshest composition of the
/// modernized search features.
fn chrono_rephase_features() -> SolverFeatures {
    SolverFeatures {
        chrono_backtrack: true,
        chrono_threshold: 0,
        target_phase: true,
        glucose_restarts: true,
        restart_postpone: true,
        rephase_interval: 6,
        vivify_interval: 4,
        ..SolverFeatures::default()
    }
}

fn chrono_solver(f: &Formula, proof: bool) -> Solver {
    let mut s = Solver::new();
    s.set_features(chrono_rephase_features());
    if proof {
        s.enable_proof();
    }
    s.set_restart_base(1);
    for _ in 0..f.num_vars {
        s.new_var();
    }
    for clause in &f.clauses {
        s.add_clause(clause.iter().map(|&c| lit_of(c)));
    }
    // Hostile target polarities: alternating, unrelated to any model, so
    // the target-following brancher and the target rephaser are both
    // steered wrong on purpose and must still converge.
    for v in 0..f.num_vars {
        s.set_target_phase(Var::from_index(v), v % 2 == 0);
    }
    s
}

#[test]
fn chrono_rephase_fuzz_agrees_with_brute_force() {
    // Random corpus near the phase transition under fully chronological
    // backtracking with adversarial target phases and a high-frequency
    // rephaser. Verdicts must match the exhaustive reference, SAT models
    // must satisfy the formula, and UNSAT proofs must RUP-check even
    // though the trail holds out-of-order assignments all solve long.
    let mut rng = Rng::seed_from_u64(0xF022_000A);
    let mut unsat_proofs = 0;
    for round in 0..120 {
        let f = random_formula(&mut rng);
        let expected_sat = brute_force(&f).is_some();
        let ctx = format!("chrono round {round}");
        let mut s = chrono_solver(&f, true);
        let first = s.solve(&[]);
        assert_eq!(first.is_sat(), expected_sat, "{ctx}");
        if expected_sat {
            check_model(&s, &f, &ctx);
            // Re-solve under an assumption flipping the model: the trail
            // repair from the first solve must leave the solver reusable,
            // and targets adopted mid-run must not pin the old model.
            let pivot = lit_of(
                f.clauses
                    .first()
                    .and_then(|c| c.first())
                    .copied()
                    .unwrap_or(1),
            );
            let assumption = if s.model_value(pivot) == Some(true) {
                !pivot
            } else {
                pivot
            };
            let second = s.solve(&[assumption]);
            if second == SolveResult::Sat {
                check_model(&s, &f, &format!("{ctx} (assumed)"));
                assert_eq!(s.model_value(assumption), Some(true), "{ctx}");
            }
        } else {
            let proof = s.take_proof().expect("proof logging was enabled");
            assert!(proof.claims_unsat(), "{ctx}");
            assert_eq!(proof.check(), Ok(()), "{ctx}: chrono proof");
            unsat_proofs += 1;
        }
    }
    assert!(unsat_proofs >= 10, "corpus too easy: {unsat_proofs} UNSAT");
}

#[test]
fn chrono_rephase_agrees_on_crafted_families() {
    for (pigeons, holes) in [(3, 2), (4, 3), (3, 3), (4, 4), (5, 4)] {
        let f = pigeonhole(pigeons, holes);
        let expected_sat = pigeons <= holes;
        let ctx = format!("chrono pigeonhole({pigeons},{holes})");
        let mut s = chrono_solver(&f, true);
        assert_eq!(s.solve(&[]).is_sat(), expected_sat, "{ctx}");
        if expected_sat {
            check_model(&s, &f, &ctx);
        } else {
            assert!(
                s.stats().chrono_backtracks > 0,
                "{ctx}: threshold 0 never took the chronological path"
            );
            let proof = s.take_proof().expect("proof");
            assert_eq!(proof.check(), Ok(()), "{ctx}");
        }
    }
    let mut rng = Rng::seed_from_u64(0xF022_000B);
    for round in 0..30 {
        let nv = rng.gen_range(4usize..=14);
        let eqs = rng.gen_range(1usize..=2 * nv);
        let f = parity_system(&mut rng, nv, eqs);
        let expected_sat = brute_force(&f).is_some();
        let ctx = format!("chrono parity round {round}");
        let mut s = chrono_solver(&f, false);
        assert_eq!(s.solve(&[]).is_sat(), expected_sat, "{ctx}");
        if expected_sat {
            check_model(&s, &f, &ctx);
        }
    }
}

#[test]
fn chrono_survives_hostile_imports() {
    // The hostile mailbox (duplicates, unallocated variable, implied
    // clauses) injected into a fully chronological solver: imports land
    // at restart boundaries where the repaired trail may still hold
    // out-of-order literals, and the verdict must match brute force.
    let mut rng = Rng::seed_from_u64(0xF022_000C);
    for round in 0..40 {
        let f = random_formula(&mut rng);
        let expected_sat = brute_force(&f).is_some();
        let ctx = format!("hostile chrono round {round}");
        let implied: Vec<Lit> = f
            .clauses
            .first()
            .map(|c| c.iter().map(|&code| lit_of(code)).collect())
            .unwrap_or_else(|| vec![lit_of(1)]);
        let source = InjectSource {
            payload: Mutex::new(vec![
                implied.clone(),
                implied.clone(),
                vec![Lit::positive(Var::from_index(200))],
            ]),
        };
        let mut s = chrono_solver(&f, false);
        s.set_exchange(Some(Arc::new(source)));
        assert_eq!(s.solve(&[]).is_sat(), expected_sat, "{ctx}");
        if expected_sat {
            check_model(&s, &f, &ctx);
        }
    }
}

#[test]
fn sharing_pair_under_chrono_rephase_agrees() {
    // The diversified sharing pair with both members running the full
    // modern search stack: shared clauses arrive into repaired trails,
    // and all answers must still match the plain-solver reference.
    let mut rng = Rng::seed_from_u64(0xF022_000D);
    for round in 0..60 {
        let f = random_formula(&mut rng);
        let expected_sat = brute_force(&f).is_some();
        let ctx = format!("chrono sharing round {round}");
        let (mut a, mut b, _hub) = diversified_pair(&f, 0xC4B7 + round, false);
        a.set_features(chrono_rephase_features());
        b.set_features(chrono_rephase_features());
        let ra1 = a.solve(&[]);
        let rb = b.solve(&[]);
        let ra2 = a.solve(&[]);
        for (result, who) in [(ra1, "A#1"), (rb, "B"), (ra2, "A#2")] {
            assert_eq!(result.is_sat(), expected_sat, "{ctx}: {who}");
        }
        if expected_sat {
            check_model(&a, &f, &ctx);
            check_model(&b, &f, &ctx);
        }
    }
}

#[test]
fn proofs_with_sharing_check_or_fail_explicitly() {
    // UNSAT corpus: random over-constrained formulas + pigeonhole. For
    // each, solver B imports A's learnts under proof logging; B's proof
    // must either RUP-check or report ImportedNotVerified — any other
    // failure (bogus lemma, missing empty clause) is a real bug.
    let mut rng = Rng::seed_from_u64(0xF022_0006);
    let mut unsat_seen = 0;
    let mut checked_with_imports = 0;
    // Random corpus filtered to UNSAT by the reference checker, plus
    // crafted pigeonhole instances (UNSAT by construction, so they need
    // no brute-force pass and may exceed its 20-variable cap).
    let random = (0..80).map(|_| (random_formula(&mut rng), false));
    let crafted = [pigeonhole(4, 3), pigeonhole(5, 4), pigeonhole(6, 4)].map(|f| (f, true));
    let corpus = random.chain(crafted).collect::<Vec<_>>();
    for (round, (f, known_unsat)) in corpus.iter().enumerate() {
        let round = round as u64;
        if !known_unsat && brute_force(f).is_some() {
            continue;
        }
        unsat_seen += 1;
        let (mut a, mut b, _hub) = diversified_pair(f, 0xBEEF + round, true);
        assert_eq!(a.solve(&[]), SolveResult::Unsat, "round {round}: A");
        assert_eq!(b.solve(&[]), SolveResult::Unsat, "round {round}: B");
        let proof = b.take_proof().expect("proof logging was enabled");
        assert!(proof.claims_unsat(), "round {round}");
        if b.stats().imported > 0 {
            checked_with_imports += 1;
        }
        match proof.check() {
            Ok(()) => {}
            Err(CheckProofError::ImportedNotVerified { .. }) => {}
            Err(other) => panic!("round {round}: sharing proof failed with {other}"),
        }
    }
    assert!(unsat_seen >= 10, "corpus too easy: {unsat_seen} UNSAT");
    assert!(
        checked_with_imports > 0,
        "no proof-logged run ever imported a clause"
    );

    // Control: with sharing off, the same solver's proofs must fully
    // RUP-check — sharing is the only permitted source of slack.
    let f = pigeonhole(4, 3);
    let mut s = Solver::new();
    s.enable_proof();
    for _ in 0..f.num_vars {
        s.new_var();
    }
    for clause in &f.clauses {
        s.add_clause(clause.iter().map(|&c| lit_of(c)));
    }
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    let proof = s.take_proof().expect("proof");
    assert_eq!(proof.check(), Ok(()));
}
