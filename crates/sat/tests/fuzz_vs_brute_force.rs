//! Differential testing of the CDCL solver against exhaustive enumeration.
//!
//! Random 3-CNF-ish formulas over ≤ 12 variables are solved both by the
//! solver and by brute force; SAT/UNSAT answers must agree, and models
//! returned by the solver must actually satisfy the formula. The same is
//! checked under random assumption sets, and final conflicts must be real
//! (the formula plus the reported assumption subset must be UNSAT by
//! enumeration). Instances come from a seeded in-repo PRNG, so every run
//! fuzzes the same reproducible corpus.

use olsq2_prng::Rng;
use olsq2_sat::{Lit, SolveResult, Solver, Var};

#[derive(Debug, Clone)]
struct Formula {
    num_vars: usize,
    clauses: Vec<Vec<i32>>, // DIMACS-ish: ±(var+1)
}

fn lit_of(code: i32) -> Lit {
    let var = Var::from_index(code.unsigned_abs() as usize - 1);
    Lit::new(var, code < 0)
}

fn clause_satisfied(clause: &[i32], assignment: u32) -> bool {
    clause.iter().any(|&c| {
        let bit = (assignment >> (c.unsigned_abs() - 1)) & 1 == 1;
        if c > 0 {
            bit
        } else {
            !bit
        }
    })
}

/// Exhaustive SAT check; returns a witness assignment if one exists.
fn brute_force(f: &Formula, extra_units: &[i32]) -> Option<u32> {
    'outer: for assignment in 0..(1u32 << f.num_vars) {
        for clause in &f.clauses {
            if !clause_satisfied(clause, assignment) {
                continue 'outer;
            }
        }
        for &u in extra_units {
            if !clause_satisfied(&[u], assignment) {
                continue 'outer;
            }
        }
        return Some(assignment);
    }
    None
}

fn build_solver(f: &Formula) -> Solver {
    let mut s = Solver::new();
    for _ in 0..f.num_vars {
        s.new_var();
    }
    for clause in &f.clauses {
        s.add_clause(clause.iter().map(|&c| lit_of(c)));
    }
    s
}

fn random_formula(rng: &mut Rng) -> Formula {
    let num_vars = rng.gen_range(2usize..=12);
    let num_clauses = rng.gen_range(0usize..40);
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1usize..=3);
            (0..len)
                .map(|_| {
                    let v = rng.gen_range(1i32..=num_vars as i32);
                    if rng.gen_bool(0.5) {
                        -v
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    Formula { num_vars, clauses }
}

#[test]
fn agrees_with_brute_force() {
    let mut rng = Rng::seed_from_u64(0xF022_0001);
    for round in 0..300 {
        let f = random_formula(&mut rng);
        let expected = brute_force(&f, &[]);
        let mut s = build_solver(&f);
        let result = s.solve(&[]);
        match expected {
            Some(_) => {
                assert_eq!(result, SolveResult::Sat, "round {round}");
                // The model must satisfy every clause.
                for clause in &f.clauses {
                    let ok = clause
                        .iter()
                        .any(|&c| s.model_value(lit_of(c)) == Some(true));
                    assert!(ok, "round {round}: model violates clause {clause:?}");
                }
            }
            None => assert_eq!(result, SolveResult::Unsat, "round {round}"),
        }
    }
}

#[test]
fn agrees_under_assumptions() {
    let mut rng = Rng::seed_from_u64(0xF022_0002);
    for round in 0..300 {
        let f = random_formula(&mut rng);
        let num_assumps = rng.gen_range(0usize..6);
        let assumps: Vec<i32> = (0..num_assumps)
            .map(|_| {
                let v = rng.gen_range(1i32..=12);
                if rng.gen_bool(0.5) {
                    -v
                } else {
                    v
                }
            })
            .filter(|c| c.unsigned_abs() as usize <= f.num_vars)
            .collect();
        let expected = brute_force(&f, &assumps);
        let mut s = build_solver(&f);
        let assumption_lits: Vec<Lit> = assumps.iter().map(|&c| lit_of(c)).collect();
        let result = s.solve(&assumption_lits);
        match expected {
            Some(_) => {
                assert_eq!(result, SolveResult::Sat, "round {round}");
                for &a in &assumption_lits {
                    assert_eq!(
                        s.model_value(a),
                        Some(true),
                        "round {round}: assumption {a:?} not honored"
                    );
                }
                for clause in &f.clauses {
                    let ok = clause
                        .iter()
                        .any(|&c| s.model_value(lit_of(c)) == Some(true));
                    assert!(ok, "round {round}: model violates clause {clause:?}");
                }
            }
            None => {
                assert_eq!(result, SolveResult::Unsat, "round {round}");
                // If the base formula is satisfiable, the final conflict
                // must name a genuinely contradictory assumption subset.
                if brute_force(&f, &[]).is_some() {
                    let core: Vec<i32> = s
                        .final_conflict()
                        .iter()
                        .map(|l| {
                            let v = l.var().index() as i32 + 1;
                            if l.is_negative() {
                                -v
                            } else {
                                v
                            }
                        })
                        .collect();
                    assert!(!core.is_empty(), "round {round}");
                    // Each core literal must be one of the assumptions.
                    for c in &core {
                        assert!(
                            assumps.contains(c),
                            "round {round}: core lit {c} not among assumptions"
                        );
                    }
                    assert!(
                        brute_force(&f, &core).is_none(),
                        "round {round}: reported core is not contradictory"
                    );
                }
            }
        }
    }
}

#[test]
fn incremental_solving_stays_consistent() {
    // Add clause batches one at a time, solving in between; every answer
    // must match brute force on the prefix.
    let mut rng = Rng::seed_from_u64(0xF022_0003);
    for round in 0..150 {
        let f = random_formula(&mut rng);
        let mut s = build_solver(&f);
        let mut clauses = f.clauses.clone();
        let mut result = s.solve(&[]);
        assert_eq!(
            result.is_sat(),
            brute_force(
                &Formula {
                    num_vars: f.num_vars,
                    clauses: clauses.clone()
                },
                &[]
            )
            .is_some(),
            "round {round}"
        );
        let batches = rng.gen_range(1usize..6);
        for _ in 0..batches {
            let len = rng.gen_range(1usize..=3);
            let batch: Vec<i32> = (0..len)
                .map(|_| {
                    let v = rng.gen_range(1i32..=12);
                    if rng.gen_bool(0.5) {
                        -v
                    } else {
                        v
                    }
                })
                .filter(|c| c.unsigned_abs() as usize <= f.num_vars)
                .collect();
            if batch.is_empty() {
                continue;
            }
            s.add_clause(batch.iter().map(|&c| lit_of(c)));
            clauses.push(batch);
            result = s.solve(&[]);
            let expected = brute_force(
                &Formula {
                    num_vars: f.num_vars,
                    clauses: clauses.clone(),
                },
                &[],
            );
            assert_eq!(result.is_sat(), expected.is_some(), "round {round}");
            assert_eq!(result.is_unsat(), expected.is_none(), "round {round}");
        }
    }
}
