//! Differential testing of the CDCL solver against exhaustive enumeration.
//!
//! Random 3-CNF-ish formulas over ≤ 12 variables are solved both by the
//! solver and by brute force; SAT/UNSAT answers must agree, and models
//! returned by the solver must actually satisfy the formula. The same is
//! checked under random assumption sets, and final conflicts must be real
//! (the formula plus the reported assumption subset must be UNSAT by
//! enumeration).

use olsq2_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Formula {
    num_vars: usize,
    clauses: Vec<Vec<i32>>, // DIMACS-ish: ±(var+1)
}

fn lit_of(code: i32) -> Lit {
    let var = Var::from_index(code.unsigned_abs() as usize - 1);
    Lit::new(var, code < 0)
}

fn clause_satisfied(clause: &[i32], assignment: u32) -> bool {
    clause.iter().any(|&c| {
        let bit = (assignment >> (c.unsigned_abs() - 1)) & 1 == 1;
        if c > 0 {
            bit
        } else {
            !bit
        }
    })
}

/// Exhaustive SAT check; returns a witness assignment if one exists.
fn brute_force(f: &Formula, extra_units: &[i32]) -> Option<u32> {
    'outer: for assignment in 0..(1u32 << f.num_vars) {
        for clause in &f.clauses {
            if !clause_satisfied(clause, assignment) {
                continue 'outer;
            }
        }
        for &u in extra_units {
            if !clause_satisfied(&[u], assignment) {
                continue 'outer;
            }
        }
        return Some(assignment);
    }
    None
}

fn build_solver(f: &Formula) -> Solver {
    let mut s = Solver::new();
    for _ in 0..f.num_vars {
        s.new_var();
    }
    for clause in &f.clauses {
        s.add_clause(clause.iter().map(|&c| lit_of(c)));
    }
    s
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    (2usize..=12).prop_flat_map(|num_vars| {
        let clause = proptest::collection::vec(
            (1..=num_vars as i32, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v }),
            1..=3,
        );
        proptest::collection::vec(clause, 0..40)
            .prop_map(move |clauses| Formula { num_vars, clauses })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn agrees_with_brute_force(f in arb_formula()) {
        let expected = brute_force(&f, &[]);
        let mut s = build_solver(&f);
        let result = s.solve(&[]);
        match expected {
            Some(_) => {
                prop_assert_eq!(result, SolveResult::Sat);
                // The model must satisfy every clause.
                for clause in &f.clauses {
                    let ok = clause.iter().any(|&c| s.model_value(lit_of(c)) == Some(true));
                    prop_assert!(ok, "model violates clause {:?}", clause);
                }
            }
            None => prop_assert_eq!(result, SolveResult::Unsat),
        }
    }

    #[test]
    fn agrees_under_assumptions(
        f in arb_formula(),
        raw_assumps in proptest::collection::vec((1i32..=12, any::<bool>()), 0..6),
    ) {
        let assumps: Vec<i32> = raw_assumps
            .iter()
            .filter(|(v, _)| (*v as usize) <= f.num_vars)
            .map(|&(v, neg)| if neg { -v } else { v })
            .collect();
        let expected = brute_force(&f, &assumps);
        let mut s = build_solver(&f);
        let assumption_lits: Vec<Lit> = assumps.iter().map(|&c| lit_of(c)).collect();
        let result = s.solve(&assumption_lits);
        match expected {
            Some(_) => {
                prop_assert_eq!(result, SolveResult::Sat);
                for &a in &assumption_lits {
                    prop_assert_eq!(s.model_value(a), Some(true), "assumption {:?} not honored", a);
                }
                for clause in &f.clauses {
                    let ok = clause.iter().any(|&c| s.model_value(lit_of(c)) == Some(true));
                    prop_assert!(ok, "model violates clause {:?}", clause);
                }
            }
            None => {
                prop_assert_eq!(result, SolveResult::Unsat);
                // If the base formula is satisfiable, the final conflict
                // must name a genuinely contradictory assumption subset.
                if brute_force(&f, &[]).is_some() {
                    let core: Vec<i32> = s
                        .final_conflict()
                        .iter()
                        .map(|l| {
                            let v = l.var().index() as i32 + 1;
                            if l.is_negative() { -v } else { v }
                        })
                        .collect();
                    prop_assert!(!core.is_empty());
                    // Each core literal must be one of the assumptions.
                    for c in &core {
                        prop_assert!(assumps.contains(c), "core lit {} not among assumptions", c);
                    }
                    prop_assert!(brute_force(&f, &core).is_none(), "reported core is not contradictory");
                }
            }
        }
    }

    #[test]
    fn incremental_solving_stays_consistent(
        f in arb_formula(),
        extra in proptest::collection::vec(
            proptest::collection::vec((1i32..=12, any::<bool>()).prop_map(|(v, n)| if n { -v } else { v }), 1..=3),
            1..6,
        ),
    ) {
        // Add clause batches one at a time, solving in between; every answer
        // must match brute force on the prefix.
        let mut s = build_solver(&f);
        let mut clauses = f.clauses.clone();
        let mut result = s.solve(&[]);
        prop_assert_eq!(result.is_sat(), brute_force(&Formula { num_vars: f.num_vars, clauses: clauses.clone() }, &[]).is_some());
        for batch in extra {
            let batch: Vec<i32> = batch
                .into_iter()
                .filter(|c| c.unsigned_abs() as usize <= f.num_vars)
                .collect();
            if batch.is_empty() {
                continue;
            }
            s.add_clause(batch.iter().map(|&c| lit_of(c)));
            clauses.push(batch);
            result = s.solve(&[]);
            let expected = brute_force(
                &Formula { num_vars: f.num_vars, clauses: clauses.clone() },
                &[],
            );
            prop_assert_eq!(result.is_sat(), expected.is_some());
            prop_assert_eq!(result.is_unsat(), expected.is_none());
        }
    }
}
