//! End-to-end proof validation: the solver's UNSAT answers are replayed
//! through the independent RUP checker. Every lemma the CDCL engine
//! learned must be derivable by unit propagation, and the run must end in
//! the empty clause.

// Pigeonhole generators index holes/pigeons directly.
#![allow(clippy::needless_range_loop)]
use olsq2_sat::{Lit, SolveResult, Solver, Var};

fn lit(code: i32) -> Lit {
    Lit::new(Var::from_index(code.unsigned_abs() as usize - 1), code < 0)
}

fn solver_with(num_vars: usize, clauses: &[Vec<i32>]) -> Solver {
    let mut s = Solver::new();
    s.enable_proof();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c.iter().map(|&v| lit(v)));
    }
    s
}

#[test]
fn pigeonhole_proof_checks() {
    // PHP(4,3): 4 pigeons, 3 holes — a nontrivial UNSAT instance whose
    // proof exercises learning, minimization, and deletion.
    let (p, h) = (4, 3);
    let mut s = Solver::new();
    s.enable_proof();
    let mut x = vec![vec![Lit::positive(Var::from_index(0)); h]; p];
    for row in x.iter_mut() {
        for cell in row.iter_mut() {
            *cell = Lit::positive(s.new_var());
        }
    }
    for row in &x {
        s.add_clause(row.iter().copied());
    }
    for hole in 0..h {
        for p1 in 0..p {
            for p2 in (p1 + 1)..p {
                s.add_clause([!x[p1][hole], !x[p2][hole]]);
            }
        }
    }
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    let proof = s.take_proof().expect("proof recorded");
    assert!(proof.claims_unsat());
    assert_eq!(proof.check(), Ok(()));
    assert!(proof.num_lemmas() > 0, "PHP must require learning");
}

#[test]
fn simple_chain_unsat_proof() {
    let mut s = solver_with(3, &[vec![1], vec![-1, 2], vec![-2, 3], vec![-3]]);
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    let proof = s.take_proof().expect("proof");
    assert_eq!(proof.check(), Ok(()));
}

#[test]
fn incremental_unsat_proof_checks() {
    let mut s = solver_with(3, &[vec![1, 2, 3]]);
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    s.add_clause([lit(-1)]);
    s.add_clause([lit(-2)]);
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    s.add_clause([lit(-3)]);
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    let proof = s.take_proof().expect("proof");
    assert_eq!(proof.check(), Ok(()));
}

#[test]
fn random_unsat_formulas_have_checkable_proofs() {
    let mut rng = olsq2_prng::Rng::seed_from_u64(0x9400F01);
    for round in 0..120 {
        let num_vars = rng.gen_range(2usize..8);
        let num_clauses = rng.gen_range(4usize..30);
        let clauses: Vec<Vec<i32>> = (0..num_clauses)
            .map(|_| {
                let len = rng.gen_range(1usize..3);
                (0..len)
                    .map(|_| {
                        let v = rng.gen_range(1i32..=num_vars as i32);
                        if rng.gen_bool(0.5) {
                            -v
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        let mut s = solver_with(num_vars, &clauses);
        if s.solve(&[]) == SolveResult::Unsat {
            let proof = s.take_proof().expect("proof recorded");
            assert_eq!(proof.check(), Ok(()), "round {round}");
        }
    }
}
