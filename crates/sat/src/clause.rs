//! Arena storage for clauses.
//!
//! Clauses live in one contiguous `Vec<u32>` and are addressed by
//! [`ClauseRef`]. Each record is `[header, (activity, lbd, meta)?, lit0, …]`:
//!
//! * `header = len << 2 | deleted << 1 | learnt`
//! * learnt clauses carry three extra words: an `f32` activity (bitcast),
//!   the literal-block distance (LBD) measured when the clause was learned,
//!   and a meta word holding the retention [`Tier`] plus a used-since-last-
//!   reduce flag for the tiered learnt store.
//!
//! Deleting a clause only marks it; [`ClauseDb::compact`] rebuilds the arena
//! and returns a relocation table so the solver can patch watchers and
//! reasons.

use crate::lit::{ClauseRef, Lit};
use std::collections::HashMap;
use std::num::NonZeroU32;

const LEARNT_BIT: u32 = 1;
const DELETED_BIT: u32 = 2;

/// Extra record words carried by a learnt clause (activity, LBD, meta).
const LEARNT_EXTRA: usize = 3;

const TIER_MASK: u32 = 0b11;
const USED_BIT: u32 = 0b100;

/// Retention tier of a learnt clause (CaDiCaL-style three-tier store).
///
/// * [`Tier::Core`] — very low LBD; kept forever.
/// * [`Tier::Mid`] — medium LBD; demoted to [`Tier::Local`] when unused
///   between two database reductions.
/// * [`Tier::Local`] — everything else; the activity-ranked deletion pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Deletion pool: worst half retired on every reduction.
    Local = 0,
    /// Kept while it keeps participating in conflicts.
    Mid = 1,
    /// Kept forever.
    Core = 2,
}

impl Tier {
    /// Tier a clause of the given LBD is admitted to.
    pub fn for_lbd(lbd: u32) -> Tier {
        match lbd {
            0..=2 => Tier::Core,
            3..=6 => Tier::Mid,
            _ => Tier::Local,
        }
    }

    fn from_bits(bits: u32) -> Tier {
        match bits & TIER_MASK {
            1 => Tier::Mid,
            2 => Tier::Core,
            _ => Tier::Local,
        }
    }
}

/// Arena of clauses addressed by [`ClauseRef`].
///
/// # Examples
///
/// ```
/// use olsq2_sat::clause::ClauseDb;
/// use olsq2_sat::{Lit, Var};
/// let mut db = ClauseDb::new();
/// let a = Lit::positive(Var::from_index(0));
/// let b = Lit::positive(Var::from_index(1));
/// let cref = db.alloc(&[a, b], false);
/// assert_eq!(db.lits(cref), &[a, b]);
/// assert!(!db.is_learnt(cref));
/// ```
#[derive(Debug, Clone)]
pub struct ClauseDb {
    arena: Vec<u32>,
    /// Number of `u32` words occupied by deleted records.
    wasted: usize,
}

impl Default for ClauseDb {
    fn default() -> Self {
        Self::new()
    }
}

impl ClauseDb {
    /// Creates an empty arena.
    pub fn new() -> ClauseDb {
        // Index 0 is a sentinel so ClauseRef can be NonZeroU32.
        ClauseDb {
            arena: vec![0],
            wasted: 0,
        }
    }

    /// Allocates a clause; `learnt` selects the extended record with
    /// activity and LBD words.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty; empty clauses are handled by the solver
    /// as an immediate UNSAT flag, never stored.
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        assert!(
            !lits.is_empty(),
            "empty clauses are not stored in the arena"
        );
        let at = self.arena.len() as u32;
        let header = (lits.len() as u32) << 2 | if learnt { LEARNT_BIT } else { 0 };
        self.arena.push(header);
        if learnt {
            self.arena.push(0f32.to_bits());
            self.arena.push(lits.len() as u32); // initial LBD upper bound
            self.arena.push(Tier::Local as u32); // meta: tier + used flag
        }
        self.arena.extend(lits.iter().map(|l| l.0));
        ClauseRef(NonZeroU32::new(at).expect("arena index 0 is reserved"))
    }

    #[inline]
    fn header(&self, cref: ClauseRef) -> u32 {
        self.arena[cref.0.get() as usize]
    }

    #[inline]
    fn lits_start(&self, cref: ClauseRef) -> usize {
        let base = cref.0.get() as usize;
        if self.header(cref) & LEARNT_BIT != 0 {
            base + 1 + LEARNT_EXTRA
        } else {
            base + 1
        }
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self, cref: ClauseRef) -> usize {
        (self.header(cref) >> 2) as usize
    }

    /// Whether the arena holds no live clauses. Mostly useful in tests.
    pub fn is_empty(&self) -> bool {
        self.arena.len() == 1
    }

    /// Whether the clause was learned during conflict analysis.
    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.header(cref) & LEARNT_BIT != 0
    }

    /// Whether the clause has been marked deleted.
    #[inline]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.header(cref) & DELETED_BIT != 0
    }

    /// Marks the clause deleted (lazily removed from watchers, reclaimed by
    /// [`ClauseDb::compact`]).
    #[inline]
    pub fn delete(&mut self, cref: ClauseRef) {
        let base = cref.0.get() as usize;
        if self.arena[base] & DELETED_BIT == 0 {
            self.arena[base] |= DELETED_BIT;
            let extra = if self.arena[base] & LEARNT_BIT != 0 {
                1 + LEARNT_EXTRA
            } else {
                1
            };
            self.wasted += extra + self.len(cref);
        }
    }

    /// The literals of the clause.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let start = self.lits_start(cref);
        let len = self.len(cref);
        // SAFETY: `Lit` is #[repr(transparent)] over u32 with no invariants,
        // and the words at `start..start+len` were written from `Lit` codes.
        unsafe { std::slice::from_raw_parts(self.arena[start..start + len].as_ptr().cast(), len) }
    }

    /// Mutable access to the literals (used to reorder watched positions).
    #[inline]
    pub fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let start = self.lits_start(cref);
        let len = self.len(cref);
        // SAFETY: see `lits`.
        unsafe {
            std::slice::from_raw_parts_mut(self.arena[start..start + len].as_mut_ptr().cast(), len)
        }
    }

    /// Learned-clause activity, used for deletion ranking.
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f32 {
        debug_assert!(self.is_learnt(cref));
        f32::from_bits(self.arena[cref.0.get() as usize + 1])
    }

    /// Sets the learned-clause activity.
    #[inline]
    pub fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        debug_assert!(self.is_learnt(cref));
        self.arena[cref.0.get() as usize + 1] = activity.to_bits();
    }

    /// Literal-block distance recorded for a learned clause.
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        debug_assert!(self.is_learnt(cref));
        self.arena[cref.0.get() as usize + 2]
    }

    /// Updates the LBD (kept as the minimum seen).
    #[inline]
    pub fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        debug_assert!(self.is_learnt(cref));
        self.arena[cref.0.get() as usize + 2] = lbd;
    }

    /// Retention tier of a learnt clause.
    #[inline]
    pub fn tier(&self, cref: ClauseRef) -> Tier {
        debug_assert!(self.is_learnt(cref));
        Tier::from_bits(self.arena[cref.0.get() as usize + 3])
    }

    /// Sets the retention tier (promotion keeps the maximum seen at call
    /// sites; the arena itself stores whatever is given).
    #[inline]
    pub fn set_tier(&mut self, cref: ClauseRef, tier: Tier) {
        debug_assert!(self.is_learnt(cref));
        let w = &mut self.arena[cref.0.get() as usize + 3];
        *w = (*w & !TIER_MASK) | tier as u32;
    }

    /// Whether the clause participated in a conflict since the last reduce.
    #[inline]
    pub fn is_used(&self, cref: ClauseRef) -> bool {
        debug_assert!(self.is_learnt(cref));
        self.arena[cref.0.get() as usize + 3] & USED_BIT != 0
    }

    /// Marks the clause as used (set during conflict analysis).
    #[inline]
    pub fn set_used(&mut self, cref: ClauseRef, used: bool) {
        debug_assert!(self.is_learnt(cref));
        let w = &mut self.arena[cref.0.get() as usize + 3];
        if used {
            *w |= USED_BIT;
        } else {
            *w &= !USED_BIT;
        }
    }

    /// Fraction of the arena occupied by deleted records.
    pub fn wasted_ratio(&self) -> f64 {
        self.wasted as f64 / self.arena.len() as f64
    }

    /// Rebuilds the arena without deleted records and returns the
    /// old-to-new relocation map. Every live [`ClauseRef`] held elsewhere
    /// (watchers, reasons, clause lists) must be translated through it.
    pub fn compact(&mut self) -> HashMap<ClauseRef, ClauseRef> {
        let mut new_arena = Vec::with_capacity(self.arena.len() - self.wasted);
        new_arena.push(0);
        let mut remap = HashMap::new();
        let mut i = 1usize;
        while i < self.arena.len() {
            let header = self.arena[i];
            let len = (header >> 2) as usize;
            let learnt = header & LEARNT_BIT != 0;
            let extra = if learnt { 1 + LEARNT_EXTRA } else { 1 };
            let record = extra + len;
            if header & DELETED_BIT == 0 {
                let old = ClauseRef(NonZeroU32::new(i as u32).expect("nonzero"));
                let new = ClauseRef(NonZeroU32::new(new_arena.len() as u32).expect("nonzero"));
                new_arena.extend_from_slice(&self.arena[i..i + record]);
                remap.insert(old, new);
            }
            i += record;
        }
        self.arena = new_arena;
        self.wasted = 0;
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&[lit(0), !lit(1), lit(2)], false);
        let c2 = db.alloc(&[lit(3), lit(4)], true);
        assert_eq!(db.lits(c1), &[lit(0), !lit(1), lit(2)]);
        assert_eq!(db.lits(c2), &[lit(3), lit(4)]);
        assert_eq!(db.len(c1), 3);
        assert!(db.is_learnt(c2));
        assert!(!db.is_learnt(c1));
        assert_eq!(db.lbd(c2), 2);
    }

    #[test]
    fn activity_roundtrip() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&[lit(0), lit(1)], true);
        db.set_activity(c, 3.25);
        assert_eq!(db.activity(c), 3.25);
        db.set_lbd(c, 1);
        assert_eq!(db.lbd(c), 1);
    }

    #[test]
    fn delete_and_compact() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&[lit(0), lit(1)], false);
        let c2 = db.alloc(&[lit(2), lit(3), lit(4)], true);
        let c3 = db.alloc(&[lit(5), lit(6)], false);
        db.delete(c2);
        assert!(db.is_deleted(c2));
        let remap = db.compact();
        assert_eq!(remap.len(), 2);
        let n1 = remap[&c1];
        let n3 = remap[&c3];
        assert_eq!(db.lits(n1), &[lit(0), lit(1)]);
        assert_eq!(db.lits(n3), &[lit(5), lit(6)]);
        assert!(!remap.contains_key(&c2));
    }

    #[test]
    fn tier_and_used_roundtrip() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&[lit(0), lit(1), lit(2)], true);
        assert_eq!(db.tier(c), Tier::Local);
        assert!(!db.is_used(c));
        db.set_tier(c, Tier::Core);
        db.set_used(c, true);
        // The meta word must not bleed into the literals or vice versa.
        assert_eq!(db.lits(c), &[lit(0), lit(1), lit(2)]);
        assert_eq!(db.tier(c), Tier::Core);
        assert!(db.is_used(c));
        db.set_used(c, false);
        assert_eq!(db.tier(c), Tier::Core);
        assert!(!db.is_used(c));
        assert_eq!(Tier::for_lbd(2), Tier::Core);
        assert_eq!(Tier::for_lbd(5), Tier::Mid);
        assert_eq!(Tier::for_lbd(9), Tier::Local);
    }

    #[test]
    fn tier_survives_compaction() {
        let mut db = ClauseDb::new();
        let dead = db.alloc(&[lit(0), lit(1)], false);
        let c = db.alloc(&[lit(2), lit(3)], true);
        db.set_tier(c, Tier::Mid);
        db.set_used(c, true);
        db.delete(dead);
        let remap = db.compact();
        let n = remap[&c];
        assert_eq!(db.tier(n), Tier::Mid);
        assert!(db.is_used(n));
        assert_eq!(db.lits(n), &[lit(2), lit(3)]);
    }

    #[test]
    fn lits_mut_reorders() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&[lit(0), lit(1), lit(2)], false);
        db.lits_mut(c).swap(0, 2);
        assert_eq!(db.lits(c), &[lit(2), lit(1), lit(0)]);
    }
}
