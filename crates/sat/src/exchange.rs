//! Learned-clause exchange hooks (HordeSat-style portfolio sharing).
//!
//! A portfolio of solvers working on the *same* CNF wastes the conflict
//! analysis every losing member performs: each learned clause is a lemma
//! of the shared formula and would prune the search of every other
//! member. This module defines the solver-side half of clause sharing:
//!
//! * [`ClauseExchange`] — the hook pair a sharing medium implements.
//!   The solver **exports** learned clauses that pass the
//!   [`ExchangeFilter`] (low LBD, short) as they are derived, and
//!   **imports** foreign clauses at restart boundaries and on `solve`
//!   entry, where it is safely at decision level 0.
//! * [`ExchangeFilter`] — the export quality gate (LBD threshold and
//!   length cap, the knobs HordeSat exposes).
//!
//! The medium itself (ring buffers, cohort grouping, variable-space
//! fingerprinting) lives with the portfolio driver in the `olsq2` core
//! crate; this crate only defines the boundary so the solver stays free
//! of any concurrency machinery.
//!
//! # Soundness contract
//!
//! Every clause handed to [`ClauseExchange::export`] is a logical
//! consequence of the exporter's clause database. Importing it into a
//! solver over a **different** formula (or a different variable
//! numbering of the same formula) is unsound and will silently corrupt
//! UNSAT answers. Implementations MUST only deliver clauses between
//! solvers whose variable spaces are identical; the
//! [`ClauseExchange::bind_space`] hook exists so the model builder can
//! tag each rebuild of the formula and the medium can fence clauses by
//! that tag. The solver additionally drops imported clauses that
//! mention variables it has not allocated, but that guard cannot detect
//! *renumbered* variables — the fence is the medium's responsibility.
//!
//! When clausal proof logging is enabled, imported clauses are recorded
//! as [`ProofStep::Imported`](crate::ProofStep::Imported) and the
//! checker either re-derives them by reverse unit propagation or fails
//! with an explicit
//! [`CheckProofError::ImportedNotVerified`](crate::CheckProofError::ImportedNotVerified)
//! — sharing can weaken proof *checkability*, never silently.

use crate::lit::Lit;

/// Export quality gate: which learned clauses are worth sharing.
///
/// Sharing everything floods the importers with long, instance-specific
/// clauses that cost propagation overhead; HordeSat's observation is
/// that short, low-LBD ("glue") clauses carry almost all of the value.
///
/// # Examples
///
/// ```
/// use olsq2_sat::ExchangeFilter;
/// let f = ExchangeFilter::default();
/// assert!(f.admits(3, 2));
/// assert!(!f.admits(100, 2)); // too long
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeFilter {
    /// Maximum literal-block distance an exported clause may have.
    pub max_lbd: u32,
    /// Maximum number of literals an exported clause may have.
    pub max_len: usize,
}

impl Default for ExchangeFilter {
    /// LBD ≤ 4 and length ≤ 8 — the classic HordeSat-style defaults.
    fn default() -> Self {
        ExchangeFilter {
            max_lbd: 4,
            max_len: 8,
        }
    }
}

impl ExchangeFilter {
    /// Whether a learned clause of the given size and LBD passes the gate.
    #[inline]
    pub fn admits(&self, len: usize, lbd: u32) -> bool {
        len <= self.max_len && lbd <= self.max_lbd
    }
}

/// The sharing medium between portfolio solvers.
///
/// Implementations must be cheap on the export path — it runs inside
/// the solver's conflict loop — and must uphold the soundness contract
/// in the [module docs](self): clauses may only flow between solvers
/// over the identical variable space.
pub trait ClauseExchange: Send + Sync + std::fmt::Debug {
    /// Offers a learned clause (already past the [`ExchangeFilter`]) to
    /// the medium. `lbd` is the literal-block distance at learn time.
    fn export(&self, lits: &[Lit], lbd: u32);

    /// Appends foreign clauses into `out`. Called by the solver at
    /// restart boundaries and on `solve` entry, always at decision
    /// level 0. The medium should deliver each clause to each consumer
    /// at most once.
    fn import_into(&self, out: &mut Vec<Vec<Lit>>);

    /// Notifies the medium that the attached solver's variable space
    /// (re)materialized: `fingerprint` identifies the formula build and
    /// `num_vars` is the variable count at build time. Media that fence
    /// clauses by space use this to tag exports and filter imports; the
    /// default implementation ignores it.
    fn bind_space(&self, fingerprint: u64, num_vars: usize) {
        let _ = (fingerprint, num_vars);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_gates_on_both_axes() {
        let f = ExchangeFilter::default();
        assert!(f.admits(1, 1));
        assert!(f.admits(8, 4));
        assert!(!f.admits(9, 4));
        assert!(!f.admits(8, 5));
    }

    #[test]
    fn custom_filter() {
        let f = ExchangeFilter {
            max_lbd: 2,
            max_len: 30,
        };
        assert!(f.admits(30, 2));
        assert!(!f.admits(31, 2));
        assert!(!f.admits(5, 3));
    }
}
