//! Indexed binary max-heap ordering variables by VSIDS activity.
//!
//! The heap stores variable indices and keeps a reverse `positions` table so
//! [`VarHeap::update`] (activity bump of an enqueued variable) is `O(log n)`
//! and membership checks are `O(1)`.

use crate::lit::Var;

/// Max-heap of decision candidates keyed by an external activity table.
///
/// # Examples
///
/// ```
/// use olsq2_sat::heap::VarHeap;
/// use olsq2_sat::Var;
/// let mut heap = VarHeap::new();
/// let act = vec![1.0, 5.0, 3.0];
/// for i in 0..3 {
///     heap.grow(Var::from_index(i));
///     heap.insert(Var::from_index(i), &act);
/// }
/// assert_eq!(heap.pop(&act), Some(Var::from_index(1)));
/// assert_eq!(heap.pop(&act), Some(Var::from_index(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// `positions[v] == usize::MAX` when `v` is not in the heap.
    positions: Vec<usize>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Makes room for `var`; must be called once per new variable.
    pub fn grow(&mut self, var: Var) {
        if self.positions.len() <= var.index() {
            self.positions.resize(var.index() + 1, NOT_IN_HEAP);
        }
    }

    /// Whether the heap currently contains `var`.
    #[inline]
    pub fn contains(&self, var: Var) -> bool {
        self.positions
            .get(var.index())
            .is_some_and(|&p| p != NOT_IN_HEAP)
    }

    /// Number of enqueued variables.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no variable is enqueued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `var` (no-op if present), restoring the heap property using
    /// `activity` as the key.
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        let pos = self.heap.len();
        self.heap.push(var);
        self.positions[var.index()] = pos;
        self.sift_up(pos, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.positions[top.index()] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Re-sifts `var` after its activity increased.
    pub fn update(&mut self, var: Var, activity: &[f64]) {
        if let Some(&pos) = self.positions.get(var.index()) {
            if pos != NOT_IN_HEAP {
                self.sift_up(pos, activity);
            }
        }
    }

    /// Rebuilds the heap from scratch (used after a global activity rescale,
    /// where relative order is preserved, so this is normally unnecessary;
    /// kept for completeness and tests).
    pub fn rebuild(&mut self, activity: &[f64]) {
        let vars = std::mem::take(&mut self.heap);
        for p in &mut self.positions {
            *p = NOT_IN_HEAP;
        }
        for v in vars {
            self.insert(v, activity);
        }
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        let var = self.heap[pos];
        let key = activity[var.index()];
        while pos > 0 {
            let parent = (pos - 1) / 2;
            let pvar = self.heap[parent];
            if activity[pvar.index()] >= key {
                break;
            }
            self.heap[pos] = pvar;
            self.positions[pvar.index()] = pos;
            pos = parent;
        }
        self.heap[pos] = var;
        self.positions[var.index()] = pos;
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        let var = self.heap[pos];
        let key = activity[var.index()];
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[left].index()]
            {
                child = right;
            }
            let cvar = self.heap[child];
            if key >= activity[cvar.index()] {
                break;
            }
            self.heap[pos] = cvar;
            self.positions[cvar.index()] = pos;
            pos = child;
        }
        self.heap[pos] = var;
        self.positions[var.index()] = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 9.0, 3.0, 7.0, 1.0];
        let mut h = VarHeap::new();
        for i in 0..5 {
            h.grow(v(i));
            h.insert(v(i), &act);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop(&act)).map(Var::index).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let act = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow(v(0));
        h.grow(v(1));
        h.insert(v(0), &act);
        h.insert(v(0), &act);
        h.insert(v(1), &act);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn update_resifts() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.grow(v(i));
            h.insert(v(i), &act);
        }
        act[0] = 10.0;
        h.update(v(0), &act);
        assert_eq!(h.pop(&act), Some(v(0)));
    }

    #[test]
    fn rebuild_preserves_membership() {
        let act = vec![2.0, 1.0, 4.0];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.grow(v(i));
            h.insert(v(i), &act);
        }
        h.pop(&act); // remove v2
        h.rebuild(&act);
        assert_eq!(h.len(), 2);
        assert_eq!(h.pop(&act), Some(v(0)));
        assert_eq!(h.pop(&act), Some(v(1)));
        assert!(h.pop(&act).is_none());
    }
}
