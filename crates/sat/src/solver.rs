//! The CDCL solver.
//!
//! A conventional conflict-driven clause-learning SAT solver in the MiniSat
//! lineage, with the features the OLSQ2 optimization loops rely on:
//!
//! * **incremental solving under assumptions** — bound constraints are
//!   guarded by activation literals, so tightening an objective bound is a
//!   new `solve` call that keeps all learned clauses;
//! * **final-conflict extraction** — which assumptions caused UNSAT;
//! * **conflict and wall-clock budgets** — `solve` can return
//!   [`SolveResult::Unknown`], which the optimizers treat as "time budget
//!   exhausted" per §III-B of the paper.
//!
//! Internals: two-watched-literal propagation with blockers and dedicated
//! binary-clause watch lists (the implied literal is inlined in the watcher,
//! so 2-clauses — which dominate the one-hot/sequential-counter encodings —
//! propagate without touching the clause arena), VSIDS with an indexed heap
//! and phase saving, first-UIP learning with recursive clause minimization,
//! Luby restarts, and arena garbage collection.
//!
//! Inprocessing (see [`SolverFeatures`]) runs between restarts at decision
//! level 0: clause vivification of irredundant and high-value learnt
//! clauses, self-subsumption strengthening detected during conflict
//! analysis, periodic rephasing from the best trail seen, and a three-tier
//! learnt-clause store (core / mid / local by LBD). Every clause rewrite is
//! proof-logged (lemma before delete, so the shortened clause is
//! RUP-checkable against a database still containing the original), and
//! variables above the inprocessing floor ([`Solver::set_inprocess_floor`])
//! or appearing in the current assumptions are never touched — which keeps
//! incremental window growth and cohort clause sharing sound.

// Indexed `for` loops are deliberate here: clause/variable tables are indexed by position.
#![allow(clippy::needless_range_loop)]
use crate::clause::{ClauseDb, Tier};
use crate::exchange::{ClauseExchange, ExchangeFilter};
use crate::heap::VarHeap;
use crate::lit::{ClauseRef, LBool, Lit, Var};
use crate::proof::{Proof, ProofStep};
use crate::watchlist::WatchLists;
use olsq2_obs::{Probe, Recorder, SampleSource, SearchSample};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions; inspect
    /// [`Solver::final_conflict`] for the responsible assumption subset.
    Unsat,
    /// A budget (conflicts or deadline) expired before an answer was found.
    Unknown,
}

impl SolveResult {
    /// Whether the result is [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// Whether the result is [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }
}

/// Cumulative search statistics, reset only by [`Solver::new`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses currently retained.
    pub learnts: u64,
    /// Learned-clause database reductions.
    pub reduces: u64,
    /// Literals deleted by conflict-clause minimization.
    pub minimized_lits: u64,
    /// Learned clauses exported through the clause exchange.
    pub exported: u64,
    /// Foreign clauses imported and added to the database.
    pub imported: u64,
    /// Foreign clauses dropped on import (duplicate, root-satisfied, or
    /// over unknown variables).
    pub import_dropped: u64,
    /// Root-level [`Solver::simplify`] passes that did real work.
    pub simplifies: u64,
    /// Clauses removed by `simplify` because they were root-satisfied.
    pub simplify_removed: u64,
    /// Clauses strengthened by `simplify` (root-falsified literals
    /// stripped, the shortened clause re-allocated).
    pub simplify_strengthened: u64,
    /// Clauses shortened by vivification (distillation).
    pub vivified: u64,
    /// Clauses strengthened by self-subsumption detected during conflict
    /// analysis (applied at the next level-0 boundary).
    pub strengthened: u64,
    /// Propagations served by the dedicated binary watch lists.
    pub binary_props: u64,
    /// Propagations served by the dedicated ternary watch lists.
    pub ternary_props: u64,
    /// Mid-tier learnt clauses demoted to the local deletion pool for
    /// sitting out a full reduce interval.
    pub tier_demotions: u64,
    /// Rephasings from the best trail seen.
    pub rephases: u64,
    /// Chronological (one-level) backtracks taken where conflict analysis
    /// proposed a longer jump.
    pub chrono_backtracks: u64,
    /// LBD-EMA restarts suppressed because the trail was abnormally deep
    /// (the search looked close to a model).
    pub blocked_restarts: u64,
    /// Rephasings that copied the incumbent target phases instead of the
    /// best trail.
    pub target_rephases: u64,
}

/// Feature toggles for the propagation kernel and the inprocessing engine.
///
/// The default is everything on; [`SolverFeatures::legacy`] reproduces the
/// pre-inprocessing MiniSat-era behavior and exists for A/B benchmarking
/// ([`crate::Solver`] semantics — verdicts and optima — are identical
/// either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverFeatures {
    /// Dedicated binary-clause watch lists with the implied literal
    /// inlined. Must be chosen before any clause is added.
    pub binary_watches: bool,
    /// Dedicated ternary-clause watch lists with both other literals
    /// inlined: every literal of a 3-clause watches it, so propagation
    /// never dereferences the clause arena and watchers never migrate.
    /// Must be chosen before any clause is added.
    pub ternary_watches: bool,
    /// Clause vivification between restarts.
    pub vivify: bool,
    /// Self-subsumption strengthening detected during conflict analysis.
    pub otf_strengthen: bool,
    /// Periodic rephasing from the best (longest) trail seen.
    pub rephase: bool,
    /// Three-tier learnt store (core/mid/local) instead of the single
    /// activity-sorted reduce.
    pub tiered_reduce: bool,
    /// Conflicts between vivification passes.
    pub vivify_interval: u64,
    /// Conflicts between rephasings.
    pub rephase_interval: u64,
    /// Chronological backtracking: when conflict analysis proposes a jump
    /// longer than `chrono_threshold`, undo a single level instead and
    /// record the asserting literal at its assertion level. The trail may
    /// then hold out-of-order assignments; `cancel_until` repairs them.
    pub chrono_backtrack: bool,
    /// Maximum non-chronological jump distance before chronological
    /// backtracking takes over. Ignored unless `chrono_backtrack` is set.
    pub chrono_threshold: u32,
    /// Branching prefers externally supplied target polarities (the
    /// synthesis incumbent) over saved phases, and the periodic rephaser
    /// alternates between the best trail and the targets.
    pub target_phase: bool,
    /// Glucose-style restarts: restart as soon as the fast LBD average
    /// rises well above the long-run average, instead of waiting out the
    /// Luby budget.
    pub glucose_restarts: bool,
    /// Suppress an LBD-triggered restart while the trail is much deeper
    /// than its long-run average at conflicts — the search is likely
    /// closing in on a model. Ignored unless `glucose_restarts` is set.
    pub restart_postpone: bool,
    /// Structure-aware seeding: model builders may pre-set saved phases
    /// and activity bumps from encoding structure (one-hot mapping groups,
    /// sequential counters). Read by `olsq2-core`, not by the solver.
    pub structure_seeding: bool,
}

impl Default for SolverFeatures {
    fn default() -> Self {
        SolverFeatures {
            binary_watches: true,
            ternary_watches: true,
            vivify: true,
            otf_strengthen: true,
            rephase: true,
            tiered_reduce: true,
            // Vivification prices in at roughly a restart's worth of
            // propagation per pass, so it only pays off once the learnt
            // database has real tenure; short solves never reach it.
            vivify_interval: 12_000,
            rephase_interval: 10_000,
            chrono_backtrack: true,
            // Short jumps keep the non-chronological learning signal;
            // only genuinely long jumps (which discard whole subtrees of
            // consistent assignments) fall back to one-level undo.
            chrono_threshold: 100,
            target_phase: true,
            glucose_restarts: true,
            restart_postpone: true,
            structure_seeding: true,
        }
    }
}

impl SolverFeatures {
    /// The pre-overhaul kernel: regular watches for all clauses, no
    /// inprocessing, single activity-sorted reduce, MiniSat-era search
    /// policies (Luby-only restarts, non-chronological backtracking,
    /// saved phases only).
    pub fn legacy() -> SolverFeatures {
        SolverFeatures {
            binary_watches: false,
            ternary_watches: false,
            vivify: false,
            otf_strengthen: false,
            rephase: false,
            tiered_reduce: false,
            chrono_backtrack: false,
            target_phase: false,
            glucose_restarts: false,
            restart_postpone: false,
            structure_seeding: false,
            ..SolverFeatures::default()
        }
    }
}

/// Unit-propagation budget of one vivification pass.
const VIVIFY_PROP_BUDGET: u64 = 30_000;
/// Glucose restart trigger: fast LBD EMA above this multiple of the
/// long-run LBD average fires a restart.
const GLUCOSE_K: f64 = 1.25;
/// Minimum conflicts inside the current restart (and after a blocked
/// restart) before the LBD trigger may fire; also the warm-up before the
/// long-run averages are trusted.
const GLUCOSE_MIN_CONFLICTS: u64 = 100;
/// A restart is postponed when the trail is deeper than this multiple of
/// the long-run average trail depth at conflicts.
const RESTART_BLOCK_R: f64 = 1.4;
/// Cap on queued self-subsumption rewrites awaiting a level-0 boundary.
const MAX_PENDING_STRENGTHEN: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Watcher for a 2-clause: the other literal is stored inline, so binary
/// propagation never dereferences the clause arena. The `cref` is kept only
/// for reasons/conflicts and lazy removal.
#[derive(Debug, Clone, Copy)]
struct BinWatcher {
    cref: ClauseRef,
    implied: Lit,
}

/// Watcher for a 3-clause: both other literals are stored inline and all
/// three literals watch the clause, so a falsified watch decides the
/// clause's status (satisfied / unit / conflicting / still open) without
/// touching the clause arena, and no watcher ever migrates. Unlike binary
/// watchers, ternary clauses can be *learnt* and therefore deleted by
/// database reduction, so the scan drops watchers of deleted clauses
/// lazily (one header load, still no literal access).
#[derive(Debug, Clone, Copy)]
struct TernWatcher {
    cref: ClauseRef,
    others: [Lit; 2],
}

/// A self-subsumption rewrite detected during conflict analysis:
/// `target \ {remove}` is the resolvent of `target` with `support` and is
/// applied (proof-logged) at the next decision-level-0 boundary.
#[derive(Debug, Clone, Copy)]
struct PendingStrengthen {
    target: ClauseRef,
    remove: Lit,
    support: ClauseRef,
}

/// FNV-1a over a sorted, deduplicated literal list. The canonical order
/// makes the signature independent of the literal order the clause arrived
/// in; the per-element multiply keeps it sensitive to position so sparse
/// XOR cancellation cannot occur.
fn clause_signature(sorted: &[Lit]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &l in sorted {
        h ^= u64::from(l.0) + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone, Copy)]
struct VarData {
    reason: Option<ClauseRef>,
    level: u32,
}

/// Incremental CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use olsq2_sat::{Solver, Lit, SolveResult};
/// let mut s = Solver::new();
/// let a = Lit::positive(s.new_var());
/// let b = Lit::positive(s.new_var());
/// s.add_clause([a, b]);
/// s.add_clause([!a, b]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// // Incremental: now assume ¬b, which is impossible.
/// assert_eq!(s.solve(&[!b]), SolveResult::Unsat);
/// // The contradictory assumption subset is {¬b}.
/// assert_eq!(s.final_conflict(), &[!b]);
/// ```
#[derive(Debug)]
pub struct Solver {
    db: ClauseDb,
    clauses: Vec<ClauseRef>,
    learnts: Vec<ClauseRef>,
    watches: WatchLists<Watcher>,
    /// Dedicated watch lists for 2-clauses (when the feature is on).
    bin_watches: WatchLists<BinWatcher>,
    /// Dedicated watch lists for 3-clauses (when the feature is on).
    tern_watches: WatchLists<TernWatcher>,
    /// True while a deleted ternary clause may still have watchers in
    /// `tern_watches` (set at every ternary deletion, cleared by the
    /// full watcher sweeps). While false — the common case — the
    /// ternary scan skips the per-watcher arena header load entirely.
    tern_stale: bool,
    assigns: Vec<LBool>,
    vardata: Vec<VarData>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Saved phase per variable (last assigned polarity).
    phase: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    /// False once an empty clause or level-0 conflict proves global UNSAT.
    ok: bool,
    model: Vec<LBool>,
    final_conflict: Vec<Lit>,
    stats: Stats,
    conflict_budget: Option<u64>,
    deadline: Option<Instant>,
    /// Cooperative interrupt for portfolio solving.
    stop: Option<Arc<AtomicBool>>,
    next_reduce: u64,
    reduce_inc: u64,
    /// Root-trail length at the last `simplify`, to skip redundant passes.
    simp_trail_len: usize,
    /// Clausal proof log, when enabled.
    proof: Option<Proof>,
    /// Telemetry sink; the default disabled recorder costs one branch.
    recorder: Recorder,
    /// Flight-recorder probe; the default disabled probe costs one
    /// branch per conflict.
    probe: Probe,
    /// Fast-horizon LBD exponential moving average (α = 2⁻⁵), over every
    /// learnt clause's LBD.
    lbd_ema_fast: f64,
    /// Slow-horizon LBD exponential moving average (α = 2⁻¹²).
    lbd_ema_slow: f64,
    /// Sharing medium for portfolio solving; `None` solves in isolation.
    exchange: Option<Arc<dyn ClauseExchange>>,
    /// Export quality gate for the exchange.
    exchange_filter: ExchangeFilter,
    /// Signatures of clauses already imported (duplicate filter). Each
    /// entry is a 64-bit hash of the sorted, deduplicated literal list —
    /// no per-import allocation. A collision drops a *distinct* foreign
    /// clause as a duplicate, which loses a (redundant by contract)
    /// sharing opportunity but can never affect soundness.
    import_seen: HashSet<u64>,
    /// Scratch buffer reused across import drains.
    import_buf: Vec<Vec<Lit>>,
    /// Scratch for canonicalizing one clause before signing it.
    sig_buf: Vec<Lit>,
    /// Kernel/inprocessing feature toggles.
    features: SolverFeatures,
    /// Variables at or above this index are never touched by inprocessing
    /// (activation literals, post-`bind_space` allocations). Kept as the
    /// minimum over all [`Solver::set_inprocess_floor`] calls.
    inprocess_floor: usize,
    /// Variables assumed in the current `solve` call; also off-limits to
    /// inprocessing.
    assumption_frozen: Vec<bool>,
    /// `false` while vivification probes run, so their enqueues do not
    /// clobber the saved phases that guide real search.
    save_phases: bool,
    /// When proof logging is on, record each assumption-UNSAT's negated
    /// final conflict as a lemma (cube-and-conquer proof stitching).
    core_lemmas: bool,
    /// Conflict count that triggers the next vivification pass.
    next_vivify: u64,
    /// Rotating cursors into `clauses`/`learnts` so successive passes
    /// cover the whole database.
    viv_cursor: [usize; 2],
    /// Conflict count that triggers the next rephase.
    next_rephase: u64,
    /// Longest trail seen since the last rephase, and the phases it chose.
    best_trail_len: usize,
    best_phase: Vec<bool>,
    /// Target polarity per variable (`Undef` = no target). Set from the
    /// synthesis incumbent; consulted by branching and rephasing when the
    /// `target_phase` feature is on.
    target_phase: Vec<LBool>,
    /// Alternates rephase sources between the best trail and the targets.
    rephase_flip: bool,
    /// Running sums for the Glucose restart policy: LBD and trail depth
    /// at each conflict, and the number of conflicts accumulated.
    lbd_sum: f64,
    trail_depth_sum: f64,
    avg_conflicts: u64,
    /// Global conflict count below which the LBD restart trigger stays
    /// disarmed (set after a blocked restart).
    restart_hold: u64,
    /// Scratch buffer for out-of-order trail repair in `cancel_until`.
    cancel_buf: Vec<Lit>,
    /// Self-subsumption rewrites awaiting a level-0 boundary.
    pending_strengthen: Vec<PendingStrengthen>,
    /// Stamped literal marks for the subset test in strengthening
    /// detection (stamp bump instead of clearing).
    lit_stamp: Vec<u32>,
    stamp: u32,
    /// VSIDS activity decay factor (diversification knob).
    var_decay: f64,
    /// Luby restart unit in conflicts (diversification knob).
    restart_base: u64,
    /// Initial saved phase for fresh variables (diversification knob).
    default_phase: bool,
    /// xorshift64* state for randomized decisions; 0 disables them.
    rng_state: u64,
    // Scratch buffers for conflict analysis.
    seen: Vec<bool>,
    analyze_toclear: Vec<Var>,
    analyze_stack: Vec<Lit>,
    // Scratch buffers for clause addition (raw literals, then the
    // root-simplified clause), reused across `add_clause` calls.
    add_buf: Vec<Lit>,
    add_buf2: Vec<Lit>,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESTART_BASE: u64 = 100;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: WatchLists::new(),
            bin_watches: WatchLists::new(),
            tern_watches: WatchLists::new(),
            tern_stale: false,
            assigns: Vec::new(),
            vardata: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            phase: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            ok: true,
            model: Vec::new(),
            final_conflict: Vec::new(),
            stats: Stats::default(),
            conflict_budget: None,
            deadline: None,
            stop: None,
            next_reduce: 2000,
            reduce_inc: 300,
            simp_trail_len: usize::MAX,
            proof: None,
            recorder: Recorder::disabled(),
            probe: Probe::disabled(),
            lbd_ema_fast: 0.0,
            lbd_ema_slow: 0.0,
            exchange: None,
            exchange_filter: ExchangeFilter::default(),
            import_seen: HashSet::new(),
            import_buf: Vec::new(),
            sig_buf: Vec::new(),
            features: SolverFeatures::default(),
            inprocess_floor: usize::MAX,
            assumption_frozen: Vec::new(),
            save_phases: true,
            core_lemmas: false,
            next_vivify: SolverFeatures::default().vivify_interval,
            viv_cursor: [0, 0],
            next_rephase: SolverFeatures::default().rephase_interval,
            best_trail_len: 0,
            best_phase: Vec::new(),
            target_phase: Vec::new(),
            rephase_flip: false,
            lbd_sum: 0.0,
            trail_depth_sum: 0.0,
            avg_conflicts: 0,
            restart_hold: 0,
            cancel_buf: Vec::new(),
            pending_strengthen: Vec::new(),
            lit_stamp: Vec::new(),
            stamp: 0,
            var_decay: VAR_DECAY,
            restart_base: RESTART_BASE,
            default_phase: false,
            rng_state: 0,
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            analyze_stack: Vec::new(),
            add_buf: Vec::new(),
            add_buf2: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.vardata.push(VarData {
            reason: None,
            level: 0,
        });
        self.watches.push_list();
        self.watches.push_list();
        self.bin_watches.push_list();
        self.bin_watches.push_list();
        self.tern_watches.push_list();
        self.tern_watches.push_list();
        self.phase.push(self.default_phase);
        self.activity.push(0.0);
        self.order.grow(v);
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learned) clauses currently retained.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.learnts = self.learnts.len() as u64;
        s
    }

    /// Limits the next `solve` calls to roughly `budget` conflicts
    /// (cumulative from now); `None` removes the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget.map(|b| self.stats.conflicts + b);
    }

    /// Aborts `solve` with [`SolveResult::Unknown`] once `deadline` passes.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Installs a cooperative interrupt: while the flag is `true`, `solve`
    /// aborts with [`SolveResult::Unknown`] at the next conflict boundary.
    /// Used by portfolio solving to cancel losing configurations.
    pub fn set_stop_flag(&mut self, stop: Option<Arc<AtomicBool>>) {
        self.stop = stop;
    }

    /// Installs a telemetry sink. The solver emits `sat.restart` and
    /// `sat.reduce_db` events during search and accumulates per-solve
    /// statistic deltas into `sat.*` counters. The default is the disabled
    /// recorder, which costs one branch per emission site.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Attaches a flight-recorder probe. While attached, the solver
    /// records one [`SearchSample`] every `probe.every()` conflicts —
    /// trail depth, decision level, LBD EMAs, learnt-tier sizes, and
    /// cumulative cadence counters — into the probe's lock-free ring.
    /// The default disabled probe costs one branch per conflict.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The attached flight-recorder probe (a cheap clone of the handle).
    pub fn probe(&self) -> Probe {
        self.probe.clone()
    }

    /// The fast (α = 2⁻⁵) and slow (α = 2⁻¹²) LBD exponential moving
    /// averages over all learnt clauses, `(fast, slow)`. A fast average
    /// well above the slow one means the search is currently deriving
    /// much worse clauses than its long-run norm.
    pub fn lbd_emas(&self) -> (f64, f64) {
        (self.lbd_ema_fast, self.lbd_ema_slow)
    }

    /// Attaches a clause-sharing medium (see [`ClauseExchange`]).
    ///
    /// Learned clauses passing the current [`ExchangeFilter`] are
    /// exported as they are derived; foreign clauses are imported at
    /// restart boundaries and on `solve` entry, with duplicate,
    /// root-satisfied, and unknown-variable filtering.
    ///
    /// **Soundness**: the medium must only deliver clauses between
    /// solvers over the identical variable space — see the
    /// [`crate::exchange`] module docs.
    pub fn set_exchange(&mut self, exchange: Option<Arc<dyn ClauseExchange>>) {
        self.exchange = exchange;
    }

    /// Sets the export quality gate for the clause exchange.
    pub fn set_exchange_filter(&mut self, filter: ExchangeFilter) {
        self.exchange_filter = filter;
    }

    /// Seeds randomized branching: with a seed set, roughly 1 in 64
    /// decisions picks a uniformly random unassigned variable instead of
    /// the VSIDS maximum — the classic cheap diversification knob.
    /// `None` restores fully deterministic VSIDS branching.
    pub fn set_decision_seed(&mut self, seed: Option<u64>) {
        // xorshift needs nonzero state; fold the "or 1" into the seed.
        self.rng_state = seed.map_or(0, |s| s | 1);
    }

    /// Sets the saved-phase polarity used for variables that have never
    /// been assigned. Applies to existing unassigned variables and to
    /// all variables created afterwards.
    pub fn set_default_phase(&mut self, phase: bool) {
        self.default_phase = phase;
        for (v, p) in self.phase.iter_mut().enumerate() {
            if self.assigns[v] == LBool::Undef {
                *p = phase;
            }
        }
    }

    /// Sets the VSIDS activity decay factor (default 0.95).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < decay < 1`.
    pub fn set_var_decay(&mut self, decay: f64) {
        assert!(
            decay > 0.0 && decay < 1.0,
            "variable decay must be in (0, 1), got {decay}"
        );
        self.var_decay = decay;
    }

    /// Sets the Luby restart unit in conflicts (default 100).
    ///
    /// # Panics
    ///
    /// Panics if `base` is 0.
    pub fn set_restart_base(&mut self, base: u64) {
        assert!(base > 0, "restart base must be positive");
        self.restart_base = base;
    }

    /// Selects kernel and inprocessing features (see [`SolverFeatures`]).
    ///
    /// Inprocessing toggles and cadences may change at any time; the next
    /// vivify/rephase triggers are rescheduled relative to the current
    /// conflict count.
    ///
    /// # Panics
    ///
    /// Panics if `binary_watches` or `ternary_watches` is flipped after
    /// clauses were added — the watch schemes are not migrated in place.
    pub fn set_features(&mut self, features: SolverFeatures) {
        assert!(
            (features.binary_watches == self.features.binary_watches
                && features.ternary_watches == self.features.ternary_watches)
                || self.db.is_empty(),
            "watch scheme must be chosen before clauses are added"
        );
        self.features = features;
        self.next_vivify = self.stats.conflicts + features.vivify_interval;
        self.next_rephase = self.stats.conflicts + features.rephase_interval;
    }

    /// Current feature selection.
    pub fn features(&self) -> SolverFeatures {
        self.features
    }

    /// Forks a compacting, O(memcpy) snapshot of the root solver state.
    ///
    /// The child inherits everything the parent *knows*: the clause
    /// arena (after a [`Solver::simplify`] pass and compaction, so dead
    /// clauses cost the child nothing), all watch lists, the root trail
    /// at its propagation fixpoint, learnt clauses with their tiers and
    /// activities, saved / best / target phases, VSIDS activities and
    /// heap order, the proof log (the child's future derivations extend
    /// a valid prefix, so its proofs check independently), and the
    /// feature + diversification knob configuration.
    ///
    /// The child sheds everything *transient or externally owned*:
    /// statistics, restart/reduce/inprocessing schedules, LBD averages,
    /// conflict budgets, deadlines, the cooperative stop flag, telemetry
    /// handles (recorder, probe), and the clause exchange. Spawners
    /// re-arm those per member; in particular a forked cohort member
    /// must be re-bound to its cohort's exchange (same fingerprint as
    /// the parent — the variable space is bit-identical) before sharing.
    /// The duplicate-import filter is carried over, since every clause
    /// the parent imported is already in the child's arena.
    ///
    /// Cost: one allocation + memcpy per field — no re-encode, no
    /// re-propagation, no per-clause work.
    ///
    /// # Panics
    ///
    /// Panics if the solver is not at decision level 0. Through the
    /// public API it always is between [`Solver::solve`] calls.
    pub fn fork(&mut self) -> Solver {
        assert_eq!(self.decision_level(), 0, "fork snapshots root state only");
        if self.ok {
            // Reach the root fixpoint (pending imports or incremental
            // additions may have left `qhead` behind), retire
            // root-satisfied clauses, and compact the arena so the child
            // copies no dead bytes.
            if self.qhead < self.trail.len() && self.propagate().is_some() {
                self.ok = false;
                self.log_proof(|| ProofStep::Empty);
            } else {
                self.simplify();
                if self.db.wasted_ratio() > 0.0 {
                    self.garbage_collect();
                }
            }
        }
        // Compact the watch pools so the child copies no orphaned slots;
        // after this each scheme clones as two straight memcpys.
        if self.watches.wasted() > 0 {
            self.watches.sweep(|_| true);
        }
        if self.bin_watches.wasted() > 0 {
            self.bin_watches.sweep(|_| true);
        }
        if self.tern_watches.wasted() > 0 {
            self.tern_watches.sweep(|_| true);
        }
        let features = self.features;
        Solver {
            db: self.db.clone(),
            clauses: self.clauses.clone(),
            learnts: self.learnts.clone(),
            watches: self.watches.clone(),
            bin_watches: self.bin_watches.clone(),
            tern_watches: self.tern_watches.clone(),
            tern_stale: self.tern_stale,
            assigns: self.assigns.clone(),
            vardata: self.vardata.clone(),
            trail: self.trail.clone(),
            trail_lim: Vec::new(),
            qhead: self.qhead,
            phase: self.phase.clone(),
            activity: self.activity.clone(),
            var_inc: self.var_inc,
            cla_inc: self.cla_inc,
            order: self.order.clone(),
            ok: self.ok,
            model: Vec::new(),
            final_conflict: Vec::new(),
            stats: Stats::default(),
            conflict_budget: None,
            deadline: None,
            stop: None,
            next_reduce: 2000,
            reduce_inc: 300,
            simp_trail_len: self.simp_trail_len,
            proof: self.proof.clone(),
            recorder: Recorder::disabled(),
            probe: Probe::disabled(),
            lbd_ema_fast: 0.0,
            lbd_ema_slow: 0.0,
            exchange: None,
            exchange_filter: self.exchange_filter,
            import_seen: self.import_seen.clone(),
            import_buf: Vec::new(),
            sig_buf: Vec::new(),
            features,
            inprocess_floor: self.inprocess_floor,
            assumption_frozen: Vec::new(),
            save_phases: true,
            core_lemmas: self.core_lemmas,
            next_vivify: features.vivify_interval,
            viv_cursor: [0, 0],
            next_rephase: features.rephase_interval,
            best_trail_len: 0,
            best_phase: self.best_phase.clone(),
            target_phase: self.target_phase.clone(),
            rephase_flip: false,
            lbd_sum: 0.0,
            trail_depth_sum: 0.0,
            avg_conflicts: 0,
            restart_hold: 0,
            cancel_buf: Vec::new(),
            pending_strengthen: self.pending_strengthen.clone(),
            lit_stamp: Vec::new(),
            stamp: 0,
            var_decay: self.var_decay,
            restart_base: self.restart_base,
            default_phase: self.default_phase,
            rng_state: self.rng_state,
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            analyze_stack: Vec::new(),
            add_buf: Vec::new(),
            add_buf2: Vec::new(),
        }
    }

    /// Sets the saved phase of `var` directly (structure-aware seeding:
    /// the model builders know which polarity dominates an at-most-one
    /// group before any conflict does).
    pub fn set_saved_phase(&mut self, var: Var, phase: bool) {
        if let Some(p) = self.phase.get_mut(var.index()) {
            *p = phase;
        }
    }

    /// Sets one target polarity. Targets outrank saved phases in
    /// branching and feed alternate rephasing passes while the
    /// `target_phase` feature is on; they persist across solves until
    /// overwritten.
    pub fn set_target_phase(&mut self, var: Var, phase: bool) {
        if var.index() >= self.num_vars() {
            return;
        }
        if self.target_phase.len() < self.num_vars() {
            self.target_phase.resize(self.num_vars(), LBool::Undef);
        }
        self.target_phase[var.index()] = LBool::from(phase);
    }

    /// Copies the most recent model into the target phases. The synthesis
    /// optimizers call this after each satisfiable bound so the next
    /// (tighter) solve steers toward the incumbent layout.
    pub fn adopt_model_targets(&mut self) {
        if self.model.is_empty() {
            return;
        }
        self.target_phase.clear();
        self.target_phase.extend_from_slice(&self.model);
    }

    /// Whether any target polarity is currently set.
    pub fn has_target_phases(&self) -> bool {
        self.target_phase.iter().any(|t| *t != LBool::Undef)
    }

    /// Clears all target polarities.
    pub fn clear_target_phases(&mut self) {
        self.target_phase.clear();
    }

    /// Declares that variables `floor..` must never be touched by
    /// inprocessing (vivification / self-subsumption strengthening).
    ///
    /// The incremental model builders call this with the variable count at
    /// `bind_space` time: activation literals and window-growth variables
    /// allocated afterwards carry cross-solver or cross-window meaning, so
    /// clauses over them are left exactly as encoded. The floor is kept as
    /// the minimum over all calls and never rises.
    pub fn set_inprocess_floor(&mut self, floor: usize) {
        self.inprocess_floor = self.inprocess_floor.min(floor);
    }

    /// Whether inprocessing must leave clauses mentioning `v` alone.
    #[inline]
    fn is_inprocess_frozen(&self, v: Var) -> bool {
        v.index() >= self.inprocess_floor
            || self
                .assumption_frozen
                .get(v.index())
                .copied()
                .unwrap_or(false)
    }

    /// xorshift64* step; only called when `rng_state != 0`.
    #[inline]
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offers a freshly learned clause to the exchange if it passes the
    /// quality gate.
    #[inline]
    fn maybe_export(&mut self, lits: &[Lit], lbd: u32) {
        if let Some(ex) = &self.exchange {
            if self.exchange_filter.admits(lits.len(), lbd) {
                ex.export(lits, lbd);
                self.stats.exported += 1;
            }
        }
    }

    /// Drains the import queue at a safe point (decision level 0),
    /// filtering duplicates, root-satisfied clauses, and clauses over
    /// variables this solver has not allocated.
    fn drain_imports(&mut self) {
        let Some(ex) = self.exchange.clone() else {
            return;
        };
        debug_assert_eq!(self.decision_level(), 0);
        let mut buf = std::mem::take(&mut self.import_buf);
        buf.clear();
        ex.import_into(&mut buf);
        for lits in buf.drain(..) {
            if !self.ok {
                break;
            }
            if lits.is_empty() || lits.iter().any(|l| l.var().index() >= self.num_vars()) {
                self.stats.import_dropped += 1;
                continue;
            }
            // Canonicalize into the reusable scratch and compare by 64-bit
            // signature: no allocation and no Vec re-hash per import. A
            // signature collision mistakes a distinct clause for a
            // duplicate and drops it — a lost sharing opportunity, never a
            // soundness issue, since imports are redundant by contract.
            self.sig_buf.clear();
            self.sig_buf.extend_from_slice(&lits);
            self.sig_buf.sort_unstable();
            self.sig_buf.dedup();
            let sig = clause_signature(&self.sig_buf);
            if !self.import_seen.insert(sig) {
                self.stats.import_dropped += 1;
                continue;
            }
            if self.import_clause(&lits) {
                self.stats.imported += 1;
            } else {
                self.stats.import_dropped += 1;
            }
        }
        self.import_buf = buf;
    }

    /// Adds a foreign clause at the root level. Mirrors
    /// [`Solver::add_clause`], but records the clause as a learned one
    /// (so database reduction can retire it) and logs it to the proof as
    /// [`ProofStep::Imported`]. Returns whether the clause was retained
    /// (`false` for tautologies and root-satisfied clauses).
    fn import_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.ok);
        let mut v: Vec<Lit> = lits.to_vec();
        v.sort_unstable();
        v.dedup();
        let v_for_proof = v.clone();
        self.log_proof(|| ProofStep::Imported(v_for_proof));
        let mut w = Vec::with_capacity(v.len());
        let mut prev: Option<Lit> = None;
        for &l in &v {
            if prev == Some(!l) || self.value(l) == LBool::True {
                return false; // tautology or already satisfied at root
            }
            if self.value(l) != LBool::False {
                w.push(l);
            }
            prev = Some(l);
        }
        if w != v {
            let w_for_proof = w.clone();
            self.log_proof(|| ProofStep::Lemma(w_for_proof));
        }
        match w.len() {
            0 => {
                self.ok = false;
                self.log_proof(|| ProofStep::Empty);
                true
            }
            1 => {
                self.unchecked_enqueue(w[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    self.log_proof(|| ProofStep::Empty);
                }
                true
            }
            _ => {
                let cref = self.db.alloc(&w, true);
                self.db.set_lbd(cref, w.len() as u32);
                self.learnts.push(cref);
                self.attach(cref);
                true
            }
        }
    }

    /// Adds `amount` to a variable's branching activity — a hook for
    /// domain-informed initial variable orderings (the paper's §V notes
    /// that "we may be able to provide a better ordering based on our
    /// domain knowledge"). Call before `solve`; VSIDS adapts from there.
    pub fn boost_activity(&mut self, var: Var, amount: f64) {
        self.activity[var.index()] += amount;
        self.order.update(var, &self.activity);
    }

    /// The variable's current VSIDS activity. Scores are only comparable
    /// within one solver (rescaling keeps them bounded, not normalized);
    /// a cube splitter uses them to rank fallback split candidates.
    pub fn var_activity(&self, var: Var) -> f64 {
        self.activity[var.index()]
    }

    /// Failed-literal-style lookahead probe: temporarily assumes `lits`
    /// at a fresh decision level, propagates, and undoes everything.
    ///
    /// Returns `None` if the probe conflicts — `lits` is refuted by unit
    /// propagation alone, so `¬lits` is implied by the current database —
    /// or `Some(n)` with the number of *additional* literals the probe
    /// implied, the classic lookahead score for cube splitting. Saved
    /// phases are not disturbed. Must be called at the root level
    /// (between `solve` calls).
    pub fn lookahead(&mut self, lits: &[Lit]) -> Option<usize> {
        assert_eq!(self.decision_level(), 0, "lookahead probes run at root");
        if !self.ok {
            return None;
        }
        // Reach the root fixpoint first so the probe starts clean; a
        // conflict here means the formula itself is UNSAT.
        if self.propagate().is_some() {
            self.ok = false;
            self.log_proof(|| ProofStep::Empty);
            return None;
        }
        let saved_phases = std::mem::replace(&mut self.save_phases, false);
        let mark = self.trail.len();
        self.new_decision_level();
        let mut enqueued = 0usize;
        let mut conflict = false;
        for &l in lits {
            match self.value(l) {
                LBool::True => {}
                LBool::False => {
                    conflict = true;
                    break;
                }
                LBool::Undef => {
                    self.unchecked_enqueue(l, None);
                    enqueued += 1;
                }
            }
        }
        let implied = if conflict || self.propagate().is_some() {
            None
        } else {
            Some(self.trail.len() - mark - enqueued)
        };
        self.cancel_until(0);
        self.save_phases = saved_phases;
        implied
    }

    /// Starts recording a clausal (DRAT-style) proof. Must be called
    /// before any clause is added for the log to be complete.
    pub fn enable_proof(&mut self) {
        if self.proof.is_none() {
            self.proof = Some(Proof::new());
        }
    }

    /// Takes the recorded proof (ending proof recording).
    pub fn take_proof(&mut self) -> Option<Proof> {
        self.proof.take()
    }

    /// When enabled (and a proof is being recorded), every UNSAT answer
    /// under assumptions appends the negated [`Solver::final_conflict`]
    /// as a lemma. The clause is RUP at that point in the log: asserting
    /// the core assumptions and unit-propagating over the clauses logged
    /// so far re-derives the contradiction the solver just found. This is
    /// the bridge a cube-and-conquer driver needs to stitch per-cube
    /// refutations into one checkable proof.
    pub fn set_core_lemmas(&mut self, on: bool) {
        self.core_lemmas = on;
    }

    #[inline]
    fn log_proof(&mut self, step: impl FnOnce() -> ProofStep) {
        if let Some(proof) = &mut self.proof {
            proof.push(step());
        }
    }

    /// Current decision level (0 = root).
    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Truth value of `lit` under the current partial assignment.
    #[inline]
    pub fn value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].apply_sign(lit.is_negative())
    }

    /// Truth value of `lit` in the most recent satisfying model.
    ///
    /// Returns `None` before the first [`SolveResult::Sat`] or for variables
    /// created after it.
    pub fn model_value(&self, lit: Lit) -> Option<bool> {
        self.model
            .get(lit.var().index())
            .and_then(|v| v.apply_sign(lit.is_negative()).to_option())
    }

    /// After an UNSAT result with assumptions: the subset of assumption
    /// literals that together are contradictory (each entry is one of the
    /// assumptions passed to [`Solver::solve`]).
    pub fn final_conflict(&self) -> &[Lit] {
        &self.final_conflict
    }

    /// Adds a clause. Returns `false` if the solver is already in a
    /// permanently unsatisfiable state (then the clause is ignored).
    ///
    /// Tautologies are silently dropped; duplicate and root-false literals
    /// are removed. May trigger unit propagation at the root level.
    ///
    /// # Panics
    ///
    /// Panics if called between `solve` invocations while the solver is not
    /// at decision level 0 (never happens through the public API, since
    /// `solve` always backtracks fully).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        let mut v = std::mem::take(&mut self.add_buf);
        v.clear();
        v.extend(lits);
        let result = self.add_clause_from_buf(&mut v);
        self.add_buf = v;
        result
    }

    /// Adds a batch of clauses packed end-to-end in `flat`; `ends[i]` is
    /// the exclusive end offset of clause `i`. Semantically identical to
    /// one [`Solver::add_clause`] call per clause, but with zero
    /// per-clause allocation — encoders stage literals into one flat
    /// buffer and hand the whole batch over. Stops early and returns
    /// `false` once the solver is permanently unsatisfiable.
    pub fn add_clause_batch(&mut self, flat: &[Lit], ends: &[u32]) -> bool {
        let mut v = std::mem::take(&mut self.add_buf);
        let mut start = 0usize;
        for &end in ends {
            let end = end as usize;
            debug_assert!(start <= end && end <= flat.len(), "malformed batch offsets");
            v.clear();
            v.extend_from_slice(&flat[start..end]);
            self.add_clause_from_buf(&mut v);
            start = end;
            if !self.ok {
                break;
            }
        }
        self.add_buf = v;
        self.ok
    }

    /// Shared implementation behind [`Solver::add_clause`] and
    /// [`Solver::add_clause_batch`]: `v` holds the raw literals and is
    /// used as scratch. Proof clones happen only when logging is on.
    fn add_clause_from_buf(&mut self, v: &mut Vec<Lit>) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses must be added at the root level"
        );
        if !self.ok {
            return false;
        }
        v.sort_unstable();
        v.dedup();
        self.log_proof(|| ProofStep::Original(v.clone()));
        let mut w = std::mem::take(&mut self.add_buf2);
        w.clear();
        let mut prev: Option<Lit> = None;
        let mut dropped = false;
        for &l in v.iter() {
            debug_assert!(
                l.var().index() < self.num_vars(),
                "literal over unknown variable"
            );
            if prev == Some(!l) || self.value(l) == LBool::True {
                // Tautology or already satisfied at root.
                self.add_buf2 = w;
                return true;
            }
            if self.value(l) != LBool::False {
                w.push(l);
            }
            prev = Some(l);
        }
        if w.len() != v.len() {
            dropped = true;
        }
        if dropped {
            self.log_proof(|| ProofStep::Lemma(w.clone()));
        }
        let result = match w.len() {
            0 => {
                self.ok = false;
                self.log_proof(|| ProofStep::Empty);
                false
            }
            1 => {
                self.unchecked_enqueue(w[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    self.log_proof(|| ProofStep::Empty);
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&w, false);
                self.clauses.push(cref);
                self.attach(cref);
                true
            }
        };
        self.add_buf2 = w;
        result
    }

    fn attach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        if lits.len() == 2 && self.features.binary_watches {
            self.bin_watches
                .push((!l0).code(), BinWatcher { cref, implied: l1 });
            self.bin_watches
                .push((!l1).code(), BinWatcher { cref, implied: l0 });
        } else if lits.len() == 3 && self.features.ternary_watches {
            let l2 = lits[2];
            self.tern_watches.push(
                (!l0).code(),
                TernWatcher {
                    cref,
                    others: [l1, l2],
                },
            );
            self.tern_watches.push(
                (!l1).code(),
                TernWatcher {
                    cref,
                    others: [l0, l2],
                },
            );
            self.tern_watches.push(
                (!l2).code(),
                TernWatcher {
                    cref,
                    others: [l0, l1],
                },
            );
        } else {
            self.watches
                .push((!l0).code(), Watcher { cref, blocker: l1 });
            self.watches
                .push((!l1).code(), Watcher { cref, blocker: l0 });
        }
    }

    /// Records that `cref` is about to be deleted: a ternary deletion
    /// leaves stale watchers behind until the next full sweep, so the
    /// ternary scan must re-check clause liveness until then.
    #[inline]
    fn note_delete(&mut self, cref: ClauseRef) {
        if self.db.len(cref) == 3 {
            self.tern_stale = true;
        }
    }

    #[inline]
    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        let level = self.decision_level();
        self.unchecked_enqueue_at(lit, reason, level);
    }

    /// Enqueue with an explicit recorded level. Chronological backtracking
    /// records the asserting literal at its *assertion* level even though
    /// it is pushed into a deeper trail block; the invariant is that a
    /// literal's recorded level never exceeds its block index, and
    /// `cancel_until` relocates such out-of-order literals on undo.
    #[inline]
    fn unchecked_enqueue_at(&mut self, lit: Lit, reason: Option<ClauseRef>, level: u32) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        debug_assert!(level <= self.decision_level());
        let v = lit.var().index();
        self.assigns[v] = LBool::from(lit.is_positive());
        self.vardata[v] = VarData { reason, level };
        if self.save_phases {
            self.phase[v] = lit.is_positive();
        }
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause if any.
    ///
    /// Two passes per trail literal: the dedicated binary lists first
    /// (their watchers never move, and the implied literal is inline, so
    /// no arena access happens on the hot path), then an in-place
    /// two-pointer scan of the regular watch list. The scan may push
    /// watchers onto *other* lists (the new watch `¬lk` is never `p`:
    /// `lk` sits at index ≥ 2 while `¬p` is at index 1, and clause
    /// literals are distinct by construction), so re-borrowing
    /// `watches[p]` by index is safe and the old swap-out/swap-in of the
    /// whole list is gone.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let code = p.code();

            // Binary pass: no arena access at all. Nothing in the loop
            // pushes to any binary watch list (enqueues only write the
            // trail), so the `(start, len)` window snapshot stays valid
            // for the whole scan. Binary clauses are deleted only by
            // `simplify`'s eager scrub and remapped by
            // `garbage_collect`, so no watcher here can be stale. Binary
            // reasons are NOT normalized to put the implied literal
            // first; `analyze` and `locked` accept it at either position.
            let brange = self.bin_watches.range_of(code);
            if !brange.is_empty() {
                // Detach the pool so the scan runs over a local slice
                // (nothing in the loop touches any binary list).
                let pool = self.bin_watches.take_pool();
                let mut bin_conflict = None;
                for w in &pool[brange] {
                    debug_assert!(!self.db.is_deleted(w.cref));
                    match self.value(w.implied) {
                        LBool::True => {}
                        LBool::Undef => {
                            self.stats.binary_props += 1;
                            self.unchecked_enqueue(w.implied, Some(w.cref));
                        }
                        LBool::False => {
                            bin_conflict = Some(w.cref);
                            break;
                        }
                    }
                }
                self.bin_watches.restore_pool(pool);
                if let Some(cref) = bin_conflict {
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
            }

            // Ternary pass: both other literals are inline, so the
            // clause's status is decided from the assignment vector
            // alone. Watchers never migrate (all three literals watch),
            // so the only maintenance is lazily dropping watchers of
            // deleted clauses — ternary *learnts* are fair game for
            // database reduction. Like the binary pass, nothing here
            // pushes to any ternary list, so the window snapshot holds.
            let trange = self.tern_watches.range_of(code);
            if !trange.is_empty() {
                let len = trange.len();
                // Detach the pool: the scan compacts its own window in
                // place and touches no other list, and a local slice
                // keeps the two-pointer loop free of aliasing with the
                // enqueues.
                let mut pool = self.tern_watches.take_pool();
                let tws = &mut pool[trange];
                // Watchers of deleted clauses can linger only between a
                // ternary deletion and the next full sweep; outside that
                // window the scan skips the arena header load entirely.
                let stale = self.tern_stale;
                let mut tern_conflict = None;
                let mut j = 0usize;
                let mut i = 0usize;
                while i < len {
                    let w = tws[i];
                    i += 1;
                    if stale && self.db.is_deleted(w.cref) {
                        continue; // lazily drop watcher of a deleted clause
                    }
                    // Compact only once a deletion opened a gap: the
                    // common all-live scan then never dirties the line.
                    if j + 1 != i {
                        tws[j] = w;
                    }
                    j += 1;
                    let a = self.value(w.others[0]);
                    let b = self.value(w.others[1]);
                    if a == LBool::True || b == LBool::True {
                        continue;
                    }
                    match (a, b) {
                        (LBool::False, LBool::False) => {
                            // Conflict: keep remaining watchers and stop.
                            tern_conflict = Some(w.cref);
                            tws.copy_within(i..len, j);
                            j += len - i;
                            break;
                        }
                        (LBool::False, LBool::Undef) => {
                            self.stats.ternary_props += 1;
                            self.unchecked_enqueue(w.others[1], Some(w.cref));
                        }
                        (LBool::Undef, LBool::False) => {
                            self.stats.ternary_props += 1;
                            self.unchecked_enqueue(w.others[0], Some(w.cref));
                        }
                        _ => {} // both undefined: still open
                    }
                }
                self.tern_watches.restore_pool(pool);
                self.tern_watches.truncate(code, j);
                if let Some(cref) = tern_conflict {
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
            }

            // Long-clause pass, compacting in place. The scan may push
            // watchers onto *other* lists; the slab guarantees this
            // list's `(start, len)` window never moves on such pushes,
            // and absolute pool indices stay valid across the pool's
            // growth, so the snapshot below holds for the whole scan.
            let false_lit = !p;
            let wrange = self.watches.range_of(code);
            let (start, len) = (wrange.start, wrange.len());
            let mut i = 0usize;
            let mut j = 0usize;
            'watchers: while i < len {
                let w = self.watches.at_raw(start + i);
                i += 1;
                // Fast path: blocker already true.
                if self.value(w.blocker) == LBool::True {
                    self.watches.set_raw(start + j, w);
                    j += 1;
                    continue;
                }
                if self.db.is_deleted(w.cref) {
                    continue; // lazily drop watcher of a deleted clause
                }
                // Make sure the false literal is at position 1.
                {
                    let lits = self.db.lits_mut(w.cref);
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.db.lits(w.cref)[0];
                let w_new = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if first != w.blocker && self.value(first) == LBool::True {
                    self.watches.set_raw(start + j, w_new);
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let clen = self.db.len(w.cref);
                for k in 2..clen {
                    let lk = self.db.lits(w.cref)[k];
                    if self.value(lk) != LBool::False {
                        self.db.lits_mut(w.cref).swap(1, k);
                        debug_assert_ne!((!lk).code(), code);
                        self.watches.push((!lk).code(), w_new);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                self.watches.set_raw(start + j, w_new);
                j += 1;
                if self.value(first) == LBool::False {
                    // Conflict: keep remaining watchers and stop.
                    self.watches
                        .copy_within_raw(start + i..start + len, start + j);
                    j += len - i;
                    self.watches.truncate(code, j);
                    self.qhead = self.trail.len();
                    return Some(w.cref);
                }
                self.unchecked_enqueue(first, Some(w.cref));
            }
            self.watches.truncate(code, j);
        }
        None
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        if self.features.chrono_backtrack {
            // Trail repair: chronological backtracking records asserting
            // literals below their block, so blocks above `level` may hold
            // literals that logically belong at or below it. Keep those
            // (relocated, in order, to the end of block `level`) and undo
            // the rest. Kept literals are never decisions — a decision's
            // recorded level equals its block index — so `trail_lim`
            // stays consistent.
            debug_assert!(self.cancel_buf.is_empty());
            for idx in lim..self.trail.len() {
                let lit = self.trail[idx];
                let v = lit.var();
                if self.level(v) <= level {
                    self.cancel_buf.push(lit);
                } else {
                    self.assigns[v.index()] = LBool::Undef;
                    self.order.insert(v, &self.activity);
                }
            }
            self.trail.truncate(lim);
            self.trail.append(&mut self.cancel_buf);
        } else {
            for idx in (lim..self.trail.len()).rev() {
                let lit = self.trail[idx];
                let v = lit.var();
                self.assigns[v.index()] = LBool::Undef;
                self.order.insert(v, &self.activity);
            }
            self.trail.truncate(lim);
        }
        self.trail_lim.truncate(level as usize);
        // Kept literals re-propagate: their implications above `level`
        // were just undone.
        self.qhead = lim;
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let a = self.db.activity(cref) + self.cla_inc as f32;
        if a > 1e20 {
            for &c in &self.learnts {
                let old = self.db.activity(c);
                self.db.set_activity(c, old * 1e-20);
            }
            self.cla_inc *= 1e-20;
            self.db.set_activity(cref, a * 1e-20);
        } else {
            self.db.set_activity(cref, a);
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.var_decay;
        self.cla_inc /= CLA_DECAY;
    }

    #[inline]
    fn level(&self, v: Var) -> u32 {
        self.vardata[v.index()].level
    }

    #[inline]
    fn reason(&self, v: Var) -> Option<ClauseRef> {
        self.vardata[v.index()].reason
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 reserved for the asserting literal
        let mut path_c = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            if self.db.is_learnt(confl) {
                self.bump_clause(confl);
                self.db.set_used(confl, true);
                // Refresh LBD (keep minimum) and promote the tier when the
                // clause proves better than first measured.
                let lbd = self.clause_lbd(confl);
                if lbd < self.db.lbd(confl) {
                    self.db.set_lbd(confl, lbd);
                    let promoted = Tier::for_lbd(lbd).max(self.db.tier(confl));
                    self.db.set_tier(confl, promoted);
                }
            }
            // When resolving the reason of `p`, skip `p` itself. Long
            // reasons keep the implied literal at position 0, but binary
            // reasons may carry it at either position (the binary kernel
            // never reorders arena literals), so match by value.
            for k in 0..self.db.len(confl) {
                let q = self.db.lits(confl)[k];
                if p == Some(q) {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level(v) > 0 {
                    self.seen[v.index()] = true;
                    self.analyze_toclear.push(v);
                    self.bump_var(v);
                    if self.level(v) >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail. Under chronological
            // backtracking the current block may also hold relocated
            // literals recorded below the conflict level; those are
            // reason-side (`seen` but not on the path) and are skipped by
            // the level check.
            loop {
                index -= 1;
                let v = self.trail[index].var();
                if self.seen[v.index()] && self.level(v) >= self.decision_level() {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            path_c -= 1;
            if path_c == 0 {
                break;
            }
            confl = self
                .reason(pl.var())
                .expect("non-decision literal on conflict path must have a reason");
            self.seen[pl.var().index()] = false;
            // pl.var stays in analyze_toclear; clearing the flag here keeps
            // the invariant that `seen` marks exactly the unresolved nodes.
        }
        learnt[0] = !p.expect("conflict path is nonempty");

        // Recursive minimization of the reason side.
        let before = learnt.len();
        let mut abstract_levels = 0u32;
        for &l in &learnt[1..] {
            abstract_levels |= 1 << (self.level(l.var()) & 31);
        }
        let mut kept = vec![learnt[0]];
        for idx in 1..learnt.len() {
            let l = learnt[idx];
            if self.reason(l.var()).is_none() || !self.lit_redundant(l, abstract_levels) {
                kept.push(l);
            }
        }
        self.stats.minimized_lits += (before - kept.len()) as u64;
        let mut learnt = kept;

        // Compute backtrack level and place the second-highest literal at 1.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level(learnt[i].var()) > self.level(learnt[max_i].var()) {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level(learnt[1].var())
        };
        for v in self.analyze_toclear.drain(..) {
            self.seen[v.index()] = false;
        }
        (learnt, bt_level)
    }

    /// Checks whether `l` is implied by the rest of the learned clause
    /// (MiniSat's `litRedundant`), using an iterative DFS over reasons.
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u32) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push(l);
        let top = self.analyze_toclear.len();
        while let Some(q) = self.analyze_stack.pop() {
            let cref = self
                .reason(q.var())
                .expect("stack only holds literals with reasons");
            // Start at 0: `q` itself (wherever the binary kernel left it)
            // is skipped by its `seen` mark.
            for k in 0..self.db.len(cref) {
                let pl = self.db.lits(cref)[k];
                let v = pl.var();
                if self.seen[v.index()] || self.level(v) == 0 {
                    continue;
                }
                if self.reason(v).is_some() && (1u32 << (self.level(v) & 31)) & abstract_levels != 0
                {
                    self.seen[v.index()] = true;
                    self.analyze_toclear.push(v);
                    self.analyze_stack.push(pl);
                } else {
                    // Not redundant: undo the marks added by this probe.
                    for vv in self.analyze_toclear.drain(top..) {
                        self.seen[vv.index()] = false;
                    }
                    return false;
                }
            }
        }
        true
    }

    fn clause_lbd(&mut self, cref: ClauseRef) -> u32 {
        // Count distinct decision levels via a small sort-free scheme.
        let mut levels: Vec<u32> = self
            .db
            .lits(cref)
            .iter()
            .map(|l| self.level(l.var()))
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn lits_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level(l.var())).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Analyzes a conflict on an assumption: computes the subset of
    /// assumptions implying `¬p`, stored (as assumption literals) in
    /// `final_conflict`.
    fn analyze_final(&mut self, p: Lit) {
        self.final_conflict.clear();
        self.final_conflict.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for idx in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[idx];
            let v = q.var();
            if !self.seen[v.index()] {
                continue;
            }
            // Chronological unit learnts sit above `trail_lim[0]` with
            // recorded level 0 and no reason; root-implied literals never
            // contribute to the assumption core.
            if self.level(v) == 0 {
                self.seen[v.index()] = false;
                continue;
            }
            match self.reason(v) {
                None => {
                    debug_assert!(self.level(v) > 0);
                    // A decision above the root is an assumed literal; it is
                    // part of the contradictory subset.
                    self.final_conflict.push(q);
                }
                Some(cref) => {
                    // From 0: re-marking `v` itself is undone by the
                    // clear below, and binary reasons may hold the
                    // implied literal at either position.
                    for k in 0..self.db.len(cref) {
                        let l = self.db.lits(cref)[k];
                        if self.level(l.var()) > 0 {
                            self.seen[l.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
        self.final_conflict.sort_unstable();
        self.final_conflict.dedup();
    }

    fn reduce_db(&mut self) {
        self.stats.reduces += 1;
        let learnts_before = self.learnts.len();
        // Pick the deletion candidates. Tiered mode keeps core clauses
        // forever, gives mid-tier clauses one reduce interval to
        // participate in a conflict before demoting them, and only ranks
        // the local pool; legacy mode ranks everything.
        let mut ranked: Vec<ClauseRef> = if self.features.tiered_reduce {
            let mut locals = Vec::new();
            let mut demotions = 0u64;
            for i in 0..self.learnts.len() {
                let c = self.learnts[i];
                if self.db.is_deleted(c) {
                    continue;
                }
                match self.db.tier(c) {
                    Tier::Core => {}
                    Tier::Mid => {
                        if self.db.is_used(c) {
                            self.db.set_used(c, false);
                        } else {
                            self.db.set_tier(c, Tier::Local);
                            demotions += 1;
                            locals.push(c);
                        }
                    }
                    Tier::Local => locals.push(c),
                }
            }
            self.stats.tier_demotions += demotions;
            locals
        } else {
            self.learnts
                .iter()
                .copied()
                .filter(|&c| !self.db.is_deleted(c))
                .collect()
        };
        // Sort candidates: poor (high LBD, low activity) first.
        {
            let db = &self.db;
            ranked.sort_by(|&a, &b| {
                db.lbd(b).cmp(&db.lbd(a)).then(
                    db.activity(a)
                        .partial_cmp(&db.activity(b))
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            });
        }
        let half = ranked.len() / 2;
        ranked.truncate(half);
        let legacy_lbd_guard = !self.features.tiered_reduce;
        for &c in &ranked {
            if self.db.len(c) > 2 && (!legacy_lbd_guard || self.db.lbd(c) > 3) && !self.locked(c) {
                let lits = self.db.lits(c).to_vec();
                self.log_proof(|| ProofStep::Delete(lits));
                self.note_delete(c);
                self.db.delete(c);
            }
        }
        let db = &self.db;
        self.learnts.retain(|&c| !db.is_deleted(c));
        if self.db.wasted_ratio() > 0.3 {
            self.garbage_collect();
        }
        if self.recorder.is_enabled() {
            self.recorder.event(
                "sat.reduce_db",
                &[
                    ("learnts_before", learnts_before.into()),
                    ("learnts_after", self.learnts.len().into()),
                    ("conflicts", self.stats.conflicts.into()),
                ],
            );
        }
    }

    fn locked(&self, cref: ClauseRef) -> bool {
        // Long clauses keep the implied literal at position 0; binary
        // reasons may have it at either position.
        let lits = self.db.lits(cref);
        let locks = |l: Lit| self.value(l) == LBool::True && self.reason(l.var()) == Some(cref);
        // Binary and ternary reasons may have the implied literal at any
        // position (their watchers never reorder arena literals).
        locks(lits[0]) || (lits.len() <= 3 && lits[1..].iter().any(|&l| locks(l)))
    }

    fn garbage_collect(&mut self) {
        let remap = self.db.compact();
        self.watches.sweep(|w| match remap.get(&w.cref) {
            Some(&n) => {
                w.cref = n;
                true
            }
            None => false,
        });
        self.bin_watches.sweep(|w| match remap.get(&w.cref) {
            Some(&n) => {
                w.cref = n;
                true
            }
            None => false,
        });
        self.tern_watches.sweep(|w| match remap.get(&w.cref) {
            Some(&n) => {
                w.cref = n;
                true
            }
            None => false,
        });
        self.tern_stale = false;
        self.pending_strengthen.retain_mut(|p| {
            match (remap.get(&p.target), remap.get(&p.support)) {
                (Some(&t), Some(&s)) => {
                    p.target = t;
                    p.support = s;
                    true
                }
                _ => false,
            }
        });
        for vd in &mut self.vardata {
            if let Some(r) = vd.reason {
                vd.reason = remap.get(&r).copied();
            }
        }
        let translate = |list: &mut Vec<ClauseRef>| {
            list.retain_mut(|c| match remap.get(c) {
                Some(&n) => {
                    *c = n;
                    true
                }
                None => false,
            });
        };
        translate(&mut self.clauses);
        translate(&mut self.learnts);
    }

    /// Root-level database simplification.
    ///
    /// At decision level 0 this removes clauses satisfied by root-fixed
    /// literals, strips root-falsified literals from the remaining
    /// clauses (re-allocating the shortened clause and retiring the
    /// original), and compacts watch lists so retired clauses no longer
    /// occupy propagation paths. Runs automatically between restarts; the
    /// incremental window machinery calls it explicitly after permanently
    /// falsifying superseded activation literals, so the retired
    /// constraints are physically reclaimed rather than just skipped.
    ///
    /// Safe even for level-0 reasons: conflict analysis never traverses
    /// reasons of root-level literals.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called above decision level 0. Through
    /// the public API the solver is always at the root between solves.
    pub fn simplify(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok || self.trail.len() == self.simp_trail_len {
            return; // nothing newly fixed at the root since last time
        }
        debug_assert_eq!(self.qhead, self.trail.len(), "propagation incomplete");
        self.simp_trail_len = self.trail.len();
        self.stats.simplifies += 1;
        let mut touched = false;
        // Note on proofs: satisfied-clause deletions are NOT logged. They
        // remove clauses satisfied by root-propagated literals, and the
        // checker — which only sees clauses, not the solver's trail — may
        // still need them to re-derive those literals during later RUP
        // checks. Keeping them in the checker's database is always sound.
        // Strengthening IS logged (lemma + delete): the shortened clause
        // subsumes the original, so later RUP checks only get easier.
        for which in 0..2 {
            let list = std::mem::take(if which == 0 {
                &mut self.clauses
            } else {
                &mut self.learnts
            });
            let mut keep = Vec::with_capacity(list.len());
            'clauses: for c in list {
                if self.db.is_deleted(c) {
                    touched = true;
                    continue;
                }
                let mut falsified = 0usize;
                for &l in self.db.lits(c) {
                    match self.value(l) {
                        LBool::True => {
                            self.note_delete(c);
                            self.db.delete(c);
                            self.stats.simplify_removed += 1;
                            touched = true;
                            continue 'clauses;
                        }
                        LBool::False => falsified += 1,
                        LBool::Undef => {}
                    }
                }
                if falsified == 0 {
                    keep.push(c);
                    continue;
                }
                // Strip the root-falsified literals. The arena stores the
                // length in the clause header, so shortening means
                // allocating the shrunk clause and deleting the original.
                let shrunk: Vec<Lit> = self
                    .db
                    .lits(c)
                    .iter()
                    .copied()
                    .filter(|&l| self.value(l) != LBool::False)
                    .collect();
                // With root propagation complete, a non-satisfied clause
                // keeps at least two unfalsified literals (one unfalsified
                // literal would have been propagated, satisfying it).
                debug_assert!(shrunk.len() >= 2, "unit survived root propagation");
                let shrunk_for_proof = shrunk.clone();
                self.log_proof(|| ProofStep::Lemma(shrunk_for_proof));
                let original = self.db.lits(c).to_vec();
                self.log_proof(|| ProofStep::Delete(original));
                let learnt = self.db.is_learnt(c);
                let meta = learnt.then(|| (self.db.lbd(c), self.db.activity(c)));
                let new_cref = self.db.alloc(&shrunk, learnt);
                if let Some((old_lbd, old_act)) = meta {
                    self.db.set_lbd(new_cref, old_lbd.min(shrunk.len() as u32));
                    self.db.set_activity(new_cref, old_act);
                }
                self.note_delete(c);
                self.db.delete(c);
                self.attach(new_cref);
                keep.push(new_cref);
                self.stats.simplify_strengthened += 1;
                touched = true;
            }
            *(if which == 0 {
                &mut self.clauses
            } else {
                &mut self.learnts
            }) = keep;
        }
        if touched {
            // Scrub watchers of retired clauses eagerly instead of letting
            // propagation drop them one miss at a time.
            let db = &self.db;
            self.watches.sweep(|w| !db.is_deleted(w.cref));
            self.bin_watches.sweep(|w| !db.is_deleted(w.cref));
            self.tern_watches.sweep(|w| !db.is_deleted(w.cref));
            self.tern_stale = false;
        }
        if self.db.wasted_ratio() > 0.3 {
            self.garbage_collect();
        }
    }

    /// Replaces the clause at `clauses`/`learnts` slot `idx` (selected by
    /// `which`: 0 = irredundant, 1 = learnt) with `new`, a strict subset of
    /// its literals derived by vivification or self-subsumption.
    ///
    /// Proof order matters: the lemma is logged *before* the delete, so the
    /// checker verifies the shortened clause by RUP against a database that
    /// still contains the original. Because `new ⊆ old`, the new clause
    /// subsumes the old one and deleting the original is safe under any
    /// later incremental clause additions.
    fn replace_clause(&mut self, which: usize, idx: usize, new: &[Lit]) {
        debug_assert_eq!(self.decision_level(), 0);
        let c = if which == 0 {
            self.clauses[idx]
        } else {
            self.learnts[idx]
        };
        let new_for_proof = new.to_vec();
        self.log_proof(|| ProofStep::Lemma(new_for_proof));
        let old = self.db.lits(c).to_vec();
        self.log_proof(|| ProofStep::Delete(old));
        match new.len() {
            0 => {
                // All literals refuted at the root: the formula is UNSAT.
                self.note_delete(c);
                self.db.delete(c);
                self.ok = false;
                self.log_proof(|| ProofStep::Empty);
            }
            1 => {
                // The slot keeps the retired cref; list pruning is lazy.
                self.note_delete(c);
                self.db.delete(c);
                match self.value(new[0]) {
                    LBool::True => {}
                    LBool::False => {
                        self.ok = false;
                        self.log_proof(|| ProofStep::Empty);
                    }
                    LBool::Undef => {
                        self.unchecked_enqueue(new[0], None);
                        if self.propagate().is_some() {
                            self.ok = false;
                            self.log_proof(|| ProofStep::Empty);
                        }
                    }
                }
            }
            _ => {
                let learnt = self.db.is_learnt(c);
                let new_cref = self.db.alloc(new, learnt);
                if learnt {
                    let lbd = self.db.lbd(c).min(new.len() as u32);
                    self.db.set_lbd(new_cref, lbd);
                    self.db.set_activity(new_cref, self.db.activity(c));
                    self.db
                        .set_tier(new_cref, self.db.tier(c).max(Tier::for_lbd(lbd)));
                }
                self.note_delete(c);
                self.db.delete(c);
                self.attach(new_cref);
                if which == 0 {
                    self.clauses[idx] = new_cref;
                } else {
                    self.learnts[idx] = new_cref;
                }
            }
        }
    }

    /// One vivification pass over the clause database, budgeted in unit
    /// propagations. Candidates are irredundant clauses and high-value
    /// (core/mid tier) learnts of length ≥ 3 with no frozen variables;
    /// cursors rotate so successive passes cover the whole database.
    ///
    /// Vivifying clause `C`: at level 0, assume the negation of each
    /// literal in turn and propagate. Three shortening outcomes, all RUP
    /// with `C` still in the database: a conflict (the assumed prefix is a
    /// clause), a literal propagated true (prefix ∨ that literal), a
    /// literal propagated false (drop it). Saved phases are protected from
    /// the probe assignments.
    fn vivify_round(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        self.simplify();
        if !self.ok {
            return;
        }
        let budget = self.stats.propagations + VIVIFY_PROP_BUDGET;
        self.save_phases = false;
        for which in 0..2 {
            let len = if which == 0 {
                self.clauses.len()
            } else {
                self.learnts.len()
            };
            if len == 0 {
                continue;
            }
            let mut idx = self.viv_cursor[which] % len;
            for _ in 0..len {
                if !self.ok || self.stats.propagations >= budget {
                    break;
                }
                self.vivify_clause(which, idx);
                idx = (idx + 1) % len;
            }
            self.viv_cursor[which] = idx;
        }
        self.save_phases = true;
    }

    /// Vivifies one clause slot, if eligible (see [`Solver::vivify_round`]).
    fn vivify_clause(&mut self, which: usize, idx: usize) {
        let c = if which == 0 {
            self.clauses[idx]
        } else {
            self.learnts[idx]
        };
        if self.db.is_deleted(c) || self.db.len(c) < 3 {
            return;
        }
        if which == 1 && self.db.tier(c) == Tier::Local {
            return; // only distill learnts worth keeping
        }
        let lits: Vec<Lit> = self.db.lits(c).to_vec();
        if lits.iter().any(|&l| self.is_inprocess_frozen(l.var())) {
            return;
        }
        if lits.iter().any(|&l| self.value(l) == LBool::True) {
            return; // root-satisfied (possible mid-round); simplify retires it
        }
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.value(l) {
                // Implied by the negated prefix: clause = prefix ∨ l.
                LBool::True => {
                    kept.push(l);
                    break;
                }
                // Refuted under the negated prefix: l is redundant.
                LBool::False => {}
                LBool::Undef => {
                    kept.push(l);
                    self.new_decision_level();
                    self.unchecked_enqueue(!l, None);
                    if self.propagate().is_some() {
                        // F ∧ ¬prefix is contradictory: prefix is a clause.
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        if kept.len() < lits.len() {
            self.stats.vivified += 1;
            self.replace_clause(which, idx, &kept);
        }
    }

    /// During conflict analysis: if the just-learned clause resolves with
    /// the conflicting clause to a strict subset of it (`learnt[1..] ⊆
    /// confl` and `¬learnt[0] ∈ confl`), queue `confl \ {¬learnt[0]}` for
    /// application at the next level-0 boundary — applying mid-search
    /// would require re-watching an all-false clause. The support cref is
    /// remembered so the rewrite is only applied (and proof-logged) while
    /// both clauses are still alive, keeping the lemma RUP for the checker.
    fn maybe_queue_strengthen(&mut self, confl: ClauseRef, learnt: &[Lit], support: ClauseRef) {
        if learnt.len() < 2
            || self.pending_strengthen.len() >= MAX_PENDING_STRENGTHEN
            || self.db.is_deleted(confl)
            || self.db.len(confl) <= learnt.len()
        {
            return;
        }
        let remove = !learnt[0];
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.lit_stamp.fill(0);
            self.stamp = 1;
        }
        for &l in &learnt[1..] {
            self.lit_stamp[l.code()] = self.stamp;
        }
        let mut hits = 0usize;
        let mut has_remove = false;
        for k in 0..self.db.len(confl) {
            let q = self.db.lits(confl)[k];
            if self.is_inprocess_frozen(q.var()) {
                return;
            }
            if q == remove {
                has_remove = true;
            } else if self.lit_stamp[q.code()] == self.stamp {
                hits += 1;
            }
        }
        if has_remove && hits == learnt.len() - 1 {
            self.pending_strengthen.push(PendingStrengthen {
                target: confl,
                remove,
                support,
            });
        }
    }

    /// Applies queued self-subsumption rewrites at decision level 0.
    fn apply_pending_strengthenings(&mut self) {
        if self.pending_strengthen.is_empty() {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let pending = std::mem::take(&mut self.pending_strengthen);
        for p in pending {
            if !self.ok {
                break;
            }
            // Both clauses must still be alive: the target is what we
            // rewrite, and the support is what makes the shortened clause
            // RUP-checkable (the checker's database tracks ours).
            if self.db.is_deleted(p.target) || self.db.is_deleted(p.support) {
                continue;
            }
            let lits = self.db.lits(p.target).to_vec();
            if !lits.contains(&p.remove) || lits.iter().any(|&l| self.value(l) == LBool::True) {
                continue; // superseded by another rewrite or root-satisfied
            }
            let kept: Vec<Lit> = lits
                .iter()
                .copied()
                .filter(|&l| l != p.remove && self.value(l) != LBool::False)
                .collect();
            let which = usize::from(self.db.is_learnt(p.target));
            let list = if which == 0 {
                &self.clauses
            } else {
                &self.learnts
            };
            let Some(idx) = list.iter().position(|&c| c == p.target) else {
                continue;
            };
            self.replace_clause(which, idx, &kept);
            self.stats.strengthened += 1;
        }
    }

    /// Rephases all saved phases from the best (longest) trail seen, then
    /// resets the tracker so a new best can form. When target phases are
    /// set (the synthesis incumbent), alternate passes copy the targets
    /// instead, steering the search back toward the best layout found.
    fn rephase(&mut self) {
        let use_target = self.features.target_phase
            && self.rephase_flip
            && self.target_phase.iter().any(|t| *t != LBool::Undef);
        self.rephase_flip = !self.rephase_flip;
        if use_target {
            self.stats.rephases += 1;
            self.stats.target_rephases += 1;
            let n = self.target_phase.len().min(self.phase.len());
            for v in 0..n {
                if let Some(b) = self.target_phase[v].to_option() {
                    self.phase[v] = b;
                }
            }
            self.best_trail_len = 0;
            return;
        }
        if self.best_phase.is_empty() {
            return; // no conflict recorded a best trail yet
        }
        self.stats.rephases += 1;
        let n = self.best_phase.len().min(self.phase.len());
        self.phase[..n].copy_from_slice(&self.best_phase[..n]);
        self.best_trail_len = 0;
    }

    /// Level-0 inprocessing dispatcher, called at restart boundaries.
    fn maybe_inprocess(&mut self) {
        if !self.ok {
            return;
        }
        if self.features.otf_strengthen {
            self.apply_pending_strengthenings();
        }
        if self.ok && self.features.vivify && self.stats.conflicts >= self.next_vivify {
            self.vivify_round();
            self.next_vivify = self.stats.conflicts + self.features.vivify_interval;
        }
        if self.features.rephase && self.stats.conflicts >= self.next_rephase {
            self.rephase();
            self.next_rephase = self.stats.conflicts + self.features.rephase_interval;
        }
    }

    fn luby(mut x: u64) -> u64 {
        // Luby sequence: 1,1,2,1,1,2,4,...
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    fn out_of_budget(&self) -> bool {
        if let Some(limit) = self.conflict_budget {
            if self.stats.conflicts >= limit {
                return true;
            }
        }
        if let Some(stop) = &self.stop {
            if stop.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if self.stats.conflicts.is_multiple_of(256) && Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // Randomized diversification: occasionally branch on a random
        // unassigned variable instead of the VSIDS maximum. The variable
        // stays in the order heap; the pop loop below skips assigned
        // entries anyway.
        if self.rng_state != 0 && !self.assigns.is_empty() && self.next_rand().is_multiple_of(64) {
            let v = Var((self.next_rand() % self.assigns.len() as u64) as u32);
            if self.assigns[v.index()] == LBool::Undef {
                return Some(Lit::new(v, !self.branch_phase(v)));
            }
        }
        loop {
            let v = self.order.pop(&self.activity)?;
            if self.assigns[v.index()] == LBool::Undef {
                return Some(Lit::new(v, !self.branch_phase(v)));
            }
        }
    }

    /// Polarity for a fresh decision: the target phase when one is set
    /// (and the feature is on), otherwise the saved phase.
    #[inline]
    fn branch_phase(&self, v: Var) -> bool {
        if self.features.target_phase {
            if let Some(&t) = self.target_phase.get(v.index()) {
                if let Some(b) = t.to_option() {
                    return b;
                }
            }
        }
        self.phase[v.index()]
    }

    /// Solves under the given assumptions.
    ///
    /// Returns [`SolveResult::Sat`] with a model, [`SolveResult::Unsat`]
    /// with a final conflict over the assumptions, or
    /// [`SolveResult::Unknown`] if a budget expired. The solver is left at
    /// the root level and can be reused incrementally.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            self.final_conflict.clear();
            return SolveResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        self.seen.resize(self.num_vars(), false);
        self.lit_stamp.resize(2 * self.num_vars(), 0);
        self.model.clear();
        self.final_conflict.clear();
        // Assumption variables are off-limits to inprocessing for the
        // whole call: rewriting a clause based on what an assumption
        // propagates would bake a per-call hypothesis into the database.
        // (Level-0 inprocessing never sees assumption values — they are
        // undone at every restart — but the freeze also keeps activation
        // literals pinned in their guard clauses.)
        self.assumption_frozen.clear();
        self.assumption_frozen.resize(self.num_vars(), false);
        for a in assumptions {
            self.assumption_frozen[a.var().index()] = true;
        }
        // A cooperative stop may have been raised between incremental
        // solves (e.g. by a portfolio winner); honor it before searching so
        // cancellation works even for solves that would finish conflict-free.
        if let Some(stop) = &self.stop {
            if stop.load(Ordering::Relaxed) {
                return SolveResult::Unknown;
            }
        }

        // Pick up clauses peers derived since the last solve; the solver
        // is at the root here, so imports are safe.
        self.drain_imports();
        if !self.ok {
            self.final_conflict.clear();
            return SolveResult::Unsat;
        }

        let stats_before = self.stats;
        let mut curr_restarts = 0u64;
        let result = loop {
            let budget = self.restart_base * Self::luby(curr_restarts);
            match self.search(budget, assumptions) {
                Some(r) => break r,
                None => {
                    curr_restarts += 1;
                    self.stats.restarts += 1;
                    // Restart boundary: back at decision level 0, the
                    // canonical safe point to drain the import queue and
                    // run inprocessing.
                    self.drain_imports();
                    self.maybe_inprocess();
                    if !self.ok {
                        self.final_conflict.clear();
                        break SolveResult::Unsat;
                    }
                    if self.recorder.is_enabled() {
                        // Timestamped conflict totals let a trace consumer
                        // derive the conflict rate between restarts.
                        self.recorder.event(
                            "sat.restart",
                            &[
                                ("restart", curr_restarts.into()),
                                (
                                    "conflicts",
                                    (self.stats.conflicts - stats_before.conflicts).into(),
                                ),
                                ("learnts", self.learnts.len().into()),
                            ],
                        );
                    }
                    if self.out_of_budget() {
                        break SolveResult::Unknown;
                    }
                }
            }
        };
        // (A root conflict discovered while settling is recorded in
        // `ok`; the verdict for *this* call is already decided.)
        self.settle_root();
        // Assumption-core lemma: at the moment `analyze_final` ran, the
        // core assumptions propagated to a contradiction using reason
        // clauses that are all in the proof log, so the negated core is
        // RUP here. (An empty core means global UNSAT; `Empty` is
        // already logged on that path.)
        if self.core_lemmas && result == SolveResult::Unsat && !self.final_conflict.is_empty() {
            let core = self.final_conflict.clone();
            self.log_proof(|| ProofStep::Lemma(core.iter().map(|&l| !l).collect()));
        }
        if self.recorder.is_enabled() {
            let d = self.stats;
            self.recorder.add("sat.solves", 1);
            self.recorder
                .add("sat.conflicts", d.conflicts - stats_before.conflicts);
            self.recorder
                .add("sat.decisions", d.decisions - stats_before.decisions);
            self.recorder.add(
                "sat.propagations",
                d.propagations - stats_before.propagations,
            );
            self.recorder
                .add("sat.restarts", d.restarts - stats_before.restarts);
            self.recorder
                .add("sat.reduces", d.reduces - stats_before.reduces);
            self.recorder.add(
                "sat.minimized_lits",
                d.minimized_lits - stats_before.minimized_lits,
            );
            self.recorder
                .add("sat.exported", d.exported - stats_before.exported);
            self.recorder
                .add("sat.imported", d.imported - stats_before.imported);
            self.recorder.add(
                "sat.import_dropped",
                d.import_dropped - stats_before.import_dropped,
            );
            self.recorder
                .add("sat.simplifies", d.simplifies - stats_before.simplifies);
            self.recorder.add(
                "sat.simplify_removed",
                d.simplify_removed - stats_before.simplify_removed,
            );
            self.recorder.add(
                "sat.simplify_strengthened",
                d.simplify_strengthened - stats_before.simplify_strengthened,
            );
            self.recorder
                .add("sat.vivified", d.vivified - stats_before.vivified);
            self.recorder.add(
                "sat.strengthened",
                d.strengthened - stats_before.strengthened,
            );
            self.recorder.add(
                "sat.binary_props",
                d.binary_props - stats_before.binary_props,
            );
            self.recorder.add(
                "sat.tier_demotions",
                d.tier_demotions - stats_before.tier_demotions,
            );
            self.recorder
                .add("sat.rephases", d.rephases - stats_before.rephases);
            self.recorder.add(
                "sat.chrono_backtracks",
                d.chrono_backtracks - stats_before.chrono_backtracks,
            );
            self.recorder.add(
                "sat.blocked_restarts",
                d.blocked_restarts - stats_before.blocked_restarts,
            );
            self.recorder.add(
                "sat.target_rephases",
                d.target_rephases - stats_before.target_rephases,
            );
        }
        result
    }

    /// Folds one learnt clause's LBD into the fast/slow moving averages
    /// (Glucose-style search-quality signals; the flight recorder samples
    /// both).
    #[inline]
    fn update_lbd_emas(&mut self, lbd: u32) {
        let lbd = f64::from(lbd);
        self.lbd_ema_fast += (lbd - self.lbd_ema_fast) / 32.0;
        self.lbd_ema_slow += (lbd - self.lbd_ema_slow) / 4096.0;
        self.lbd_sum += lbd;
    }

    /// Restart decision for the current search pass. Legacy mode waits out
    /// the Luby budget. Glucose mode additionally restarts as soon as the
    /// fast LBD EMA rises `GLUCOSE_K` above the long-run LBD average
    /// (recent learning is unusually poor), unless the trail is much
    /// deeper than its long-run conflict-time average — then the search
    /// looks close to a model and the restart is postponed for another
    /// `GLUCOSE_MIN_CONFLICTS` conflicts.
    fn restart_due(&mut self, conflicts_here: u64, conflict_limit: u64) -> bool {
        let budget_due = conflicts_here >= conflict_limit;
        if !self.features.glucose_restarts {
            return budget_due;
        }
        if self.stats.conflicts < self.restart_hold {
            return false;
        }
        let warm = self.avg_conflicts >= GLUCOSE_MIN_CONFLICTS;
        let lbd_due = conflicts_here >= GLUCOSE_MIN_CONFLICTS
            && warm
            && self.lbd_ema_fast > GLUCOSE_K * (self.lbd_sum / self.avg_conflicts as f64);
        if !(budget_due || lbd_due) {
            return false;
        }
        if self.features.restart_postpone
            && warm
            && (self.trail.len() as f64)
                > RESTART_BLOCK_R * (self.trail_depth_sum / self.avg_conflicts as f64)
        {
            self.stats.blocked_restarts += 1;
            self.restart_hold = self.stats.conflicts + GLUCOSE_MIN_CONFLICTS;
            return false;
        }
        // Re-arm the trigger: the fast EMA restarts from the long-run
        // average, the Glucose analogue of clearing the bounded queue.
        if self.avg_conflicts > 0 {
            self.lbd_ema_fast = self.lbd_sum / self.avg_conflicts as f64;
        }
        true
    }

    /// Backtracks to the root and restores the propagation fixpoint
    /// there. Chronological trail repair relocates root-recorded literals
    /// and rewinds `qhead`, so their implications must be recomputed
    /// before `simplify` or the next search pass runs. Returns `false`
    /// when root propagation conflicts: the formula is globally UNSAT.
    fn settle_root(&mut self) -> bool {
        self.cancel_until(0);
        if self.qhead < self.trail.len() && self.propagate().is_some() {
            self.ok = false;
            self.final_conflict.clear();
            self.log_proof(|| ProofStep::Empty);
            return false;
        }
        true
    }

    /// Records one flight sample of the post-backjump search state. Only
    /// called when [`Probe::sample_due`] fired, so the learnt-tier scan
    /// stays off the per-conflict path.
    fn emit_flight_sample(&self) {
        let (mut core, mut mid, mut local) = (0u64, 0u64, 0u64);
        for &c in &self.learnts {
            match self.db.tier(c) {
                Tier::Core => core += 1,
                Tier::Mid => mid += 1,
                Tier::Local => local += 1,
            }
        }
        self.probe.record(SearchSample {
            source: SampleSource::Search,
            at_us: 0, // stamped by the probe
            conflicts: self.stats.conflicts,
            decisions: self.stats.decisions,
            propagations: self.stats.propagations,
            restarts: self.stats.restarts,
            reduces: self.stats.reduces,
            rephases: self.stats.rephases,
            trail_len: self.trail.len() as u64,
            decision_level: u64::from(self.decision_level()),
            lbd_ema_fast: self.lbd_ema_fast,
            lbd_ema_slow: self.lbd_ema_slow,
            learnts_core: core,
            learnts_mid: mid,
            learnts_local: local,
            exported: self.stats.exported,
            imported: self.stats.imported,
            pool_depth: 0,
            queue_len: 0,
            chrono_backtracks: self.stats.chrono_backtracks,
            blocked_restarts: self.stats.blocked_restarts,
        });
    }

    /// Runs CDCL search for up to `conflict_limit` conflicts.
    /// `Some(result)` terminates; `None` requests a restart.
    fn search(&mut self, conflict_limit: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                // Long-run averages for the Glucose restart policy (the
                // LBD half accumulates in `update_lbd_emas`).
                self.trail_depth_sum += self.trail.len() as f64;
                self.avg_conflicts += 1;
                if self.features.rephase && self.trail.len() > self.best_trail_len {
                    // The trail is at its longest right at the conflict;
                    // remember the polarities of the deepest one seen.
                    self.best_trail_len = self.trail.len();
                    if self.best_phase.len() < self.phase.len() {
                        self.best_phase = self.phase.clone();
                    }
                    for &l in &self.trail {
                        self.best_phase[l.var().index()] = l.is_positive();
                    }
                }
                // Under chronological backtracking the conflict may live
                // entirely below the current decision level (out-of-order
                // assignments); drop to the conflict's own level first so
                // analyze sees it as the current one. Every literal of the
                // conflicting clause survives the repair, so it is still
                // falsified afterwards.
                if self.features.chrono_backtrack {
                    let mut clevel = 0;
                    for k in 0..self.db.len(confl) {
                        clevel = clevel.max(self.level(self.db.lits(confl)[k].var()));
                    }
                    if clevel < self.decision_level() {
                        self.cancel_until(clevel);
                    }
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.final_conflict.clear();
                    self.log_proof(|| ProofStep::Empty);
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                let learnt_for_proof = learnt.clone();
                self.log_proof(|| ProofStep::Lemma(learnt_for_proof));
                // Chronological backtracking: a long jump discards a whole
                // subtree of still-consistent assignments; undo one level
                // instead and record the asserting literal at its
                // assertion level.
                let dl = self.decision_level();
                let target =
                    if self.features.chrono_backtrack && dl - bt > self.features.chrono_threshold {
                        self.stats.chrono_backtracks += 1;
                        dl - 1
                    } else {
                        bt
                    };
                self.cancel_until(target);
                if learnt.len() == 1 {
                    self.update_lbd_emas(1);
                    self.maybe_export(&learnt, 1);
                    self.unchecked_enqueue_at(learnt[0], None, 0);
                } else {
                    let cref = self.db.alloc(&learnt, true);
                    let lbd = self.lits_lbd(&learnt);
                    self.update_lbd_emas(lbd);
                    self.db.set_lbd(cref, lbd);
                    self.db.set_tier(cref, Tier::for_lbd(lbd));
                    self.maybe_export(&learnt, lbd);
                    self.learnts.push(cref);
                    self.attach(cref);
                    self.bump_clause(cref);
                    self.unchecked_enqueue_at(learnt[0], Some(cref), bt);
                    if self.features.otf_strengthen {
                        self.maybe_queue_strengthen(confl, &learnt, cref);
                    }
                }
                self.decay_activities();
                if self.probe.sample_due(self.stats.conflicts) {
                    self.emit_flight_sample();
                }
                if self.out_of_budget() {
                    if !self.settle_root() {
                        return Some(SolveResult::Unsat);
                    }
                    return Some(SolveResult::Unknown);
                }
            } else {
                if self.restart_due(conflicts_here, conflict_limit) {
                    if !self.settle_root() {
                        return Some(SolveResult::Unsat);
                    }
                    return None; // restart
                }
                if self.decision_level() == 0 {
                    self.simplify();
                }
                if self.learnts.len() as u64 >= self.next_reduce {
                    self.next_reduce += self.reduce_inc;
                    self.reduce_db();
                }
                // Extend the assumption prefix.
                let mut assumed = false;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => {
                            self.analyze_final(p);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            self.new_decision_level();
                            self.unchecked_enqueue(p, None);
                            assumed = true;
                            break;
                        }
                    }
                }
                if assumed {
                    continue; // propagate the just-assumed literal first
                }
                match self.pick_branch() {
                    None => {
                        // All variables assigned: model found.
                        self.model = self.assigns.clone();
                        return Some(SolveResult::Sat);
                    }
                    Some(next) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        self.unchecked_enqueue(next, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(s.new_var())).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0]]);
        s.add_clause([!v[0], v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        assert!(!s.add_clause([!v[0]]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unsat_via_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([!v[0], v[2]]);
        s.add_clause([!v[2], v[3]]);
        s.add_clause([!v[0], !v[3]]);
        // v0 forced true, then v2, v3, contradiction with ¬v3.
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: x[p][h].
        let mut s = Solver::new();
        let mut x = [[Lit(0); 2]; 3];
        for p in 0..3 {
            for h in 0..2 {
                x[p][h] = Lit::positive(s.new_var());
            }
        }
        for p in 0..3 {
            s.add_clause([x[p][0], x[p][1]]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause([!x[p1][h], !x[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn probe_samples_the_search_every_conflict() {
        // 5 pigeons, 4 holes: enough conflicts to fill a small ring.
        let mut s = Solver::new();
        s.set_probe(Probe::new(256, 1));
        let mut x = [[Lit(0); 4]; 5];
        for p in 0..5 {
            for h in 0..4 {
                x[p][h] = Lit::positive(s.new_var());
            }
        }
        for p in 0..5 {
            s.add_clause(x[p]);
        }
        for h in 0..4 {
            for p1 in 0..5 {
                for p2 in (p1 + 1)..5 {
                    s.add_clause([!x[p1][h], !x[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let probe = s.probe();
        assert!(probe.emitted() > 0, "search must have sampled");
        let samples = probe.snapshot();
        let mut last_conflicts = 0;
        for (_, smp) in &samples {
            assert_eq!(smp.source, SampleSource::Search);
            assert!(smp.conflicts >= last_conflicts, "conflicts are cumulative");
            last_conflicts = smp.conflicts;
            assert!(smp.lbd_ema_fast > 0.0 && smp.lbd_ema_slow > 0.0);
        }
        let (fast, slow) = s.lbd_emas();
        assert!(fast > 0.0 && slow > 0.0);
        // Fast horizon moves further from zero than the slow one early on.
        assert!(fast >= slow);
    }

    #[test]
    fn assumptions_and_final_conflict() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([!v[0], !v[1]]);
        assert_eq!(s.solve(&[v[0], v[1]]), SolveResult::Unsat);
        let fc = s.final_conflict().to_vec();
        assert!(fc.contains(&v[1]) || fc.contains(&v[0]));
        // Without assumptions it is satisfiable again.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Irrelevant assumption set is fine.
        assert_eq!(s.solve(&[v[2]]), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
    }

    #[test]
    fn incremental_add_between_solves() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause([!v[0]]);
        s.add_clause([!v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
        s.add_clause([!v[2]]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        // Solver stays UNSAT forever afterwards.
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_returns_unknown_on_hard_instance() {
        // A random-ish parity/pigeonhole mix the solver cannot finish in 1 conflict.
        let mut s = Solver::new();
        let n = 8;
        let mut x = Vec::new();
        for _ in 0..n {
            x.push(Lit::positive(s.new_var()));
        }
        for p in 0..n {
            let clause: Vec<Lit> = (0..n - 1).map(|h| x[(p + h) % n]).collect();
            s.add_clause(clause);
        }
        for h in 0..n - 1 {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    if (p1 + p2 + h) % 3 == 0 {
                        s.add_clause([!x[p1], !x[p2]]);
                    }
                }
            }
        }
        s.set_conflict_budget(Some(1));
        let r = s.solve(&[]);
        // With 1 conflict of budget the outcome must not be trusted SAT with
        // a wrong model — it is either solved instantly or Unknown.
        if r == SolveResult::Unknown {
            s.set_conflict_budget(None);
            let r2 = s.solve(&[]);
            assert_ne!(r2, SolveResult::Unknown);
        }
    }

    #[test]
    fn tautology_and_duplicates_are_handled() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause([v[0], !v[0]])); // tautology: dropped
        assert!(s.add_clause([v[1], v[1], v[1]])); // dedup to unit
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn assumption_repeated_and_implied() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([!v[0], v[1]]);
        assert_eq!(s.solve(&[v[0], v[0], v[1]]), SolveResult::Sat);
        assert_eq!(s.solve(&[v[0], !v[1]]), SolveResult::Unsat);
    }

    #[test]
    fn model_covers_unconstrained_vars() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        s.add_clause([v[0]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for l in v {
            assert!(s.model_value(l).is_some());
        }
    }

    #[test]
    fn lookahead_counts_implications_and_detects_conflicts() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        s.add_clause([!v[3], !v[0]]);
        // v0 implies v1 and v2 by unit propagation plus ¬v3.
        assert_eq!(s.lookahead(&[v[0]]), Some(3));
        // Probing a UP-contradictory pair conflicts.
        assert_eq!(s.lookahead(&[v[0], v[3]]), None);
        // The probe left nothing behind: the solver still answers SAT and
        // can assign v3 with ¬v0.
        assert_eq!(s.solve(&[v[3]]), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(false));
    }

    #[test]
    fn lookahead_is_idempotent_between_solves() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([v[2], v[3]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let a = s.lookahead(&[v[0]]);
        let b = s.lookahead(&[v[0]]);
        assert_eq!(a, b);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn core_lemmas_are_rup_checkable() {
        let mut s = Solver::new();
        s.enable_proof();
        s.set_core_lemmas(true);
        let v = lits(&mut s, 4);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        s.add_clause([!v[2], !v[3]]);
        assert_eq!(s.solve(&[v[0], v[3]]), SolveResult::Unsat);
        let core = s.final_conflict().to_vec();
        assert!(!core.is_empty());
        let proof = s.take_proof().expect("proof enabled");
        // The log ends with the negated core; closing it with assumption
        // units makes a full refutation the checker accepts.
        let last = proof.steps().last().expect("core lemma logged");
        let negated: Vec<Lit> = core.iter().map(|&l| !l).collect();
        assert_eq!(last, &ProofStep::Lemma(negated));
        let mut closed = Proof::new();
        for step in proof.steps() {
            closed.push(step.clone());
        }
        for &a in &core {
            closed.push(ProofStep::Original(vec![a]));
        }
        closed.push(ProofStep::Empty);
        closed.check().expect("stitched refutation must be RUP");
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..9).map(Solver::luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }

    #[test]
    fn recorder_accumulates_per_solve_deltas() {
        let mut s = Solver::new();
        let rec = Recorder::new();
        s.set_recorder(rec.clone());
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[2]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.solve(&[!v[2], v[0]]), SolveResult::Unsat);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["sat.solves"], 2);
        // The counters mirror the solver's own cumulative stats.
        assert_eq!(snap.counters["sat.decisions"], s.stats().decisions);
        assert_eq!(snap.counters["sat.propagations"], s.stats().propagations);
    }

    #[test]
    fn simplify_removes_root_satisfied_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[2]]);
        let before = s.num_clauses();
        // Fixing v0 at the root satisfies both clauses; units propagate
        // eagerly so simplify sees the fixed trail immediately.
        s.add_clause([v[0]]);
        s.simplify();
        assert!(s.stats().simplify_removed >= 2);
        assert!(s.num_clauses() <= before - 2);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn simplify_strips_root_falsified_literals() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        s.add_clause([!v[0]]);
        s.simplify();
        assert!(s.stats().simplify_strengthened >= 1);
        // The clause shrank to [v1, v2]: forbidding v1 must force v2.
        assert_eq!(s.solve(&[!v[1]]), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
    }

    #[test]
    fn simplify_keeps_proof_checkable() {
        let mut s = Solver::new();
        s.enable_proof();
        let v = lits(&mut s, 3);
        // Unsatisfiable core over v0..v2 with some root units to strip.
        s.add_clause([v[0], v[1], v[2]]);
        s.add_clause([v[0], v[1], !v[2]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([!v[0]]);
        s.simplify();
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let proof = s.take_proof().expect("proof recording was enabled");
        assert!(proof.claims_unsat());
        assert!(proof.check().is_ok());
    }

    /// Hands a fixed batch of clauses to every `import_into` drain.
    #[derive(Debug)]
    struct ReplayExchange {
        batch: Vec<Vec<Lit>>,
    }

    impl ClauseExchange for ReplayExchange {
        fn export(&self, _lits: &[Lit], _lbd: u32) {}
        fn import_into(&self, out: &mut Vec<Vec<Lit>>) {
            out.extend(self.batch.iter().cloned());
        }
    }

    #[test]
    fn duplicate_imports_dropped_by_signature() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0], v[1], v[2], v[3]]);
        // The same clause arrives three times (once permuted), plus one
        // genuinely new clause; only two may land in the database.
        let ex = ReplayExchange {
            batch: vec![
                vec![v[0], !v[1]],
                vec![!v[1], v[0]],
                vec![v[0], !v[1]],
                vec![v[2], !v[3]],
            ],
        };
        s.set_exchange(Some(Arc::new(ex)));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.stats().imported, 2);
        assert!(s.stats().import_dropped >= 2);
        // A later drain replays the whole batch; everything is a duplicate.
        let dropped_before = s.stats().import_dropped;
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.stats().imported, 2);
        assert_eq!(s.stats().import_dropped, dropped_before + 4);
    }

    #[test]
    fn binary_watches_agree_with_legacy_kernel() {
        // Same UNSAT pigeonhole under both kernels, and the binary lists
        // actually serve propagations when enabled.
        for (features, expect_binary) in [
            (SolverFeatures::default(), true),
            (SolverFeatures::legacy(), false),
        ] {
            let mut s = Solver::new();
            s.set_features(features);
            let mut x = [[Lit(0); 3]; 4];
            for p in 0..4 {
                for h in 0..3 {
                    x[p][h] = Lit::positive(s.new_var());
                }
            }
            for p in 0..4 {
                s.add_clause(x[p]);
            }
            for h in 0..3 {
                for p1 in 0..4 {
                    for p2 in (p1 + 1)..4 {
                        s.add_clause([!x[p1][h], !x[p2][h]]);
                    }
                }
            }
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
            assert_eq!(s.stats().binary_props > 0, expect_binary);
        }
    }

    #[test]
    fn vivification_shortens_clauses_and_stays_sound() {
        let mut s = Solver::new();
        s.enable_proof();
        let v = lits(&mut s, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        // Under ¬a ∧ ¬b the second clause propagates c, refuting ¬c in the
        // first — vivification strips it to (a ∨ b).
        s.add_clause([a, b, !c]);
        s.add_clause([a, b, c]);
        s.vivify_round();
        assert!(s.stats().vivified >= 1);
        // The strengthened database must behave like the original: a and b
        // both false is now a direct conflict.
        assert_eq!(s.solve(&[!a, !b]), SolveResult::Unsat);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause([!a]);
        s.add_clause([!b]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let proof = s.take_proof().expect("proof enabled");
        assert!(proof.claims_unsat());
        proof
            .check()
            .expect("vivified proof must stay RUP-checkable");
    }

    #[test]
    fn inprocess_floor_freezes_variables() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], !v[2]]);
        s.add_clause([v[0], v[1], v[2]]);
        // Same vivifiable pair as above, but everything is frozen.
        s.set_inprocess_floor(0);
        s.vivify_round();
        assert_eq!(s.stats().vivified, 0);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn pending_strengthen_applies_and_keeps_proof() {
        let mut s = Solver::new();
        s.enable_proof();
        let v = lits(&mut s, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        s.add_clause([a, b, c]); // target
        s.add_clause([!c, a, b]); // support: resolving on c yields (a ∨ b)
        let target = s.clauses[0];
        let support = s.clauses[1];
        s.pending_strengthen.push(PendingStrengthen {
            target,
            remove: c,
            support,
        });
        s.apply_pending_strengthenings();
        assert_eq!(s.stats().strengthened, 1);
        assert_eq!(s.db.len(s.clauses[0]), 2);
        assert_eq!(s.solve(&[!a, !b]), SolveResult::Unsat);
        s.add_clause([!a]);
        s.add_clause([!b]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let proof = s.take_proof().expect("proof enabled");
        proof
            .check()
            .expect("strengthened proof must stay RUP-checkable");
    }

    #[test]
    fn aggressive_inprocessing_cadence_still_answers_correctly() {
        // Inprocess at every restart with unit restarts: the pigeonhole
        // stays UNSAT, rephasing fires, and the proof checks.
        let mut s = Solver::new();
        s.enable_proof();
        s.set_restart_base(1);
        s.set_features(SolverFeatures {
            vivify_interval: 1,
            rephase_interval: 1,
            ..SolverFeatures::default()
        });
        let mut x = [[Lit(0); 3]; 4];
        for p in 0..4 {
            for h in 0..3 {
                x[p][h] = Lit::positive(s.new_var());
            }
        }
        for p in 0..4 {
            s.add_clause(x[p]);
        }
        for h in 0..3 {
            for p1 in 0..4 {
                for p2 in (p1 + 1)..4 {
                    s.add_clause([!x[p1][h], !x[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().rephases >= 1);
        let proof = s.take_proof().expect("proof enabled");
        assert!(proof.claims_unsat());
        proof.check().expect("inprocessed proof must check");
    }

    #[test]
    fn simplify_counter_and_unchanged_trail_skip() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0]]);
        s.simplify();
        let after_first = s.stats().simplifies;
        assert!(after_first >= 1);
        // Nothing newly fixed at the root: the second call is a no-op.
        s.simplify();
        assert_eq!(s.stats().simplifies, after_first);
    }

    /// Fully chronological feature set: every conflict undoes one level.
    fn chrono_features() -> SolverFeatures {
        SolverFeatures {
            chrono_backtrack: true,
            chrono_threshold: 0,
            ..SolverFeatures::default()
        }
    }

    /// The trail invariant chronological backtracking must preserve: a
    /// literal's recorded level never exceeds the index of the decision
    /// block it physically sits in, and literals kept across a repair are
    /// never decisions.
    fn assert_trail_invariants(s: &Solver) {
        for (pos, &lit) in s.trail.iter().enumerate() {
            // Block index = number of decision boundaries at or before pos.
            let block = s.trail_lim.iter().filter(|&&lim| lim <= pos).count() as u32;
            assert!(
                s.level(lit.var()) <= block,
                "trail[{pos}] = {lit:?} recorded at level {} but sits in block {block}",
                s.level(lit.var())
            );
        }
        for (level, &lim) in s.trail_lim.iter().enumerate() {
            let v = s.trail[lim].var();
            assert_eq!(
                s.level(v),
                level as u32 + 1,
                "block boundary {level} does not hold its decision"
            );
        }
    }

    #[test]
    fn chrono_cancel_until_repairs_out_of_order_trail() {
        // Build the exact state chronological backtracking creates: an
        // asserting literal recorded at level 1 physically inside block 2,
        // then repair back to level 1 and to the root.
        let mut s = Solver::new();
        s.set_features(chrono_features());
        let v = lits(&mut s, 4);
        let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
        s.add_clause([!a, c]);
        let reason = *s.clauses.last().expect("clause stored");

        s.new_decision_level();
        s.unchecked_enqueue(a, None); // decision block 1
        s.new_decision_level();
        s.unchecked_enqueue(b, None); // decision block 2
        s.unchecked_enqueue_at(c, Some(reason), 1); // out-of-order: level 1 in block 2
        s.new_decision_level();
        s.unchecked_enqueue(d, None); // decision block 3
        assert_trail_invariants(&s);

        s.cancel_until(1);
        // b and d (levels 2 and 3) are undone; a and the relocated c stay.
        assert_eq!(s.decision_level(), 1);
        assert_eq!(s.trail, vec![a, c]);
        assert_eq!(s.value(a), LBool::True);
        assert_eq!(s.value(c), LBool::True);
        assert_eq!(s.value(b), LBool::Undef);
        assert_eq!(s.value(d), LBool::Undef);
        assert_eq!(s.level(c.var()), 1);
        // Kept literals re-propagate: qhead rewound to the repair point.
        assert_eq!(s.qhead, 1);
        assert_trail_invariants(&s);

        s.cancel_until(0);
        assert_eq!(s.decision_level(), 0);
        assert!(s.trail.is_empty());
        assert_eq!(s.value(a), LBool::Undef);
        assert_eq!(s.value(c), LBool::Undef);
    }

    #[test]
    fn chrono_solve_settles_at_propagated_root() {
        // After any solve under chronological backtracking the solver
        // must sit at a fully propagated root: relocated literals are
        // level 0 and `qhead` has caught up (otherwise a later
        // `simplify` or incremental solve would run on a stale fixpoint).
        let mut s = Solver::new();
        s.set_features(chrono_features());
        let mut x = [[Lit(0); 4]; 5];
        for p in 0..5 {
            for h in 0..4 {
                x[p][h] = Lit::positive(s.new_var());
            }
        }
        for p in 0..5 {
            s.add_clause(x[p]);
        }
        for h in 0..4 {
            for p1 in 0..5 {
                for p2 in (p1 + 1)..5 {
                    s.add_clause([!x[p1][h], !x[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(
            s.stats().chrono_backtracks > 0,
            "threshold 0 must take the chronological path"
        );
        assert_eq!(s.decision_level(), 0);
        assert_eq!(s.qhead, s.trail.len(), "root fixpoint not restored");
        for &lit in &s.trail {
            assert_eq!(s.level(lit.var()), 0);
        }
    }

    #[test]
    fn chrono_analyze_final_cores_stay_sound() {
        // Seeded mini-fuzz of assumption solving under full chrono: the
        // final conflict must name only assumptions, and the named subset
        // must be genuinely contradictory by enumeration. Unit learnts
        // recorded at level 0 (reason `None`) are exactly the literals
        // `analyze_final` must skip rather than expand.
        let mut rng = olsq2_prng::Rng::seed_from_u64(0xC4B0_0001);
        for round in 0..80 {
            let num_vars = rng.gen_range(3usize..=9);
            let num_clauses = rng.gen_range(6usize..=30);
            let clauses: Vec<Vec<i32>> = (0..num_clauses)
                .map(|_| {
                    let len = rng.gen_range(1usize..=3);
                    (0..len)
                        .map(|_| {
                            let v = rng.gen_range(1i32..=num_vars as i32);
                            if rng.gen_bool(0.5) {
                                -v
                            } else {
                                v
                            }
                        })
                        .collect()
                })
                .collect();
            let codes: Vec<i32> = (0..rng.gen_range(1usize..=4))
                .map(|_| {
                    let v = rng.gen_range(1i32..=num_vars as i32);
                    if rng.gen_bool(0.5) {
                        -v
                    } else {
                        v
                    }
                })
                .collect();
            let holds = |assignment: u32, c: i32| {
                let bit = (assignment >> (c.unsigned_abs() - 1)) & 1 == 1;
                if c > 0 {
                    bit
                } else {
                    !bit
                }
            };
            let brute = |extra: &[i32]| {
                (0..(1u32 << num_vars)).any(|asg| {
                    clauses.iter().all(|cl| cl.iter().any(|&c| holds(asg, c)))
                        && extra.iter().all(|&c| holds(asg, c))
                })
            };
            let lit_of = |c: i32| Lit::new(Var::from_index(c.unsigned_abs() as usize - 1), c < 0);
            let mut s = Solver::new();
            s.set_features(chrono_features());
            for _ in 0..num_vars {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl.iter().map(|&c| lit_of(c)));
            }
            let assumptions: Vec<Lit> = codes.iter().map(|&c| lit_of(c)).collect();
            let result = s.solve(&assumptions);
            assert_eq!(result.is_sat(), brute(&codes), "round {round}");
            if result == SolveResult::Unsat && brute(&[]) {
                let core: Vec<i32> = s
                    .final_conflict()
                    .iter()
                    .map(|l| {
                        let v = l.var().index() as i32 + 1;
                        if l.is_negative() {
                            -v
                        } else {
                            v
                        }
                    })
                    .collect();
                assert!(!core.is_empty(), "round {round}: empty core");
                for c in &core {
                    assert!(
                        codes.contains(c),
                        "round {round}: core literal {c} is not an assumption"
                    );
                }
                assert!(
                    !brute(&core),
                    "round {round}: reported core is not contradictory"
                );
            }
        }
    }

    #[test]
    fn chrono_then_simplify_keeps_answers() {
        // simplify() runs at the root on the repaired trail; it must not
        // lose relocated literals or their implications.
        let mut s = Solver::new();
        s.set_features(chrono_features());
        let v = lits(&mut s, 6);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[2]]);
        s.add_clause([!v[1], v[3]]);
        s.add_clause([!v[2], !v[3], v[4]]);
        s.add_clause([v[4], v[5]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.simplify();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Pin the instance down to UNSAT through units + simplify.
        s.add_clause([!v[4]]);
        s.add_clause([!v[5]]);
        s.simplify();
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn glucose_restart_trigger_edge_cases() {
        let mut s = Solver::new();
        s.set_features(SolverFeatures::default());
        // Cold start: no long-run average yet, so the LBD trigger must
        // hold its fire no matter how bad the fast EMA looks.
        s.lbd_ema_fast = 100.0;
        assert!(!s.restart_due(GLUCOSE_MIN_CONFLICTS + 10, 1_000));

        // Warm, fast EMA above K × long-run average → restart, and the
        // fast EMA is re-armed to the long-run average.
        s.avg_conflicts = GLUCOSE_MIN_CONFLICTS;
        s.lbd_sum = 2.0 * GLUCOSE_MIN_CONFLICTS as f64; // long-run average 2.0
        s.lbd_ema_fast = 3.0; // > 1.25 × 2.0
        assert!(s.restart_due(GLUCOSE_MIN_CONFLICTS + 10, 1_000));
        assert!((s.lbd_ema_fast - 2.0).abs() < 1e-9, "fast EMA re-armed");

        // Below the minimum conflicts inside this restart → no trigger.
        s.lbd_ema_fast = 3.0;
        assert!(!s.restart_due(GLUCOSE_MIN_CONFLICTS - 1, 1_000));

        // Healthy fast EMA → no trigger.
        s.lbd_ema_fast = 2.0;
        assert!(!s.restart_due(GLUCOSE_MIN_CONFLICTS + 10, 1_000));
    }

    #[test]
    fn glucose_restart_postponement_blocks_and_rearms() {
        let mut s = Solver::new();
        s.set_features(SolverFeatures::default());
        let v = lits(&mut s, 30);
        // Warm averages: mean conflict-trail depth 10, so a 20-deep trail
        // is "abnormally deep" (> 1.4 × 10) and must block the restart.
        s.avg_conflicts = GLUCOSE_MIN_CONFLICTS;
        s.lbd_sum = 2.0 * GLUCOSE_MIN_CONFLICTS as f64;
        s.trail_depth_sum = 10.0 * GLUCOSE_MIN_CONFLICTS as f64;
        s.lbd_ema_fast = 3.0;
        s.stats.conflicts = 500;
        s.new_decision_level();
        for &l in v.iter().take(20) {
            s.unchecked_enqueue(l, None);
        }
        assert!(
            !s.restart_due(GLUCOSE_MIN_CONFLICTS + 10, 1_000),
            "deep trail postpones"
        );
        assert_eq!(s.stats.blocked_restarts, 1);
        assert_eq!(
            s.restart_hold,
            500 + GLUCOSE_MIN_CONFLICTS,
            "postponement re-arms the hold"
        );
        // While held, even a budget-due restart stays blocked …
        assert!(!s.restart_due(1_000, 1_000));
        // … and past the hold with a drained trail the trigger fires.
        s.cancel_until(0);
        s.stats.conflicts = 500 + GLUCOSE_MIN_CONFLICTS;
        assert!(s.restart_due(GLUCOSE_MIN_CONFLICTS + 10, 1_000));

        // Postponement off: the deep trail no longer blocks.
        let mut s2 = Solver::new();
        s2.set_features(SolverFeatures {
            restart_postpone: false,
            ..SolverFeatures::default()
        });
        let v2 = lits(&mut s2, 30);
        s2.avg_conflicts = GLUCOSE_MIN_CONFLICTS;
        s2.lbd_sum = 2.0 * GLUCOSE_MIN_CONFLICTS as f64;
        s2.trail_depth_sum = 10.0 * GLUCOSE_MIN_CONFLICTS as f64;
        s2.lbd_ema_fast = 3.0;
        s2.new_decision_level();
        for &l in v2.iter().take(20) {
            s2.unchecked_enqueue(l, None);
        }
        assert!(s2.restart_due(GLUCOSE_MIN_CONFLICTS + 10, 1_000));
    }

    #[test]
    fn legacy_restarts_ignore_lbd_signal() {
        let mut s = Solver::new();
        s.set_features(SolverFeatures::legacy());
        s.avg_conflicts = 100;
        s.lbd_sum = 200.0;
        s.lbd_ema_fast = 100.0; // would trigger instantly under glucose
        assert!(!s.restart_due(999, 1_000), "legacy is Luby-budget only");
        assert!(s.restart_due(1_000, 1_000));
        assert_eq!(s.stats.blocked_restarts, 0);
    }

    #[test]
    fn target_phases_steer_branching_when_enabled() {
        // Unconstrained variables: with target_phase on, the model must
        // reproduce the target polarities; legacy ignores them and falls
        // back to the default phase (false).
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0], v[1], v[2], v[3]]); // keep the instance nontrivial
        for (i, l) in v.iter().enumerate() {
            s.set_target_phase(l.var(), i % 2 == 0);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for (i, l) in v.iter().enumerate() {
            assert_eq!(s.model_value(*l), Some(i % 2 == 0), "target ignored");
        }

        let mut s2 = Solver::new();
        s2.set_features(SolverFeatures::legacy());
        let w = lits(&mut s2, 4);
        s2.add_clause([w[0], w[1], w[2], w[3]]);
        for l in &w {
            s2.set_target_phase(l.var(), true);
        }
        assert_eq!(s2.solve(&[]), SolveResult::Sat);
        // Legacy branches on saved/default phase (false); the clause
        // forces exactly one variable true.
        let trues = w
            .iter()
            .filter(|l| s2.model_value(**l) == Some(true))
            .count();
        assert_eq!(trues, 1, "legacy must not follow targets");
    }

    #[test]
    fn adopt_model_targets_copies_the_incumbent() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0]]);
        s.add_clause([!v[0], v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(!s.has_target_phases());
        s.adopt_model_targets();
        assert!(s.has_target_phases());
        s.clear_target_phases();
        assert!(!s.has_target_phases());
    }
}
