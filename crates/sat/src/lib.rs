//! # olsq2-sat
//!
//! An incremental CDCL SAT solver, written from scratch as the constraint
//! substrate of the OLSQ2 layout-synthesis reproduction. It plays the role
//! Z3 plays in the paper: the OLSQ2 formulation is bit-blasted into CNF
//! (see the `olsq2-encode` crate) and solved here, including the paper's
//! iterative-refinement loops, which lean on solving under assumptions so
//! learned clauses carry over between objective bounds.
//!
//! ## Features
//!
//! * two-watched-literal propagation with blocker literals, plus dedicated
//!   binary-clause watch lists that inline the implied literal
//! * VSIDS branching with phase saving and periodic rephasing from the
//!   best trail seen
//! * first-UIP clause learning with recursive minimization
//! * Luby restarts and a three-tier (core/mid/local) learnt-clause store
//! * inprocessing between restarts: clause vivification and
//!   self-subsumption strengthening, proof-logged and RUP-checkable
//!   ([`SolverFeatures`] selects all of the above per solver)
//! * incremental solving under assumptions with final-conflict extraction
//! * conflict-count and wall-clock budgets ([`SolveResult::Unknown`])
//! * portfolio hooks: learned-clause exchange ([`ClauseExchange`],
//!   [`ExchangeFilter`]) and diversification knobs (decision seed, default
//!   phase, VSIDS decay, Luby restart base)
//!
//! ## Example
//!
//! ```
//! use olsq2_sat::{Solver, Lit, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = Lit::positive(solver.new_var());
//! let y = Lit::positive(solver.new_var());
//! solver.add_clause([x, y]);
//! solver.add_clause([!x, y]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert_eq!(solver.model_value(y), Some(true));
//! // Incremental re-solve under an assumption:
//! assert_eq!(solver.solve(&[!y]), SolveResult::Unsat);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clause;
pub mod exchange;
pub mod heap;
mod lit;
pub mod preprocess;
pub mod proof;
mod solver;
mod watchlist;

pub use clause::Tier;
pub use exchange::{ClauseExchange, ExchangeFilter};
pub use lit::{ClauseRef, LBool, Lit, Var};
pub use preprocess::{Preprocessor, SimplifiedCnf};
pub use proof::{CheckProofError, Proof, ProofStep};
pub use solver::{SolveResult, Solver, SolverFeatures, Stats};
