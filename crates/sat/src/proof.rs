//! Clausal proof logging and checking (DRAT-style, RUP lemmas).
//!
//! When [`Solver::enable_proof`](crate::Solver::enable_proof) is on, the
//! solver records every input clause, every learned lemma, every deletion,
//! and the final empty clause of an UNSAT run. [`Proof::check`] replays
//! the log with a reverse-unit-propagation (RUP) checker — an independent
//! implementation sharing no code with the solver's propagation — so
//! UNSAT answers can be verified without trusting the CDCL engine. This
//! mirrors how production SMT/SAT pipelines justify optimality proofs,
//! which in this repository back every "proven optimal" claim.

use crate::lit::Lit;
use std::collections::HashMap;

/// One event of a clausal proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// An input clause, as given by the user.
    Original(Vec<Lit>),
    /// A derived clause; must have the RUP property w.r.t. the clauses
    /// live at this point.
    Lemma(Vec<Lit>),
    /// A clause removed from the database.
    Delete(Vec<Lit>),
    /// A clause imported from another portfolio solver via
    /// [`ClauseExchange`](crate::ClauseExchange). It is a lemma of the
    /// *shared* formula (the exporter learned it), but this log does not
    /// contain the exporter's derivation, so the checker can only accept
    /// it if it happens to be RUP here; otherwise checking fails with
    /// the explicit [`CheckProofError::ImportedNotVerified`] — never
    /// silently.
    Imported(Vec<Lit>),
    /// The empty clause: the formula is unsatisfiable.
    Empty,
}

/// A recorded proof.
#[derive(Debug, Clone, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

/// Errors from [`Proof::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckProofError {
    /// A lemma is not RUP at its position.
    LemmaNotRup {
        /// Index of the failing step.
        step: usize,
    },
    /// A deletion references a clause that is not in the database.
    DeleteMissing {
        /// Index of the failing step.
        step: usize,
    },
    /// The proof claims UNSAT but the empty clause does not follow.
    EmptyNotDerivable,
    /// The proof ends without deriving the empty clause.
    NoEmptyClause,
    /// An imported clause ([`ProofStep::Imported`]) is not RUP at its
    /// position. The clause was learned by *another* solver over the
    /// same formula, so its derivation is not part of this log; the
    /// proof is not necessarily wrong, but it cannot be verified
    /// self-contained. Re-run with sharing disabled to obtain a fully
    /// checkable proof.
    ImportedNotVerified {
        /// Index of the failing step.
        step: usize,
    },
}

impl std::fmt::Display for CheckProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckProofError::LemmaNotRup { step } => {
                write!(f, "lemma at step {step} is not RUP")
            }
            CheckProofError::DeleteMissing { step } => {
                write!(f, "deletion at step {step} references an unknown clause")
            }
            CheckProofError::EmptyNotDerivable => {
                write!(f, "empty clause does not follow by unit propagation")
            }
            CheckProofError::NoEmptyClause => write!(f, "proof has no empty-clause step"),
            CheckProofError::ImportedNotVerified { step } => {
                write!(
                    f,
                    "imported clause at step {step} cannot be verified from this log \
                     (its derivation lives in another solver; re-run without sharing \
                     for a self-contained proof)"
                )
            }
        }
    }
}

impl std::error::Error for CheckProofError {}

impl Proof {
    /// Creates an empty proof log.
    pub fn new() -> Proof {
        Proof::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: ProofStep) {
        self.steps.push(step);
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of lemma steps (learned clauses).
    pub fn num_lemmas(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Lemma(_)))
            .count()
    }

    /// Whether the proof ends in the empty clause (claims UNSAT).
    pub fn claims_unsat(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, ProofStep::Empty))
    }

    /// Forward RUP check of the whole log.
    ///
    /// # Errors
    ///
    /// Returns the first failing step.
    pub fn check(&self) -> Result<(), CheckProofError> {
        let mut db = ClauseSet::default();
        let mut saw_empty = false;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                ProofStep::Original(c) => db.insert(c),
                ProofStep::Lemma(c) => {
                    if !db.rup(c) {
                        return Err(CheckProofError::LemmaNotRup { step: i });
                    }
                    db.insert(c);
                }
                ProofStep::Delete(c) => {
                    if !db.remove(c) {
                        return Err(CheckProofError::DeleteMissing { step: i });
                    }
                }
                ProofStep::Imported(c) => {
                    // An imported clause carries no derivation in this
                    // log; accept it only if RUP happens to re-derive it.
                    if !db.rup(c) {
                        return Err(CheckProofError::ImportedNotVerified { step: i });
                    }
                    db.insert(c);
                }
                ProofStep::Empty => {
                    if !db.rup(&[]) {
                        return Err(CheckProofError::EmptyNotDerivable);
                    }
                    saw_empty = true;
                }
            }
        }
        if saw_empty {
            Ok(())
        } else {
            Err(CheckProofError::NoEmptyClause)
        }
    }
}

/// A naive clause multiset with a from-scratch unit propagator — slow but
/// entirely independent of the solver under test.
#[derive(Debug, Default)]
struct ClauseSet {
    clauses: Vec<Vec<Lit>>,
    /// Sorted-clause → live indices (multiset semantics).
    index: HashMap<Vec<Lit>, Vec<usize>>,
    live: Vec<bool>,
}

fn canonical(c: &[Lit]) -> Vec<Lit> {
    let mut k = c.to_vec();
    k.sort_unstable();
    k.dedup();
    k
}

impl ClauseSet {
    fn insert(&mut self, c: &[Lit]) {
        let key = canonical(c);
        let idx = self.clauses.len();
        self.clauses.push(key.clone());
        self.live.push(true);
        self.index.entry(key).or_default().push(idx);
    }

    fn remove(&mut self, c: &[Lit]) -> bool {
        let key = canonical(c);
        if let Some(stack) = self.index.get_mut(&key) {
            while let Some(idx) = stack.pop() {
                if self.live[idx] {
                    self.live[idx] = false;
                    return true;
                }
            }
        }
        false
    }

    /// Reverse unit propagation: assume the negation of `lemma` and
    /// propagate; `true` iff a conflict arises (the lemma is implied).
    fn rup(&self, lemma: &[Lit]) -> bool {
        // Assignment: map var index -> bool.
        let mut assignment: HashMap<usize, bool> = HashMap::new();
        for &l in lemma {
            // ¬lemma: every literal false.
            let want = l.is_negative(); // var value making l false
            if let Some(&prev) = assignment.get(&l.var().index()) {
                if prev != want {
                    return true; // lemma is a tautology: trivially RUP
                }
            }
            assignment.insert(l.var().index(), want);
        }
        loop {
            let mut changed = false;
            for (i, clause) in self.clauses.iter().enumerate() {
                if !self.live[i] {
                    continue;
                }
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for &l in clause {
                    match assignment.get(&l.var().index()) {
                        Some(&v) => {
                            if v == l.is_positive() {
                                satisfied = true;
                                break;
                            }
                        }
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => return true, // conflict: lemma is RUP
                    1 => {
                        let l = unassigned.expect("one unassigned literal");
                        assignment.insert(l.var().index(), l.is_positive());
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(v: i32) -> Lit {
        Lit::new(Var::from_index(v.unsigned_abs() as usize - 1), v < 0)
    }

    fn cls(ls: &[i32]) -> Vec<Lit> {
        ls.iter().map(|&v| lit(v)).collect()
    }

    #[test]
    fn hand_built_resolution_proof_checks() {
        // (1 2) (1 -2) (-1 3) (-1 -3): classic 4-clause UNSAT.
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Original(cls(&[1, -2])));
        p.push(ProofStep::Original(cls(&[-1, 3])));
        p.push(ProofStep::Original(cls(&[-1, -3])));
        p.push(ProofStep::Lemma(cls(&[1]))); // resolve first two
        p.push(ProofStep::Lemma(cls(&[-1]))); // resolve last two
        p.push(ProofStep::Empty);
        assert_eq!(p.check(), Ok(()));
        assert!(p.claims_unsat());
        assert_eq!(p.num_lemmas(), 2);
    }

    #[test]
    fn bogus_lemma_is_rejected() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Lemma(cls(&[1]))); // does not follow
        p.push(ProofStep::Empty);
        assert_eq!(p.check(), Err(CheckProofError::LemmaNotRup { step: 1 }));
    }

    #[test]
    fn premature_empty_is_rejected() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Empty);
        assert_eq!(p.check(), Err(CheckProofError::EmptyNotDerivable));
    }

    #[test]
    fn missing_empty_is_rejected() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1])));
        assert_eq!(p.check(), Err(CheckProofError::NoEmptyClause));
    }

    #[test]
    fn deletion_bookkeeping() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1])));
        p.push(ProofStep::Original(cls(&[-1])));
        p.push(ProofStep::Delete(cls(&[9]))); // never added
        assert_eq!(p.check(), Err(CheckProofError::DeleteMissing { step: 2 }));
    }

    #[test]
    fn rederivable_import_is_accepted_and_usable() {
        // (1 2) (1 -2): importing (1) is RUP here, and later lemmas may
        // lean on the imported clause.
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Original(cls(&[1, -2])));
        p.push(ProofStep::Original(cls(&[-1])));
        p.push(ProofStep::Imported(cls(&[1])));
        p.push(ProofStep::Empty);
        assert_eq!(p.check(), Ok(()));
    }

    #[test]
    fn unverifiable_import_fails_explicitly() {
        // (3) is implied by nothing here: the exporter's derivation is
        // not in this log, so checking must fail loudly, not pass.
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Imported(cls(&[3])));
        p.push(ProofStep::Empty);
        assert_eq!(
            p.check(),
            Err(CheckProofError::ImportedNotVerified { step: 1 })
        );
        let msg = CheckProofError::ImportedNotVerified { step: 1 }.to_string();
        assert!(msg.contains("imported"));
    }

    #[test]
    fn deleted_clauses_stop_supporting_lemmas() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Original(cls(&[1, -2])));
        p.push(ProofStep::Delete(cls(&[1, 2])));
        p.push(ProofStep::Lemma(cls(&[1]))); // support was deleted
        p.push(ProofStep::Empty);
        assert!(p.check().is_err());
    }
}
