//! Clausal proof logging and checking (DRAT-style, RUP lemmas).
//!
//! When [`Solver::enable_proof`](crate::Solver::enable_proof) is on, the
//! solver records every input clause, every learned lemma, every deletion,
//! and the final empty clause of an UNSAT run. [`Proof::check`] replays
//! the log with a reverse-unit-propagation (RUP) checker — an independent
//! implementation sharing no code with the solver's propagation — so
//! UNSAT answers can be verified without trusting the CDCL engine. This
//! mirrors how production SMT/SAT pipelines justify optimality proofs,
//! which in this repository back every "proven optimal" claim.

use crate::lit::Lit;
use std::collections::HashMap;

/// One event of a clausal proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// An input clause, as given by the user.
    Original(Vec<Lit>),
    /// A derived clause; must have the RUP property w.r.t. the clauses
    /// live at this point.
    Lemma(Vec<Lit>),
    /// A clause removed from the database.
    Delete(Vec<Lit>),
    /// A clause imported from another portfolio solver via
    /// [`ClauseExchange`](crate::ClauseExchange). It is a lemma of the
    /// *shared* formula (the exporter learned it), but this log does not
    /// contain the exporter's derivation, so the checker can only accept
    /// it if it happens to be RUP here; otherwise checking fails with
    /// the explicit [`CheckProofError::ImportedNotVerified`] — never
    /// silently.
    Imported(Vec<Lit>),
    /// The empty clause: the formula is unsatisfiable.
    Empty,
}

/// A recorded proof.
#[derive(Debug, Clone, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

/// Errors from [`Proof::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckProofError {
    /// A lemma is not RUP at its position.
    LemmaNotRup {
        /// Index of the failing step.
        step: usize,
    },
    /// A deletion references a clause that is not in the database.
    DeleteMissing {
        /// Index of the failing step.
        step: usize,
    },
    /// The proof claims UNSAT but the empty clause does not follow.
    EmptyNotDerivable,
    /// The proof ends without deriving the empty clause.
    NoEmptyClause,
    /// An imported clause ([`ProofStep::Imported`]) is not RUP at its
    /// position. The clause was learned by *another* solver over the
    /// same formula, so its derivation is not part of this log; the
    /// proof is not necessarily wrong, but it cannot be verified
    /// self-contained. Re-run with sharing disabled to obtain a fully
    /// checkable proof.
    ImportedNotVerified {
        /// Index of the failing step.
        step: usize,
    },
}

impl std::fmt::Display for CheckProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckProofError::LemmaNotRup { step } => {
                write!(f, "lemma at step {step} is not RUP")
            }
            CheckProofError::DeleteMissing { step } => {
                write!(f, "deletion at step {step} references an unknown clause")
            }
            CheckProofError::EmptyNotDerivable => {
                write!(f, "empty clause does not follow by unit propagation")
            }
            CheckProofError::NoEmptyClause => write!(f, "proof has no empty-clause step"),
            CheckProofError::ImportedNotVerified { step } => {
                write!(
                    f,
                    "imported clause at step {step} cannot be verified from this log \
                     (its derivation lives in another solver; re-run without sharing \
                     for a self-contained proof)"
                )
            }
        }
    }
}

impl std::error::Error for CheckProofError {}

impl Proof {
    /// Creates an empty proof log.
    pub fn new() -> Proof {
        Proof::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: ProofStep) {
        self.steps.push(step);
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of lemma steps (learned clauses).
    pub fn num_lemmas(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Lemma(_)))
            .count()
    }

    /// Whether the proof ends in the empty clause (claims UNSAT).
    pub fn claims_unsat(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, ProofStep::Empty))
    }

    /// Forward RUP check of the whole log.
    ///
    /// Propagation runs on a two-watched-literal scheme private to the
    /// checker, so large stitched proofs (the cube-and-conquer
    /// optimality certificates run to tens of thousands of lemmas)
    /// check in time proportional to the clauses actually touched, not
    /// `lemmas × formula`.
    ///
    /// # Errors
    ///
    /// Returns the first failing step.
    pub fn check(&self) -> Result<(), CheckProofError> {
        let mut db = ClauseSet::default();
        let mut saw_empty = false;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                ProofStep::Original(c) => db.insert(c),
                ProofStep::Lemma(c) => {
                    if !db.rup(c) {
                        return Err(CheckProofError::LemmaNotRup { step: i });
                    }
                    db.insert(c);
                }
                ProofStep::Delete(c) => {
                    if !db.remove(c) {
                        return Err(CheckProofError::DeleteMissing { step: i });
                    }
                }
                ProofStep::Imported(c) => {
                    // An imported clause carries no derivation in this
                    // log; accept it only if RUP happens to re-derive it.
                    if !db.rup(c) {
                        return Err(CheckProofError::ImportedNotVerified { step: i });
                    }
                    db.insert(c);
                }
                ProofStep::Empty => {
                    if !db.rup(&[]) {
                        return Err(CheckProofError::EmptyNotDerivable);
                    }
                    saw_empty = true;
                }
            }
        }
        if saw_empty {
            Ok(())
        } else {
            Err(CheckProofError::NoEmptyClause)
        }
    }
}

/// Truth value of a variable inside the checker (0 = unset).
const UNSET: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;

/// A clause multiset with a two-watched-literal unit propagator —
/// entirely independent of the solver under test (it shares no code
/// with the CDCL engine's propagation), but fast enough for stitched
/// multi-worker refutations. Each [`ClauseSet::rup`] query assumes the
/// lemma's negation on a scratch trail, propagates through the watch
/// lists, and undoes the trail afterwards; dead (deleted) clauses are
/// dropped from watch and unit lists lazily as propagation meets them.
#[derive(Debug, Default)]
struct ClauseSet {
    /// Clause literals; positions 0/1 are the watched literals (the
    /// canonical sorted form is kept separately as the index key).
    clauses: Vec<Vec<Lit>>,
    /// Sorted-clause → live indices (multiset semantics).
    index: HashMap<Vec<Lit>, Vec<usize>>,
    live: Vec<bool>,
    /// Literal code → clauses watching that literal.
    watches: Vec<Vec<usize>>,
    /// Live unit clauses (propagated first in every query).
    units: Vec<usize>,
    /// Live empty clauses in the database (everything is then implied).
    empty_clauses: usize,
    /// Scratch assignment, indexed by variable.
    assign: Vec<u8>,
    /// Variables assigned by the current query, for undo.
    trail: Vec<usize>,
}

fn canonical(c: &[Lit]) -> Vec<Lit> {
    let mut k = c.to_vec();
    k.sort_unstable();
    k.dedup();
    k
}

/// Watch-list slot of a literal.
fn code(l: Lit) -> usize {
    l.var().index() * 2 + usize::from(l.is_negative())
}

impl ClauseSet {
    fn ensure_var(&mut self, v: usize) {
        if self.assign.len() <= v {
            self.assign.resize(v + 1, UNSET);
            self.watches.resize((v + 1) * 2, Vec::new());
        }
    }

    /// The literal's value under the scratch assignment.
    fn value(&self, l: Lit) -> u8 {
        match self.assign[l.var().index()] {
            UNSET => UNSET,
            v => {
                if (v == TRUE) == l.is_positive() {
                    TRUE
                } else {
                    FALSE
                }
            }
        }
    }

    fn insert(&mut self, c: &[Lit]) {
        let key = canonical(c);
        let idx = self.clauses.len();
        for &l in &key {
            self.ensure_var(l.var().index());
        }
        match key.len() {
            0 => self.empty_clauses += 1,
            1 => self.units.push(idx),
            _ => {
                self.watches[code(key[0])].push(idx);
                self.watches[code(key[1])].push(idx);
            }
        }
        self.clauses.push(key.clone());
        self.live.push(true);
        self.index.entry(key).or_default().push(idx);
    }

    fn remove(&mut self, c: &[Lit]) -> bool {
        let key = canonical(c);
        if let Some(stack) = self.index.get_mut(&key) {
            while let Some(idx) = stack.pop() {
                if self.live[idx] {
                    self.live[idx] = false;
                    if self.clauses[idx].is_empty() {
                        self.empty_clauses -= 1;
                    }
                    // Watch/unit entries are collected lazily.
                    return true;
                }
            }
        }
        false
    }

    /// Assigns `l` true; returns `false` on conflict with the current
    /// assignment.
    fn enqueue(&mut self, l: Lit) -> bool {
        match self.value(l) {
            TRUE => true,
            FALSE => false,
            _ => {
                let v = l.var().index();
                self.assign[v] = if l.is_positive() { TRUE } else { FALSE };
                self.trail.push(v);
                true
            }
        }
    }

    fn undo_trail(&mut self) {
        for &v in &self.trail {
            self.assign[v] = UNSET;
        }
        self.trail.clear();
    }

    /// Reverse unit propagation: assume the negation of `lemma` and
    /// propagate; `true` iff a conflict arises (the lemma is implied).
    fn rup(&mut self, lemma: &[Lit]) -> bool {
        if self.empty_clauses > 0 {
            return true;
        }
        debug_assert!(self.trail.is_empty());
        // ¬lemma: every literal false. A clash means the lemma is a
        // tautology — trivially RUP.
        for &l in lemma {
            self.ensure_var(l.var().index());
            if !self.enqueue(!l) {
                self.undo_trail();
                return true;
            }
        }
        // Live unit clauses seed the propagation queue.
        let mut i = 0;
        while i < self.units.len() {
            let ci = self.units[i];
            if !self.live[ci] {
                self.units.swap_remove(i);
                continue;
            }
            if !self.enqueue(self.clauses[ci][0]) {
                self.undo_trail();
                return true;
            }
            i += 1;
        }
        let conflict = !self.propagate();
        self.undo_trail();
        conflict
    }

    /// Exhausts the watch-list propagation queue; `false` on conflict.
    fn propagate(&mut self) -> bool {
        let mut qhead = 0;
        while qhead < self.trail.len() {
            let v = self.trail[qhead];
            qhead += 1;
            // The literal of `v` falsified by this assignment.
            let false_lit = Lit::new(
                crate::lit::Var::from_index(v),
                self.assign[v] == TRUE, // var true ⇒ its negation is false
            );
            let mut ws = std::mem::take(&mut self.watches[code(false_lit)]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                if !self.live[ci] {
                    ws.swap_remove(i);
                    continue;
                }
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                if self.value(self.clauses[ci][0]) == TRUE {
                    i += 1;
                    continue;
                }
                // Look for a non-false replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != FALSE {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[code(new_watch)].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit (first watch propagates) or conflicting.
                let first = self.clauses[ci][0];
                if !self.enqueue(first) {
                    self.watches[code(false_lit)] = ws;
                    return false;
                }
                i += 1;
            }
            self.watches[code(false_lit)] = ws;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(v: i32) -> Lit {
        Lit::new(Var::from_index(v.unsigned_abs() as usize - 1), v < 0)
    }

    fn cls(ls: &[i32]) -> Vec<Lit> {
        ls.iter().map(|&v| lit(v)).collect()
    }

    #[test]
    fn hand_built_resolution_proof_checks() {
        // (1 2) (1 -2) (-1 3) (-1 -3): classic 4-clause UNSAT.
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Original(cls(&[1, -2])));
        p.push(ProofStep::Original(cls(&[-1, 3])));
        p.push(ProofStep::Original(cls(&[-1, -3])));
        p.push(ProofStep::Lemma(cls(&[1]))); // resolve first two
        p.push(ProofStep::Lemma(cls(&[-1]))); // resolve last two
        p.push(ProofStep::Empty);
        assert_eq!(p.check(), Ok(()));
        assert!(p.claims_unsat());
        assert_eq!(p.num_lemmas(), 2);
    }

    #[test]
    fn bogus_lemma_is_rejected() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Lemma(cls(&[1]))); // does not follow
        p.push(ProofStep::Empty);
        assert_eq!(p.check(), Err(CheckProofError::LemmaNotRup { step: 1 }));
    }

    #[test]
    fn premature_empty_is_rejected() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Empty);
        assert_eq!(p.check(), Err(CheckProofError::EmptyNotDerivable));
    }

    #[test]
    fn missing_empty_is_rejected() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1])));
        assert_eq!(p.check(), Err(CheckProofError::NoEmptyClause));
    }

    #[test]
    fn deletion_bookkeeping() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1])));
        p.push(ProofStep::Original(cls(&[-1])));
        p.push(ProofStep::Delete(cls(&[9]))); // never added
        assert_eq!(p.check(), Err(CheckProofError::DeleteMissing { step: 2 }));
    }

    #[test]
    fn rederivable_import_is_accepted_and_usable() {
        // (1 2) (1 -2): importing (1) is RUP here, and later lemmas may
        // lean on the imported clause.
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Original(cls(&[1, -2])));
        p.push(ProofStep::Original(cls(&[-1])));
        p.push(ProofStep::Imported(cls(&[1])));
        p.push(ProofStep::Empty);
        assert_eq!(p.check(), Ok(()));
    }

    #[test]
    fn unverifiable_import_fails_explicitly() {
        // (3) is implied by nothing here: the exporter's derivation is
        // not in this log, so checking must fail loudly, not pass.
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Imported(cls(&[3])));
        p.push(ProofStep::Empty);
        assert_eq!(
            p.check(),
            Err(CheckProofError::ImportedNotVerified { step: 1 })
        );
        let msg = CheckProofError::ImportedNotVerified { step: 1 }.to_string();
        assert!(msg.contains("imported"));
    }

    #[test]
    fn deleted_clauses_stop_supporting_lemmas() {
        let mut p = Proof::new();
        p.push(ProofStep::Original(cls(&[1, 2])));
        p.push(ProofStep::Original(cls(&[1, -2])));
        p.push(ProofStep::Delete(cls(&[1, 2])));
        p.push(ProofStep::Lemma(cls(&[1]))); // support was deleted
        p.push(ProofStep::Empty);
        assert!(p.check().is_err());
    }
}
