//! CNF preprocessing: SatELite-style simplification (Eén & Biere 2005).
//!
//! Z3 applies heavy preprocessing before handing bit-blasted formulas to
//! its SAT core; this module provides the same class of transformations
//! for the reproduction's one-shot instances:
//!
//! * top-level unit propagation and tautology/duplicate removal,
//! * clause subsumption and self-subsuming resolution (strengthening),
//! * bounded variable elimination (BVE) with model reconstruction.
//!
//! Variables that the caller still needs after solving (for result
//! extraction or assumptions) must be [`Preprocessor::freeze`]-d; models
//! of the simplified formula extend to the original variables through
//! [`SimplifiedCnf::reconstruct`].

// Indexed `for` loops are deliberate here: variable tables are indexed by variable number.
#![allow(clippy::needless_range_loop)]
use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};
use std::collections::HashSet;

/// The outcome of preprocessing.
#[derive(Debug, Clone)]
pub struct SimplifiedCnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Top-level units discovered (already reflected in `clauses`).
    units: Vec<Lit>,
    /// Elimination stack: `(var, clauses-at-elimination)` in order.
    eliminated: Vec<(Var, Vec<Vec<Lit>>)>,
    /// The whole formula was proven unsatisfiable.
    unsat: bool,
}

impl SimplifiedCnf {
    /// Number of variables of the *original* formula.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The simplified clauses (referencing original variable indices).
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Whether preprocessing alone proved UNSAT.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// Number of variables eliminated by BVE.
    pub fn num_eliminated(&self) -> usize {
        self.eliminated.len()
    }

    /// The variables eliminated by BVE, in elimination order.
    pub fn eliminated_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.eliminated.iter().map(|(v, _)| *v)
    }

    /// Loads the simplified formula into a fresh solver (same variable
    /// indexing as the original formula).
    pub fn load_into(&self, solver: &mut Solver) {
        while solver.num_vars() < self.num_vars {
            solver.new_var();
        }
        if self.unsat {
            // Force an immediate contradiction.
            if self.num_vars == 0 {
                solver.new_var();
            }
            let l = Lit::positive(Var::from_index(0));
            solver.add_clause([l]);
            solver.add_clause([!l]);
            return;
        }
        for &u in &self.units {
            solver.add_clause([u]);
        }
        for c in &self.clauses {
            solver.add_clause(c.iter().copied());
        }
    }

    /// Solves the simplified formula and returns a *full* model over the
    /// original variables (eliminated variables reconstructed).
    ///
    /// Returns `None` on UNSAT or budget exhaustion of the given solver.
    pub fn solve_and_reconstruct(&self, solver: &mut Solver) -> Option<Vec<bool>> {
        self.load_into(solver);
        if solver.solve(&[]) != SolveResult::Sat {
            return None;
        }
        let mut model: Vec<bool> = (0..self.num_vars)
            .map(|i| {
                solver
                    .model_value(Lit::positive(Var::from_index(i)))
                    .unwrap_or(false)
            })
            .collect();
        self.reconstruct(&mut model);
        Some(model)
    }

    /// Extends a model of the simplified formula to the eliminated
    /// variables (processed in reverse elimination order).
    pub fn reconstruct(&self, model: &mut [bool]) {
        for (var, clauses) in self.eliminated.iter().rev() {
            // `var` must satisfy every stored clause whose other literals
            // are all false.
            let mut value = false;
            for clause in clauses {
                let mut needs = None;
                let mut satisfied = false;
                for &l in clause {
                    if l.var() == *var {
                        needs = Some(l.is_positive());
                    } else if model[l.var().index()] != l.is_negative() {
                        satisfied = true;
                        break;
                    }
                }
                if !satisfied {
                    if let Some(polarity) = needs {
                        value = polarity;
                        // Clauses requiring the opposite polarity cannot be
                        // simultaneously unsatisfied-by-others (resolvents
                        // were added), so the first hit determines it.
                        break;
                    }
                }
            }
            model[var.index()] = value;
        }
    }
}

/// Configurable preprocessor over an owned clause set.
#[derive(Debug)]
pub struct Preprocessor {
    num_vars: usize,
    clauses: Vec<Option<Vec<Lit>>>,
    frozen: Vec<bool>,
    /// Maximum net clause-count growth allowed per eliminated variable.
    pub max_growth: isize,
    /// Skip elimination of variables with more occurrences than this.
    pub max_occurrences: usize,
}

impl Preprocessor {
    /// Creates a preprocessor for a formula over `num_vars` variables.
    pub fn new(num_vars: usize, clauses: impl IntoIterator<Item = Vec<Lit>>) -> Preprocessor {
        Preprocessor {
            num_vars,
            clauses: clauses.into_iter().map(Some).collect(),
            frozen: vec![false; num_vars],
            max_growth: 0,
            max_occurrences: 40,
        }
    }

    /// Protects `var` from elimination (needed for assumptions or direct
    /// model extraction without reconstruction).
    pub fn freeze(&mut self, var: Var) {
        self.frozen[var.index()] = true;
    }

    /// Runs the full pipeline and returns the simplified formula.
    pub fn run(mut self) -> SimplifiedCnf {
        // --- Normalize: dedupe literals, drop tautologies ---------------
        for slot in &mut self.clauses {
            if let Some(c) = slot {
                c.sort_unstable();
                c.dedup();
                let tautology = c.windows(2).any(|w| w[0] == !w[1]);
                if tautology {
                    *slot = None;
                }
            }
        }

        // --- Top-level unit propagation ---------------------------------
        let mut assigned: Vec<Option<bool>> = vec![None; self.num_vars];
        let mut units: Vec<Lit> = Vec::new();
        let mut unsat = false;
        loop {
            let mut changed = false;
            for i in 0..self.clauses.len() {
                let Some(c) = self.clauses[i].clone() else {
                    continue;
                };
                let mut remaining = Vec::with_capacity(c.len());
                let mut satisfied = false;
                for &l in &c {
                    match assigned[l.var().index()] {
                        Some(v) if v == l.is_positive() => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => remaining.push(l),
                    }
                }
                if satisfied {
                    self.clauses[i] = None;
                    changed = true;
                    continue;
                }
                match remaining.len() {
                    0 => {
                        unsat = true;
                        break;
                    }
                    1 => {
                        let u = remaining[0];
                        assigned[u.var().index()] = Some(u.is_positive());
                        units.push(u);
                        self.clauses[i] = None;
                        changed = true;
                    }
                    _ if remaining.len() < c.len() => {
                        self.clauses[i] = Some(remaining);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if unsat || !changed {
                break;
            }
        }
        if unsat {
            return SimplifiedCnf {
                num_vars: self.num_vars,
                clauses: Vec::new(),
                units,
                eliminated: Vec::new(),
                unsat: true,
            };
        }

        // --- Subsumption + self-subsuming resolution ---------------------
        self.subsume();

        // --- Bounded variable elimination --------------------------------
        let mut eliminated: Vec<(Var, Vec<Vec<Lit>>)> = Vec::new();
        for v in 0..self.num_vars {
            let var = Var::from_index(v);
            if self.frozen[v] || assigned[v].is_some() {
                continue;
            }
            let (pos, neg): (Vec<usize>, Vec<usize>) = {
                let mut p = Vec::new();
                let mut n = Vec::new();
                for (i, slot) in self.clauses.iter().enumerate() {
                    if let Some(c) = slot {
                        for &l in c {
                            if l.var() == var {
                                if l.is_positive() {
                                    p.push(i);
                                } else {
                                    n.push(i);
                                }
                            }
                        }
                    }
                }
                (p, n)
            };
            let occurrences = pos.len() + neg.len();
            if occurrences == 0 || occurrences > self.max_occurrences {
                continue;
            }
            // Build all non-tautological resolvents.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut too_many = false;
            'outer: for &pi in &pos {
                for &ni in &neg {
                    let (Some(pc), Some(nc)) = (&self.clauses[pi], &self.clauses[ni]) else {
                        continue;
                    };
                    let mut r: Vec<Lit> = pc
                        .iter()
                        .chain(nc.iter())
                        .copied()
                        .filter(|l| l.var() != var)
                        .collect();
                    r.sort_unstable();
                    r.dedup();
                    if r.windows(2).any(|w| w[0] == !w[1]) {
                        continue; // tautological resolvent
                    }
                    resolvents.push(r);
                    if resolvents.len() as isize > occurrences as isize + self.max_growth {
                        too_many = true;
                        break 'outer;
                    }
                }
            }
            if too_many {
                continue;
            }
            // Eliminate: record originals, remove them, add resolvents.
            let mut originals = Vec::with_capacity(occurrences);
            for &i in pos.iter().chain(&neg) {
                if let Some(c) = self.clauses[i].take() {
                    originals.push(c);
                }
            }
            for r in resolvents {
                if r.is_empty() {
                    // Empty resolvent: UNSAT.
                    return SimplifiedCnf {
                        num_vars: self.num_vars,
                        clauses: Vec::new(),
                        units,
                        eliminated: Vec::new(),
                        unsat: true,
                    };
                }
                self.clauses.push(Some(r));
            }
            eliminated.push((var, originals));
        }

        // Final subsumption pass over the grown clause set.
        self.subsume();

        SimplifiedCnf {
            num_vars: self.num_vars,
            clauses: self.clauses.into_iter().flatten().collect(),
            units,
            eliminated,
            unsat: false,
        }
    }

    /// Removes subsumed clauses and strengthens via self-subsuming
    /// resolution (if `C ∨ l` and `D` with `D ⊆ C ∨ ¬l`, drop `¬l`… here
    /// the standard simpler form: remove any clause that is a superset of
    /// another, and strengthen supersets-but-for-one-flipped-literal).
    fn subsume(&mut self) {
        // Signature-based subsumption: cheap 64-bit Bloom signatures.
        let signature = |c: &[Lit]| -> u64 {
            c.iter()
                .fold(0u64, |acc, l| acc | 1 << (l.var().index() % 64))
        };
        let live: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].is_some())
            .collect();
        let mut sets: Vec<(usize, u64, HashSet<Lit>)> = live
            .iter()
            .map(|&i| {
                let c = self.clauses[i].as_ref().expect("live");
                (i, signature(c), c.iter().copied().collect())
            })
            .collect();
        sets.sort_by_key(|(_, _, s)| s.len());
        for a in 0..sets.len() {
            let (ia, sig_a, _) = (sets[a].0, sets[a].1, ());
            if self.clauses[ia].is_none() {
                continue;
            }
            let set_a = sets[a].2.clone();
            for b in (a + 1)..sets.len() {
                let (ib, sig_b, _) = (sets[b].0, sets[b].1, ());
                if self.clauses[ib].is_none() || ia == ib {
                    continue;
                }
                if sig_a & !sig_b != 0 {
                    continue; // a has a variable b lacks: cannot subsume
                }
                let set_b = &sets[b].2;
                if set_a.iter().all(|l| set_b.contains(l)) {
                    // a ⊆ b: b is redundant.
                    self.clauses[ib] = None;
                    continue;
                }
                // Self-subsuming resolution: a \ {l} ⊆ b and ¬l ∈ b → drop
                // ¬l from b.
                let mut flipped: Option<Lit> = None;
                let mut ok = true;
                for &l in &set_a {
                    if set_b.contains(&l) {
                        continue;
                    }
                    if set_b.contains(&!l) && flipped.is_none() {
                        flipped = Some(!l);
                    } else {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    if let Some(drop) = flipped {
                        if let Some(c) = &mut self.clauses[ib] {
                            c.retain(|&l| l != drop);
                            sets[b].2.remove(&drop);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        let var = Var::from_index(v.unsigned_abs() as usize - 1);
        Lit::new(var, v < 0)
    }

    fn cls(ls: &[i32]) -> Vec<Lit> {
        ls.iter().map(|&v| lit(v)).collect()
    }

    #[test]
    fn unit_propagation_simplifies() {
        let pre = Preprocessor::new(3, vec![cls(&[1]), cls(&[-1, 2]), cls(&[-2, 3])]);
        let simp = pre.run();
        assert!(!simp.is_unsat());
        // Everything collapses to units.
        assert!(simp.clauses().is_empty());
        let mut solver = Solver::new();
        let model = simp.solve_and_reconstruct(&mut solver).expect("sat");
        assert_eq!(model, vec![true, true, true]);
    }

    #[test]
    fn detects_unsat_at_top_level() {
        let pre = Preprocessor::new(1, vec![cls(&[1]), cls(&[-1])]);
        let simp = pre.run();
        assert!(simp.is_unsat());
        let mut solver = Solver::new();
        assert!(simp.solve_and_reconstruct(&mut solver).is_none());
    }

    #[test]
    fn subsumption_removes_supersets() {
        let pre = Preprocessor::new(3, vec![cls(&[1, 2]), cls(&[1, 2, 3]), cls(&[1, 2, -3])]);
        let simp = pre.run();
        // (1 2) subsumes both others... after BVE on var 3 perhaps; count
        // stays small either way.
        assert!(simp.clauses().len() <= 1, "{:?}", simp.clauses());
    }

    #[test]
    fn bve_eliminates_and_reconstructs() {
        // x ↔ (a ∧ b) as Tseitin; x is pure glue: eliminable.
        // Clauses: (¬x a) (¬x b) (x ¬a ¬b), plus force a, b true.
        let pre = Preprocessor::new(
            3,
            vec![
                cls(&[-3, 1]),
                cls(&[-3, 2]),
                cls(&[3, -1, -2]),
                cls(&[1]),
                cls(&[2]),
            ],
        );
        let simp = pre.run();
        assert!(!simp.is_unsat());
        let mut solver = Solver::new();
        let model = simp.solve_and_reconstruct(&mut solver).expect("sat");
        assert!(model[0] && model[1]);
        assert!(model[2], "x must be reconstructed to a∧b = true");
    }

    #[test]
    fn frozen_vars_survive() {
        let mut pre = Preprocessor::new(3, vec![cls(&[-3, 1]), cls(&[-3, 2]), cls(&[3, -1, -2])]);
        pre.freeze(Var::from_index(2));
        let simp = pre.run();
        assert!(
            simp.eliminated_vars().all(|v| v != Var::from_index(2)),
            "frozen x must not be eliminated"
        );
    }

    #[test]
    fn differential_random_formulas() {
        let mut rng = olsq2_prng::Rng::seed_from_u64(99);
        for round in 0..200 {
            let nv = rng.gen_range(2usize..9);
            let nc = rng.gen_range(1usize..25);
            let clauses: Vec<Vec<Lit>> = (0..nc)
                .map(|_| {
                    let len = rng.gen_range(1usize..=3);
                    (0..len)
                        .map(|_| {
                            let v = rng.gen_range(0..nv);
                            Lit::new(Var::from_index(v), rng.gen_bool(0.5))
                        })
                        .collect()
                })
                .collect();
            // Reference: plain solver.
            let mut reference = Solver::new();
            for _ in 0..nv {
                reference.new_var();
            }
            for c in &clauses {
                reference.add_clause(c.iter().copied());
            }
            let expected = reference.solve(&[]) == SolveResult::Sat;

            let simp = Preprocessor::new(nv, clauses.clone()).run();
            let mut solver = Solver::new();
            let got = simp.solve_and_reconstruct(&mut solver);
            assert_eq!(got.is_some(), expected, "round {round}");
            if let Some(model) = got {
                // The reconstructed model must satisfy the ORIGINAL formula.
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let mut v = model[l.var().index()];
                        if l.is_negative() {
                            v = !v;
                        }
                        v
                    });
                    assert!(ok, "round {round}: model violates original clause");
                }
            }
        }
    }
}
