//! Variable and literal newtypes.
//!
//! A [`Var`] is a propositional variable index; a [`Lit`] packs a variable
//! together with a sign into a single `u32` (`code = var << 1 | sign`,
//! sign bit set for the *negated* literal). This is the classic MiniSat
//! layout: `lit ^ 1` negates, and literals index arrays of size `2n`.

use std::fmt;
use std::num::NonZeroU32;
use std::ops::Not;

/// A propositional variable.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var) and
/// are dense indices starting at 0.
///
/// # Examples
///
/// ```
/// use olsq2_sat::{Solver, Lit};
/// let mut s = Solver::new();
/// let v = s.new_var();
/// assert_eq!(Lit::positive(v).var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a raw dense index.
    ///
    /// Prefer [`Solver::new_var`](crate::Solver::new_var); this constructor
    /// exists for serialization and test helpers.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// # Examples
///
/// ```
/// use olsq2_sat::{Lit, Var};
/// let v = Var::from_index(3);
/// let p = Lit::positive(v);
/// assert_eq!(!p, Lit::negative(v));
/// assert_eq!((!p).var(), v);
/// assert!((!p).is_negative());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn negative(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | negated as u32)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is the negation of its variable.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this literal is the plain (unnegated) variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The dense code of this literal (`2 * var + sign`), used to index
    /// literal-sized arrays such as watcher lists.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬v{}", self.0 >> 1)
        } else {
            write!(f, "v{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment state of a variable or literal.
///
/// # Examples
///
/// ```
/// use olsq2_sat::LBool;
/// assert_eq!(LBool::True.negate(), LBool::False);
/// assert_eq!(LBool::Undef.negate(), LBool::Undef);
/// assert_eq!(LBool::from(true), LBool::True);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Logical negation; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Converts to `Option<bool>` (`Undef` becomes `None`).
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Applies the sign of a literal: flips the value when `negated`.
    #[inline]
    pub fn apply_sign(self, negated: bool) -> LBool {
        if negated {
            self.negate()
        } else {
            self
        }
    }
}

impl From<bool> for LBool {
    #[inline]
    fn from(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Compact reference to a clause in the arena (see [`crate::clause`]).
///
/// `ClauseRef` is `NonZeroU32`-based so `Option<ClauseRef>` is a single word.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClauseRef(pub(crate) NonZeroU32);

impl fmt::Debug for ClauseRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c@{}", self.0.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        let v = Var::from_index(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(Lit::from_code(p.code()), p);
        assert_eq!(Lit::new(v, true), n);
        assert_eq!(Lit::new(v, false), p);
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.apply_sign(true), LBool::False);
        assert_eq!(LBool::True.apply_sign(false), LBool::True);
        assert_eq!(LBool::Undef.to_option(), None);
        assert_eq!(LBool::from(false), LBool::False);
    }

    #[test]
    fn var_ordering_is_index_ordering() {
        assert!(Var::from_index(1) < Var::from_index(2));
        assert_eq!(Var::from_index(5).index(), 5);
    }
}
