//! Slab-backed watch lists: every per-literal list lives in one shared
//! pool, so cloning the whole structure for [`crate::Solver::fork`] is two
//! `memcpy`s instead of one heap allocation per literal. A formula with
//! tens of thousands of variables otherwise pays ~2·vars mallocs per fork,
//! which dominates the snapshot cost.
//!
//! Layout: `heads[code]` names a `(start, len, cap)` window into `pool`.
//! A push that overflows its window relocates the list to the pool tail
//! with doubled capacity and abandons the old slots (`wasted` tracks
//! them); [`WatchLists::sweep`] rebuilds the pool compactly. Windows of
//! *other* lists never move on a push, and pool indices stay valid across
//! the pool's own reallocation, which is exactly the stability the
//! propagation loop needs (it only ever pushes to lists other than the
//! one it is scanning).

/// One per-literal window into the pool. `cap` slots are reserved
/// starting at `start`; the first `len` hold live watchers.
#[derive(Debug, Clone, Copy, Default)]
struct ListHead {
    start: u32,
    len: u32,
    cap: u32,
}

/// Flat watch-list collection over a copyable watcher type.
#[derive(Debug, Clone)]
pub(crate) struct WatchLists<T: Copy> {
    pool: Vec<T>,
    heads: Vec<ListHead>,
    /// Pool slots orphaned by list relocation; reclaimed by `sweep`.
    wasted: usize,
}

impl<T: Copy> WatchLists<T> {
    pub(crate) fn new() -> Self {
        WatchLists {
            pool: Vec::new(),
            heads: Vec::new(),
            wasted: 0,
        }
    }

    /// Appends one empty list (callers add two per fresh variable).
    pub(crate) fn push_list(&mut self) {
        self.heads.push(ListHead::default());
    }

    /// The live pool-slot range of `code`'s list in one head load (the
    /// propagation loop reads this once per literal per scheme; separate
    /// `start_of`/`len_of` calls would each re-check bounds). Stable under
    /// pushes to *other* lists, like [`WatchLists::start_of`].
    #[inline]
    pub(crate) fn range_of(&self, code: usize) -> std::ops::Range<usize> {
        let head = self.heads[code];
        head.start as usize..(head.start + head.len) as usize
    }

    /// Reads the watcher at absolute pool slot `idx`.
    #[inline]
    pub(crate) fn at_raw(&self, idx: usize) -> T {
        self.pool[idx]
    }

    /// Writes the watcher at absolute pool slot `idx`.
    #[inline]
    pub(crate) fn set_raw(&mut self, idx: usize, w: T) {
        self.pool[idx] = w;
    }

    /// `copy_within` over absolute pool slots (bulk tail-keep on conflict).
    #[inline]
    pub(crate) fn copy_within_raw(&mut self, src: std::ops::Range<usize>, dst: usize) {
        self.pool.copy_within(src, dst);
    }

    /// Shrinks `code`'s list to `len` (two-pointer compaction epilogue).
    #[inline]
    pub(crate) fn truncate(&mut self, code: usize, len: usize) {
        debug_assert!(len <= self.heads[code].len as usize);
        self.heads[code].len = len as u32;
    }

    /// Appends `w` to `code`'s list, relocating the list to the pool tail
    /// with doubled capacity when its window is full. Other lists' windows
    /// are unaffected either way.
    pub(crate) fn push(&mut self, code: usize, w: T) {
        let head = self.heads[code];
        if head.len < head.cap {
            self.pool[(head.start + head.len) as usize] = w;
            self.heads[code].len += 1;
            return;
        }
        // Min window of 2, not a larger round-up: most lists hold one or
        // two watchers (every literal of a 2/3-clause gets one), and the
        // scan streams the pool — halving dead padding is worth the one
        // extra relocation that longer lists pay on their way up.
        let new_cap = (head.cap * 2).max(2);
        let new_start = self.pool.len();
        debug_assert!(new_start + new_cap as usize <= u32::MAX as usize);
        self.pool.reserve(new_cap as usize);
        for i in 0..head.len as usize {
            let v = self.pool[head.start as usize + i];
            self.pool.push(v);
        }
        // Pad the window to full capacity (with copies of `w`, the only
        // value at hand) so the next relocation starts past it.
        self.pool.resize(new_start + new_cap as usize, w);
        self.wasted += head.cap as usize;
        self.heads[code] = ListHead {
            start: new_start as u32,
            len: head.len + 1,
            cap: new_cap,
        };
    }

    /// Retains watchers `f` approves of (with in-place mutation, e.g. cref
    /// remapping), rebuilding the pool with zero wasted slots. Lists keep
    /// their relative order; capacities snap to the surviving lengths, so
    /// the next push per list relocates once — sweeps are rare (garbage
    /// collection, simplify scrubs, pre-fork compaction) and the compact
    /// pool is what makes the fork clone cheap.
    pub(crate) fn sweep(&mut self, mut f: impl FnMut(&mut T) -> bool) {
        let live = self.pool.len() - self.wasted;
        let mut new_pool = Vec::with_capacity(live);
        for head in &mut self.heads {
            let new_start = new_pool.len() as u32;
            for i in head.start as usize..(head.start + head.len) as usize {
                let mut w = self.pool[i];
                if f(&mut w) {
                    new_pool.push(w);
                }
            }
            let new_len = new_pool.len() as u32 - new_start;
            *head = ListHead {
                start: new_start,
                len: new_len,
                cap: new_len,
            };
        }
        self.pool = new_pool;
        self.wasted = 0;
    }

    /// Orphaned pool slots awaiting a sweep.
    pub(crate) fn wasted(&self) -> usize {
        self.wasted
    }

    /// Detaches the pool for a scan that needs a local slice (so the
    /// optimizer sees no aliasing with the rest of the solver). The
    /// caller must not touch any list until [`WatchLists::restore_pool`]
    /// puts it back, and may shrink its own list via `truncate` after.
    #[inline]
    pub(crate) fn take_pool(&mut self) -> Vec<T> {
        std::mem::take(&mut self.pool)
    }

    /// Re-attaches a pool taken by [`WatchLists::take_pool`].
    #[inline]
    pub(crate) fn restore_pool(&mut self, pool: Vec<T>) {
        debug_assert!(self.pool.is_empty());
        self.pool = pool;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(w: &WatchLists<u64>, code: usize) -> Vec<u64> {
        w.range_of(code).map(|i| w.at_raw(i)).collect()
    }

    #[test]
    fn push_relocates_without_disturbing_other_lists() {
        let mut w = WatchLists::new();
        for _ in 0..3 {
            w.push_list();
        }
        for i in 0..10u64 {
            w.push(0, i);
            w.push(2, 100 + i);
        }
        w.push(1, 777);
        assert_eq!(collect(&w, 0), (0..10).collect::<Vec<_>>());
        assert_eq!(collect(&w, 1), vec![777]);
        assert_eq!(collect(&w, 2), (100..110).collect::<Vec<_>>());
        assert!(w.wasted() > 0);
    }

    #[test]
    fn sweep_compacts_and_filters_in_order() {
        let mut w = WatchLists::new();
        for _ in 0..2 {
            w.push_list();
        }
        for i in 0..8u64 {
            w.push(0, i);
            w.push(1, 50 + i);
        }
        w.sweep(|v| {
            *v *= 10;
            *v % 20 == 0
        });
        assert_eq!(w.wasted(), 0);
        assert_eq!(collect(&w, 0), vec![0, 20, 40, 60]);
        assert_eq!(collect(&w, 1), vec![500, 520, 540, 560]);
        // Post-sweep pushes still work (each list relocates once).
        w.push(0, 999);
        assert_eq!(collect(&w, 0), vec![0, 20, 40, 60, 999]);
        assert_eq!(collect(&w, 1), vec![500, 520, 540, 560]);
    }

    #[test]
    fn truncate_and_raw_writes_model_two_pointer_compaction() {
        let mut w = WatchLists::new();
        w.push_list();
        for i in 0..6u64 {
            w.push(0, i);
        }
        let range = w.range_of(0);
        let start = range.start;
        // Keep even entries via the solver's two-pointer idiom.
        let mut j = 0;
        for i in 0..range.len() {
            let v = w.at_raw(start + i);
            if v % 2 == 0 {
                w.set_raw(start + j, v);
                j += 1;
            }
        }
        w.truncate(0, j);
        assert_eq!(collect(&w, 0), vec![0, 2, 4]);
    }
}
