//! # olsq2
//!
//! The core crate of the OLSQ2 reproduction: *Scalable Optimal Layout
//! Synthesis for NISQ Quantum Processors* (Lin, Kimko, Tan, Bjørner, Cong —
//! DAC 2023).
//!
//! Quantum layout synthesis maps program qubits onto a device's physical
//! qubits and schedules gates, inserting SWAPs where the coupling graph
//! demands. This crate implements:
//!
//! * the paper's succinct SMT formulation ([`FlatModel`], no space
//!   variables) lowered to SAT through the `olsq2-encode` crate and solved
//!   by the in-repo CDCL solver `olsq2-sat`;
//! * the original OLSQ baseline formulation
//!   ([`ModelStyle::OlsqBaseline`]) for the speedup comparisons;
//! * depth optimization and iterative-descent SWAP optimization
//!   ([`Olsq2Synthesizer`], §III-B), incremental via activation literals;
//! * the transition-based TB-OLSQ2 ([`TbOlsq2Synthesizer`], §III-D).
//!
//! ## Quickstart
//!
//! ```
//! use olsq2::{Olsq2Synthesizer, SynthesisConfig};
//! use olsq2_arch::ibm_qx2;
//! use olsq2_circuit::generators::toffoli_circuit;
//! use olsq2_layout::verify;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = toffoli_circuit();
//! let device = ibm_qx2();
//! let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
//! let outcome = synth.optimize_depth(&circuit, &device)?;
//! assert!(outcome.proven_optimal);
//! assert_eq!(verify(&circuit, &device, &outcome.result), Ok(()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod cube;
pub mod incumbent;
pub mod model;
pub mod optimize;
pub mod portfolio;
pub mod sharing;
pub mod transition;
pub mod vars;

pub use config::{
    EncodingConfig, MappingEncoding, SolverDiversification, SynthesisConfig, TimeEncoding,
};
pub use cube::{CubeModel, CubeOutcome, CubeParams, CubeSynthesizer};
// Re-exported so downstream users can enable tracing without naming the
// obs crate explicitly.
pub use incumbent::IncumbentSlot;
pub use model::{FlatModel, ModelError, ModelSeed, ModelStyle, SnapshotSlot};
pub use olsq2_obs::{Probe, Recorder};
// Re-exported so portfolio users can tune sharing without naming the sat
// crate explicitly.
pub use olsq2_sat::{ClauseExchange, ExchangeFilter, SolverFeatures};
pub use optimize::{Olsq2Synthesizer, SwapOptimizationOutcome, SynthesisError, SynthesisOutcome};
pub use portfolio::{
    MemberOutcome, MemberStrategy, PortfolioConfig, PortfolioReport, PortfolioSynthesizer,
};
pub use sharing::{CohortEndpoint, SharedClausePool, SharingStats};
pub use transition::{TbOlsq2Synthesizer, TbOutcome};
