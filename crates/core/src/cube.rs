//! Cube-and-conquer depth optimization: the decrement phase of §III-B-1
//! driven by the `olsq2-cube` engine instead of a single solver.
//!
//! Phase 1 (geometric relaxation to the first SAT) is shared with
//! [`Olsq2Synthesizer`]. Phase 2 builds a cohort of identical worker
//! models over the *tight* window the first solution proved achievable,
//! then runs every `depth ≤ k` query as a cube-and-conquer race:
//!
//! * the splitter branches on the initial-mapping one-hot groups the
//!   model builders register ([`FlatModel::breakdown`] →
//!   `split_groups`), partitioning the search along the paper's most
//!   symmetric axis — "where does q₀ start?";
//! * workers keep their solvers (and learned clauses) across bounds:
//!   the engine hands every worker back after each run and the
//!   synthesizer re-arms the same models with the next activation
//!   literal;
//! * the workers share learned clauses through the portfolio's cohort
//!   fences ([`CohortEndpoint`]); endpoints retired by early-exiting
//!   workers are [reactivated](CohortEndpoint::reactivate) at the next
//!   bound;
//! * with [`CubeParams::prove`], sharing is disabled and every refuted
//!   bound's per-worker proof logs are stitched into one checkable
//!   refutation — a machine-checkable optimality certificate for the
//!   final `depth ≤ optimum − 1` query.

use crate::config::{SolverDiversification, SynthesisConfig};
use crate::model::FlatModel;
use crate::optimize::{result_str, FirstSat, Olsq2Synthesizer, SynthesisError, SynthesisOutcome};
use crate::sharing::{CohortEndpoint, SharedClausePool};
use olsq2_arch::CouplingGraph;
use olsq2_circuit::Circuit;
use olsq2_cube::{solve_cubes, CubeConfig, CubeRun, CubeSolvable, CubeStats, SplitGroup};
use olsq2_sat::{ClauseExchange, Lit, Proof, SolveResult, Solver};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Diversification seed for the cube cohort (worker 0 stays vanilla).
const CUBE_SEED: u64 = 0x00C0_BE5D;

/// Knobs for the cube-and-conquer optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeParams {
    /// Worker threads per bound query (≥ 1; 0 is clamped to 1).
    pub workers: usize,
    /// Initial cube-tree depth (split levels before solving starts).
    pub depth: usize,
    /// Conflicts a cube may consume before it is re-split.
    pub conflict_budget: u64,
    /// Stitch per-worker proof logs into a checkable refutation of the
    /// final UNSAT bound. Forces clause sharing off (imported lemmas
    /// carry no derivation) and proof logging on.
    pub prove: bool,
}

impl Default for CubeParams {
    fn default() -> Self {
        CubeParams {
            workers: 4,
            depth: 2,
            conflict_budget: 20_000,
            prove: false,
        }
    }
}

/// A [`FlatModel`] as a cube-engine worker: the model plus its standing
/// assumptions (window guard + active depth bound) and an optional
/// clause-sharing endpoint.
#[derive(Debug)]
pub struct CubeModel {
    model: FlatModel,
    base: Vec<Lit>,
    hints: Vec<SplitGroup>,
    endpoint: Option<Arc<CohortEndpoint>>,
}

impl CubeModel {
    /// Wraps a built model. Split hints are snapshotted from the model's
    /// registered one-hot groups.
    pub fn new(model: FlatModel, endpoint: Option<Arc<CohortEndpoint>>) -> CubeModel {
        let hints = model.breakdown().split_groups().to_vec();
        CubeModel {
            model,
            base: Vec::new(),
            hints,
            endpoint,
        }
    }

    /// Arms the worker for one `depth ≤ k` query: refreshes the base
    /// assumptions (window guard, depth activation literal) and
    /// reactivates the sharing endpoint the previous run retired.
    pub fn arm_depth(&mut self, k: usize) {
        let act = self.model.depth_bound(k);
        self.base.clear();
        if let Some(g) = self.model.window_guard() {
            self.base.push(g);
        }
        self.base.push(act);
        if let Some(e) = &self.endpoint {
            e.reactivate();
        }
    }

    /// The wrapped model (solution extraction after SAT).
    pub fn model(&self) -> &FlatModel {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut FlatModel {
        &mut self.model
    }
}

impl CubeSolvable for CubeModel {
    fn solver_mut(&mut self) -> &mut Solver {
        self.model.solver_mut()
    }

    fn base_assumptions(&self) -> Vec<Lit> {
        self.base.clone()
    }

    fn split_hints(&self) -> Vec<SplitGroup> {
        self.hints.clone()
    }

    fn retire_sharing(&mut self) {
        if let Some(e) = &self.endpoint {
            e.retire();
        }
    }
}

/// Outcome of a cube-and-conquer optimization.
#[derive(Debug)]
pub struct CubeOutcome {
    /// The usual synthesis outcome (result, optimality, iterations).
    pub outcome: SynthesisOutcome,
    /// Scheduler counters summed over every bound query.
    pub cube_stats: CubeStats,
    /// With [`CubeParams::prove`] and a proven optimum: the stitched
    /// refutation of `depth ≤ optimum − 1`.
    pub proof: Option<Proof>,
}

/// Depth optimizer whose decrement phase races a cube-and-conquer
/// cohort instead of a single solver (see the module docs).
///
/// # Examples
///
/// ```
/// use olsq2::cube::{CubeParams, CubeSynthesizer};
/// use olsq2::SynthesisConfig;
/// use olsq2_arch::ibm_qx2;
/// use olsq2_circuit::generators::toffoli_circuit;
/// use olsq2_layout::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = toffoli_circuit();
/// let device = ibm_qx2();
/// let synth = CubeSynthesizer::new(
///     SynthesisConfig::with_swap_duration(3),
///     CubeParams { workers: 2, ..CubeParams::default() },
/// );
/// let out = synth.optimize_depth(&circuit, &device)?;
/// assert!(out.outcome.proven_optimal);
/// assert_eq!(verify(&circuit, &device, &out.outcome.result), Ok(()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CubeSynthesizer {
    inner: Olsq2Synthesizer,
    params: CubeParams,
    /// Per-shard clause capacity of the cohort pool when sharing.
    pool_capacity: usize,
}

impl CubeSynthesizer {
    /// Creates the optimizer. With [`CubeParams::prove`], the config's
    /// proof logging is forced on and clause exchange off — stitched
    /// proofs must be self-contained.
    pub fn new(mut config: SynthesisConfig, params: CubeParams) -> CubeSynthesizer {
        if params.prove {
            config.proof_log = true;
            config.clause_exchange = None;
        }
        CubeSynthesizer {
            inner: Olsq2Synthesizer::new(config),
            params,
            pool_capacity: 4096,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        self.inner.config()
    }

    /// The cube knobs.
    pub fn params(&self) -> &CubeParams {
        &self.params
    }

    /// Builds the phase-2 worker cohort at the tight window `t_ub`,
    /// diversified per worker and wired to a fresh sharing pool unless
    /// proving. With [`SynthesisConfig::fork_spawn`] on (the default),
    /// only worker 0 pays an encode — its no-op-diversified model doubles
    /// as the cohort template and workers `1..n` are O(memcpy)
    /// [forks](FlatModel::fork) of it, each re-applying its own
    /// diversification knobs and re-binding its own sharing endpoint.
    fn build_cohort(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        t_ub: usize,
        n: usize,
    ) -> Result<Vec<Mutex<Option<CubeModel>>>, SynthesisError> {
        let config = self.inner.config();
        let share = !self.params.prove && n >= 2;
        let endpoints: Vec<Option<Arc<CohortEndpoint>>> = if share {
            let pool = Arc::new(SharedClausePool::new(n, self.pool_capacity));
            (0..n)
                .map(|i| {
                    Some(Arc::new(
                        CohortEndpoint::new(pool.clone(), i, config.recorder.clone())
                            .with_probe(config.probe.clone()),
                    ))
                })
                .collect()
        } else {
            (0..n).map(|_| None).collect()
        };
        let mut models: Vec<FlatModel> = Vec::with_capacity(n);
        for (i, endpoint) in endpoints.iter().enumerate() {
            let mut cfg = config.clone();
            cfg.diversification = SolverDiversification::variant(CUBE_SEED, i);
            cfg.proof_log = self.params.prove;
            cfg.clause_exchange = endpoint.clone().map(|e| e as Arc<dyn ClauseExchange>);
            let mut model = if config.fork_spawn && i > 0 {
                let span = config.recorder.span("fork");
                span.set("t_ub", t_ub);
                span.set("cube_worker", i);
                models[0].fork(&cfg)
            } else {
                let span = config.recorder.span("encode");
                span.set("t_ub", t_ub);
                span.set("cube_worker", i);
                let model = FlatModel::build(circuit, graph, &cfg, t_ub)?;
                if config.recorder.is_enabled() {
                    let (vars, clauses) = model.formula_size();
                    span.set("vars", vars);
                    span.set("clauses", clauses);
                }
                model
            };
            model.solver_mut().set_recorder(config.recorder.clone());
            model.solver_mut().set_probe(config.probe.clone());
            models.push(model);
        }
        let mut slots = Vec::with_capacity(n);
        for (model, endpoint) in models.into_iter().zip(endpoints) {
            slots.push(Mutex::new(Some(CubeModel::new(model, endpoint))));
        }
        Ok(slots)
    }

    /// Depth optimization with a cube-and-conquer decrement phase.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Olsq2Synthesizer::optimize_depth`].
    pub fn optimize_depth(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<CubeOutcome, SynthesisError> {
        let start = Instant::now();
        let config = self.inner.config();
        let deadline = self.inner.deadline();
        let outer = config.recorder.span("optimize_depth");
        outer.set("strategy", "cube");
        let FirstSat {
            model: mut phase1_model,
            result: first,
            t_lb,
            mut iterations,
        } = self.inner.first_feasible_depth(circuit, graph, deadline)?;
        outer.set("t_lb", t_lb);
        let mut current = first;
        let mut cube_stats = CubeStats::default();
        let mut proof = None;

        if current.depth <= t_lb {
            // Phase 1 landed on the lower bound: optimal without a
            // single decrement query. Still surface the (zero) cube
            // counters so dashboards see the metric family for every
            // cube job, not only those that reached phase 2.
            cube_stats.record(&config.recorder);
            outer.set("iterations", iterations);
            outer.set("proven_optimal", true);
            return Ok(CubeOutcome {
                outcome: SynthesisOutcome {
                    result: current,
                    proven_optimal: true,
                    iterations,
                    elapsed: start.elapsed(),
                    formula_size: phase1_model.formula_size(),
                    solver_stats: phase1_model.solver_mut().stats(),
                    extensions: phase1_model.extensions(),
                },
                cube_stats,
                proof,
            });
        }

        // Phase 2: a fresh cohort over the *tight* window the first
        // solution proved achievable — a smaller formula than phase 1's
        // relaxed window, and every later bound fits inside it. The
        // phase-1 solver is dropped; from here the cohort's retained
        // lemmas carry across bounds instead.
        let n = self.params.workers.max(1);
        let window = current.depth;
        drop(phase1_model);
        let slots = self.build_cohort(circuit, graph, window, n)?;
        let mut proven_optimal = false;

        loop {
            if current.depth <= t_lb {
                proven_optimal = true;
                break;
            }
            let k = current.depth - 1;
            let span = self.inner.iteration_span("depth", &[("t_bound", k)]);
            span.set("strategy", "cube");
            let encode_start = Instant::now();
            for slot in &slots {
                slot.lock()
                    .expect("cube slot poisoned")
                    .as_mut()
                    .expect("worker checked in")
                    .arm_depth(k);
            }
            span.set("encode_us", encode_start.elapsed().as_micros() as u64);
            let cube_cfg = CubeConfig {
                workers: n,
                depth: self.params.depth,
                conflict_budget: self.params.conflict_budget,
                prove: self.params.prove,
                deadline,
                external_stop: config.stop_flag.clone(),
                probe: config.probe.clone(),
                ..CubeConfig::default()
            };
            iterations += 1;
            let solve_start = Instant::now();
            let run = solve_cubes(
                |i| {
                    slots[i]
                        .lock()
                        .expect("cube slot poisoned")
                        .take()
                        .expect("worker checked in")
                },
                &cube_cfg,
                &config.recorder,
            );
            span.set("solve_us", solve_start.elapsed().as_micros() as u64);
            span.set("result", result_str(run.result));
            span.set("cubes", run.stats.cubes_split);
            drop(span);
            cube_stats.merge(&run.stats);
            let CubeRun {
                result,
                sat_worker,
                workers,
                proof: run_proof,
                ..
            } = run;
            if result == SolveResult::Sat {
                let w = &workers[sat_worker.expect("SAT run names its worker")];
                current = w.model().extract();
                self.inner.publish_incumbent(&current);
            }
            // Check every worker (and its warmed solver) back in for the
            // next bound.
            for (i, w) in workers.into_iter().enumerate() {
                *slots[i].lock().expect("cube slot poisoned") = Some(w);
            }
            match result {
                SolveResult::Sat => {}
                SolveResult::Unsat => {
                    proven_optimal = true;
                    proof = run_proof;
                    break;
                }
                SolveResult::Unknown => break, // budget: keep best-so-far
            }
        }

        outer.set("iterations", iterations);
        outer.set("proven_optimal", proven_optimal);
        let mut w0 = slots[0]
            .lock()
            .expect("cube slot poisoned")
            .take()
            .expect("worker checked in");
        Ok(CubeOutcome {
            outcome: SynthesisOutcome {
                result: current,
                proven_optimal,
                iterations,
                elapsed: start.elapsed(),
                formula_size: w0.model().formula_size(),
                solver_stats: w0.model_mut().solver_mut().stats(),
                extensions: w0.model().extensions(),
            },
            cube_stats,
            proof,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_arch::{ibm_qx2, line};
    use olsq2_circuit::generators::{qaoa_circuit, toffoli_circuit};
    use olsq2_layout::verify;

    fn params(workers: usize) -> CubeParams {
        CubeParams {
            workers,
            ..CubeParams::default()
        }
    }

    #[test]
    fn cube_matches_sequential_optimum_on_toffoli() {
        let circuit = toffoli_circuit();
        let device = ibm_qx2();
        let seq = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3))
            .optimize_depth(&circuit, &device)
            .expect("sequential");
        let cube = CubeSynthesizer::new(SynthesisConfig::with_swap_duration(3), params(2))
            .optimize_depth(&circuit, &device)
            .expect("cube");
        assert!(cube.outcome.proven_optimal);
        assert_eq!(cube.outcome.result.depth, seq.result.depth);
        assert_eq!(verify(&circuit, &device, &cube.outcome.result), Ok(()));
    }

    #[test]
    fn prove_mode_certifies_the_optimum() {
        let circuit = qaoa_circuit(4, 0xA5);
        let device = line(4);
        let synth = CubeSynthesizer::new(
            SynthesisConfig::default(),
            CubeParams {
                workers: 2,
                prove: true,
                ..CubeParams::default()
            },
        );
        let out = synth.optimize_depth(&circuit, &device).expect("cube");
        assert!(out.outcome.proven_optimal);
        let t_lb = olsq2_circuit::DependencyGraph::new(&circuit)
            .longest_chain()
            .max(1);
        if out.outcome.result.depth > t_lb {
            // The decrement loop ended in UNSAT: a certificate is owed.
            let proof = out.proof.expect("stitched optimality certificate");
            assert!(proof.claims_unsat());
            proof
                .check()
                .expect("stitched certificate is RUP-checkable");
        } else {
            assert!(out.proof.is_none(), "nothing was refuted");
        }
        assert_eq!(verify(&circuit, &device, &out.outcome.result), Ok(()));
    }

    #[test]
    fn single_worker_cohort_still_terminates() {
        let circuit = qaoa_circuit(4, 0xA5);
        let device = line(4);
        let out = CubeSynthesizer::new(SynthesisConfig::default(), params(1))
            .optimize_depth(&circuit, &device)
            .expect("cube");
        assert!(out.outcome.proven_optimal);
        assert_eq!(verify(&circuit, &device, &out.outcome.result), Ok(()));
    }

    #[test]
    fn cube_counters_reach_the_recorder() {
        let circuit = toffoli_circuit();
        let device = ibm_qx2();
        let mut config = SynthesisConfig::with_swap_duration(3);
        config.recorder = crate::Recorder::new();
        let rec = config.recorder.clone();
        let out = CubeSynthesizer::new(config, params(2))
            .optimize_depth(&circuit, &device)
            .expect("cube");
        let snap = rec.snapshot();
        if out.cube_stats.cubes_split > 0 {
            assert!(snap.counters.contains_key("cube.cubes_split"));
        }
        assert!(snap.spans.iter().any(|s| s.name == "optimize_depth"));
    }
}
