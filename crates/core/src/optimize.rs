//! The optimization strategies of §III-B: depth optimization by geometric
//! relaxation + decrement, and SWAP-count optimization by iterative descent
//! along a two-dimensional (depth, swaps) Pareto search — all incremental
//! over one solver via activation-literal bounds.

use crate::config::SynthesisConfig;
use crate::model::{FlatModel, ModelError, ModelSeed};
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, DependencyGraph};
use olsq2_layout::LayoutResult;
use olsq2_obs::SpanGuard;
use olsq2_sat::{SolveResult, Stats};
use std::time::{Duration, Instant};

/// Stable trace-field value for a solve result.
pub(crate) fn result_str(r: SolveResult) -> &'static str {
    match r {
        SolveResult::Sat => "sat",
        SolveResult::Unsat => "unsat",
        SolveResult::Unknown => "unknown",
    }
}

/// Errors from the synthesis drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// Model construction failed.
    Model(ModelError),
    /// The time/conflict budget expired before any valid solution was found.
    BudgetExhausted,
    /// The depth window grew past the hard cap without a solution
    /// (indicates an unroutable instance).
    WindowExhausted,
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Model(e) => write!(f, "model construction failed: {e}"),
            SynthesisError::BudgetExhausted => {
                write!(f, "budget exhausted before a first solution was found")
            }
            SynthesisError::WindowExhausted => {
                write!(f, "no solution within the maximum depth window")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<ModelError> for SynthesisError {
    fn from(e: ModelError) -> Self {
        SynthesisError::Model(e)
    }
}

/// Hard cap on the depth window to catch unroutable instances.
const MAX_T_UB: usize = 4096;

/// Result of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The best layout found (verified shape; callers may re-verify).
    pub result: LayoutResult,
    /// Whether optimality was proven (UNSAT at the next tighter bound or
    /// the structural lower bound reached).
    pub proven_optimal: bool,
    /// Number of solver invocations.
    pub iterations: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// `(variables, clauses)` of the final model.
    pub formula_size: (usize, usize),
    /// Cumulative solver statistics.
    pub solver_stats: Stats,
    /// Number of in-place window extensions performed on the final model
    /// (zero when the incremental path is disabled or never triggered).
    pub extensions: usize,
}

/// Result of SWAP optimization: the Pareto frontier explored.
#[derive(Debug, Clone)]
pub struct SwapOptimizationOutcome {
    /// The minimum-SWAP solution found (last Pareto point).
    pub best: SynthesisOutcome,
    /// `(depth, swap_count)` Pareto points in exploration order.
    pub pareto: Vec<(usize, usize)>,
}

/// The OLSQ2 synthesizer: builds the succinct model and runs the paper's
/// optimization loops.
///
/// # Examples
///
/// ```
/// use olsq2::{Olsq2Synthesizer, SynthesisConfig};
/// use olsq2_arch::line;
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// use olsq2_layout::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(3);
/// circuit.push(Gate::two(GateKind::Cx, 0, 1));
/// circuit.push(Gate::two(GateKind::Cx, 1, 2));
/// let graph = line(3);
/// let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
/// let outcome = synth.optimize_depth(&circuit, &graph)?;
/// assert!(outcome.proven_optimal);
/// assert_eq!(outcome.result.depth, 2);
/// assert_eq!(verify(&circuit, &graph, &outcome.result), Ok(()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Olsq2Synthesizer {
    config: SynthesisConfig,
}

/// Everything phase 1 of depth optimization produces: the first
/// satisfiable bound (already published as the incumbent) and the model
/// grown to the window that admitted it.
pub(crate) struct FirstSat {
    pub model: FlatModel,
    pub result: LayoutResult,
    pub t_lb: usize,
    pub iterations: usize,
}

impl Olsq2Synthesizer {
    /// Creates a synthesizer with the given configuration.
    pub fn new(config: SynthesisConfig) -> Olsq2Synthesizer {
        Olsq2Synthesizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.config.time_budget.map(|b| Instant::now() + b)
    }

    pub(crate) fn initial_t_ub(&self, t_lb: usize) -> usize {
        let factor = (t_lb as f64 * self.config.tub_factor).ceil() as usize;
        factor.max(t_lb + self.config.swap_duration).max(1)
    }

    pub(crate) fn build_model(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        t_ub: usize,
    ) -> Result<FlatModel, SynthesisError> {
        // Fork from an encoded template when one is attached and matches
        // this exact instance; otherwise encode from scratch.
        if self.config.fork_spawn {
            if let Some(seed) = &self.config.model_seed {
                let instance = ModelSeed::instance_fingerprint(circuit, graph, &self.config);
                if let Some(mut model) = seed.fork_for(&self.config, circuit, graph, instance, t_ub)
                {
                    let span = self.config.recorder.span("fork");
                    span.set("t_ub", t_ub);
                    model
                        .solver_mut()
                        .set_recorder(self.config.recorder.clone());
                    model.solver_mut().set_probe(self.config.probe.clone());
                    return Ok(model);
                }
            }
        }
        let span = self.config.recorder.span("encode");
        span.set("t_ub", t_ub);
        let mut model = FlatModel::build(circuit, graph, &self.config, t_ub)?;
        if self.config.recorder.is_enabled() {
            let (vars, clauses) = model.formula_size();
            span.set("vars", vars);
            span.set("clauses", clauses);
            for (fam, c) in model.breakdown().iter() {
                span.set(fam.vars_key(), c.vars);
                span.set(fam.clauses_key(), c.clauses);
            }
        }
        model
            .solver_mut()
            .set_recorder(self.config.recorder.clone());
        model.solver_mut().set_probe(self.config.probe.clone());
        Ok(model)
    }

    /// Grows `model` to the depth window `t_ub` — in place via
    /// [`FlatModel::extend_window`] when the incremental path applies
    /// (keeping the solver's learned clauses alive), otherwise by
    /// rebuilding from scratch.
    pub(crate) fn grow_model(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        model: &mut FlatModel,
        t_ub: usize,
    ) -> Result<(), SynthesisError> {
        if self.config.incremental {
            let span = self.config.recorder.span("extend");
            span.set("t_ub", t_ub);
            let (vars_before, clauses_before) = model.formula_size();
            let extend_start = Instant::now();
            if model.extend_window(circuit, graph, t_ub) {
                let (vars, clauses) = model.formula_size();
                span.set("extend_us", extend_start.elapsed().as_micros() as u64);
                span.set("appended_vars", vars - vars_before);
                span.set("appended_clauses", clauses.saturating_sub(clauses_before));
                return Ok(());
            }
            span.set("result", "rebuild");
        }
        *model = self.build_model(circuit, graph, t_ub)?;
        Ok(())
    }

    pub(crate) fn dependency_graph(&self, circuit: &Circuit) -> DependencyGraph {
        if self.config.commutation_aware {
            DependencyGraph::new_with_commutation(circuit)
        } else {
            DependencyGraph::new(circuit)
        }
    }

    pub(crate) fn arm_budgets(&self, model: &mut FlatModel, deadline: Option<Instant>) {
        model.solver_mut().set_deadline(deadline);
        model
            .solver_mut()
            .set_conflict_budget(self.config.conflict_budget);
        model
            .solver_mut()
            .set_stop_flag(self.config.stop_flag.clone());
    }

    /// Publishes an intermediate solution to the configured incumbent
    /// slot, so deadline-bound callers can recover the best-so-far when a
    /// later solve is cut off.
    pub(crate) fn publish_incumbent(&self, result: &LayoutResult) {
        if let Some(slot) = &self.config.incumbent {
            slot.publish(result);
        }
    }

    /// Snapshot-on-preempt: when a budget cut ends a run before
    /// optimality is proven and a snapshot slot is configured, fork the
    /// final model onto a neutral configuration (no budgets, no stop
    /// flag, no exchange, no telemetry — those are per-run) and publish
    /// it, so a resubmission can resume from the encoded state — clause
    /// arena, learned clauses, phases, bound activators — instead of
    /// from scratch.
    pub(crate) fn capture_snapshot(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        model: &mut FlatModel,
    ) {
        let Some(slot) = &self.config.snapshot_slot else {
            return;
        };
        if !self.config.fork_spawn {
            return;
        }
        let mut neutral = self.config.clone();
        neutral.time_budget = None;
        neutral.conflict_budget = None;
        neutral.stop_flag = None;
        neutral.incumbent = None;
        neutral.clause_exchange = None;
        neutral.model_seed = None;
        neutral.snapshot_slot = None;
        neutral.diversification = Default::default();
        neutral.recorder = olsq2_obs::Recorder::disabled();
        neutral.probe = olsq2_obs::Probe::disabled();
        let template = model.fork(&neutral);
        let instance = ModelSeed::instance_fingerprint(circuit, graph, &neutral);
        slot.publish(ModelSeed::capture(template, instance));
    }

    /// Opens one `iteration` span tagged with the active objective bounds.
    pub(crate) fn iteration_span(&self, objective: &str, bounds: &[(&str, usize)]) -> SpanGuard {
        let span = self.config.recorder.span("iteration");
        span.set("objective", objective);
        for &(k, v) in bounds {
            span.set(k, v);
        }
        span
    }

    /// Tags an `iteration` span with the solver-stat deltas of the solve
    /// it wraps — the search-divergence signals (conflicts, restarts,
    /// decisions per conflict) that `olsq2 trace-diff` uses to attribute
    /// per-iteration time differences between two runs.
    pub(crate) fn set_iteration_deltas(span: &SpanGuard, before: Stats, after: Stats) {
        span.set("conflicts", after.conflicts - before.conflicts);
        span.set("decisions", after.decisions - before.decisions);
        span.set("propagations", after.propagations - before.propagations);
        span.set("restarts", after.restarts - before.restarts);
    }

    /// Builds the model and solves *once* with the full window and no
    /// objective bound — the Fig. 1 / Table I "solving time" measurement.
    ///
    /// # Errors
    ///
    /// Propagates model errors; `Ok(None)` if the budget expired.
    pub fn solve_feasible(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        t_ub: usize,
    ) -> Result<Option<SynthesisOutcome>, SynthesisError> {
        let start = Instant::now();
        let outer = self.config.recorder.span("solve_feasible");
        outer.set("t_ub", t_ub);
        let mut model = self.build_model(circuit, graph, t_ub)?;
        self.arm_budgets(&mut model, self.deadline());
        let span = self.iteration_span("feasible", &[("t_bound", t_ub)]);
        let stats_before = model.solver_mut().stats();
        let solve_start = Instant::now();
        let res = model.solve(&[]);
        span.set("solve_us", solve_start.elapsed().as_micros() as u64);
        span.set("result", result_str(res));
        Self::set_iteration_deltas(&span, stats_before, model.solver_mut().stats());
        drop(span);
        match res {
            SolveResult::Sat => {
                let result = model.extract();
                self.publish_incumbent(&result);
                Ok(Some(SynthesisOutcome {
                    result,
                    proven_optimal: false,
                    iterations: 1,
                    elapsed: start.elapsed(),
                    formula_size: model.formula_size(),
                    solver_stats: model.solver_mut().stats(),
                    extensions: model.extensions(),
                }))
            }
            SolveResult::Unsat => Err(SynthesisError::WindowExhausted),
            SolveResult::Unknown => Ok(None),
        }
    }

    /// Phase 1 of depth optimization (§III-B-1): start from
    /// `T_B = T_LB`, relax geometrically (`r = 1.3` below 100, else
    /// `1.1`) until the first SAT. Shared between the sequential
    /// decrement loop below and the cube-and-conquer optimizer
    /// ([`crate::cube::CubeSynthesizer`]), which replaces only phase 2.
    pub(crate) fn first_feasible_depth(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        deadline: Option<Instant>,
    ) -> Result<FirstSat, SynthesisError> {
        let dag = self.dependency_graph(circuit);
        let t_lb = dag.longest_chain().max(1);
        let mut t_ub = self.initial_t_ub(t_lb);
        let mut model = self.build_model(circuit, graph, t_ub)?;
        let mut iterations = 0usize;
        let mut t_b = t_lb;
        loop {
            if t_b > t_ub {
                // Regenerate with a larger window (§III-B-1 last sentence).
                t_ub = (t_b.max((t_ub as f64 * 1.5).ceil() as usize)).min(MAX_T_UB);
                if t_b > t_ub {
                    return Err(SynthesisError::WindowExhausted);
                }
                self.grow_model(circuit, graph, &mut model, t_ub)?;
            }
            let span = self.iteration_span("depth", &[("t_bound", t_b)]);
            let encode_start = Instant::now();
            let act = model.depth_bound(t_b);
            span.set("encode_us", encode_start.elapsed().as_micros() as u64);
            self.arm_budgets(&mut model, deadline);
            iterations += 1;
            let stats_before = model.solver_mut().stats();
            let solve_start = Instant::now();
            let res = model.solve(&[act]);
            span.set("solve_us", solve_start.elapsed().as_micros() as u64);
            span.set("result", result_str(res));
            Self::set_iteration_deltas(&span, stats_before, model.solver_mut().stats());
            drop(span);
            match res {
                SolveResult::Sat => {
                    let result = model.extract();
                    self.publish_incumbent(&result);
                    return Ok(FirstSat {
                        model,
                        result,
                        t_lb,
                        iterations,
                    });
                }
                SolveResult::Unsat => {
                    let r = if t_b < 100 { 1.3 } else { 1.1 };
                    t_b = ((t_b as f64 * r).ceil() as usize).max(t_b + 1);
                    if t_b > MAX_T_UB {
                        return Err(SynthesisError::WindowExhausted);
                    }
                }
                SolveResult::Unknown => {
                    self.capture_snapshot(circuit, graph, &mut model);
                    return Err(SynthesisError::BudgetExhausted);
                }
            }
        }
    }

    /// Depth optimization (§III-B-1): start from `T_B = T_LB`, relax
    /// geometrically (`r = 1.3` below 100, else `1.1`) until SAT, then
    /// decrement until UNSAT.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::BudgetExhausted`] if no solution was found in
    /// budget; [`SynthesisError::WindowExhausted`] for unroutable inputs.
    pub fn optimize_depth(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        let start = Instant::now();
        let deadline = self.deadline();
        let outer = self.config.recorder.span("optimize_depth");
        let FirstSat {
            mut model,
            result: first,
            t_lb,
            mut iterations,
        } = self.first_feasible_depth(circuit, graph, deadline)?;
        outer.set("t_lb", t_lb);

        // Phase 2: decrement until UNSAT (or the lower bound is reached).
        let mut proven_optimal = false;
        let mut current = first;
        loop {
            if current.depth <= t_lb {
                proven_optimal = true;
                break;
            }
            let k = current.depth - 1;
            let span = self.iteration_span("depth", &[("t_bound", k)]);
            let encode_start = Instant::now();
            let act = model.depth_bound(k);
            span.set("encode_us", encode_start.elapsed().as_micros() as u64);
            self.arm_budgets(&mut model, deadline);
            iterations += 1;
            let stats_before = model.solver_mut().stats();
            let solve_start = Instant::now();
            let res = model.solve(&[act]);
            span.set("solve_us", solve_start.elapsed().as_micros() as u64);
            span.set("result", result_str(res));
            Self::set_iteration_deltas(&span, stats_before, model.solver_mut().stats());
            drop(span);
            match res {
                SolveResult::Sat => {
                    current = model.extract();
                    self.publish_incumbent(&current);
                }
                SolveResult::Unsat => {
                    proven_optimal = true;
                    break;
                }
                SolveResult::Unknown => break, // budget: keep best-so-far
            }
        }

        outer.set("iterations", iterations);
        outer.set("proven_optimal", proven_optimal);
        if !proven_optimal {
            self.capture_snapshot(circuit, graph, &mut model);
        }
        Ok(SynthesisOutcome {
            result: current,
            proven_optimal,
            iterations,
            elapsed: start.elapsed(),
            formula_size: model.formula_size(),
            solver_stats: model.solver_mut().stats(),
            extensions: model.extensions(),
        })
    }

    /// SWAP-count optimization (§III-B-2): obtain a depth-optimal solution
    /// first, then iteratively descend the SWAP bound; when the optimum
    /// under the current depth is proven, relax depth by one step and
    /// retry. Terminates when relaxing the depth brings no reduction
    /// (Pareto-optimal), the count reaches zero, or the budget expires.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Olsq2Synthesizer::optimize_depth`].
    pub fn optimize_swaps(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<SwapOptimizationOutcome, SynthesisError> {
        let start = Instant::now();
        let deadline = self.deadline();
        let outer = self.config.recorder.span("optimize_swaps");
        let depth_outcome = self.optimize_depth(circuit, graph)?;
        let mut iterations = depth_outcome.iterations;
        let mut current = depth_outcome.result.clone();
        let mut current_depth = current.depth;
        let capacity = current.swap_count().max(1);

        let dag = self.dependency_graph(circuit);
        let t_lb = dag.longest_chain().max(1);
        let mut t_ub = self.initial_t_ub(t_lb).max(current_depth);
        let mut model = self.build_model(circuit, graph, t_ub)?;
        let mut pareto = vec![(current.depth, current.swap_count())];
        let mut proven;
        let mut relax_rounds = 0usize;

        'outer: loop {
            // Descend the SWAP bound at the current depth.
            loop {
                let s = current.swap_count();
                if s == 0 {
                    proven = true;
                    break 'outer;
                }
                let span = self.iteration_span(
                    "swaps",
                    &[("t_bound", current_depth), ("swap_bound", s - 1)],
                );
                let encode_start = Instant::now();
                let act_d = model.depth_bound(current_depth);
                let act_s = model.swap_bound(s - 1, capacity);
                span.set("encode_us", encode_start.elapsed().as_micros() as u64);
                self.arm_budgets(&mut model, deadline);
                iterations += 1;
                let stats_before = model.solver_mut().stats();
                let solve_start = Instant::now();
                let res = model.solve(&[act_d, act_s]);
                span.set("solve_us", solve_start.elapsed().as_micros() as u64);
                span.set("result", result_str(res));
                Self::set_iteration_deltas(&span, stats_before, model.solver_mut().stats());
                drop(span);
                match res {
                    SolveResult::Sat => {
                        current = model.extract();
                        self.publish_incumbent(&current);
                        pareto.push((current.depth.max(1), current.swap_count()));
                    }
                    SolveResult::Unsat => {
                        proven = true; // optimal under this depth
                        break;
                    }
                    SolveResult::Unknown => {
                        proven = false;
                        break 'outer;
                    }
                }
            }

            // Relax the depth bound and see whether fewer SWAPs fit.
            if let Some(limit) = self.config.pareto_relax_limit {
                if relax_rounds >= limit {
                    break;
                }
            }
            relax_rounds += 1;
            let s = current.swap_count();
            let new_depth = current_depth + 1;
            if new_depth > t_ub {
                t_ub = (t_ub + self.config.swap_duration.max(1)).min(MAX_T_UB);
                if new_depth > t_ub {
                    break;
                }
                self.grow_model(circuit, graph, &mut model, t_ub)?;
            }
            let span =
                self.iteration_span("swaps", &[("t_bound", new_depth), ("swap_bound", s - 1)]);
            let encode_start = Instant::now();
            let act_d = model.depth_bound(new_depth);
            let act_s = model.swap_bound(s - 1, capacity);
            span.set("encode_us", encode_start.elapsed().as_micros() as u64);
            self.arm_budgets(&mut model, deadline);
            iterations += 1;
            let stats_before = model.solver_mut().stats();
            let solve_start = Instant::now();
            let res = model.solve(&[act_d, act_s]);
            span.set("solve_us", solve_start.elapsed().as_micros() as u64);
            span.set("result", result_str(res));
            Self::set_iteration_deltas(&span, stats_before, model.solver_mut().stats());
            drop(span);
            match res {
                SolveResult::Sat => {
                    current = model.extract();
                    self.publish_incumbent(&current);
                    current_depth = new_depth;
                    pareto.push((current.depth, current.swap_count()));
                }
                SolveResult::Unsat => {
                    // No reduction from relaxing: Pareto-optimal (paper's
                    // termination condition 2).
                    proven = true;
                    break;
                }
                SolveResult::Unknown => {
                    proven = false;
                    break;
                }
            }
        }

        let formula_size = model.formula_size();
        let solver_stats = model.solver_mut().stats();
        outer.set("iterations", iterations);
        outer.set("proven_optimal", proven);
        if !proven {
            self.capture_snapshot(circuit, graph, &mut model);
        }
        Ok(SwapOptimizationOutcome {
            best: SynthesisOutcome {
                result: current,
                proven_optimal: proven,
                iterations,
                elapsed: start.elapsed(),
                formula_size,
                solver_stats,
                extensions: model.extensions(),
            },
            pareto,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_arch::{grid, line};
    use olsq2_circuit::{Circuit, Gate, GateKind};
    use olsq2_layout::verify;

    fn triangle() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c.push(Gate::two(GateKind::Cx, 0, 2));
        c
    }

    #[test]
    fn depth_optimal_on_triangle_line() {
        let circuit = triangle();
        let graph = line(3);
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth.optimize_depth(&circuit, &graph).expect("solves");
        assert!(out.proven_optimal);
        assert_eq!(verify(&circuit, &graph, &out.result), Ok(()));
        // Chain is 3 (all share qubits pairwise? g0-g1 share q1, g1-g2 share
        // q2, g0-g2 share q0: chain g0->g1->g2) and one swap is needed, so
        // optimal depth is 4 with S_D=1: 3 gates + 1 swap on a line.
        assert_eq!(out.result.depth, 4);
    }

    #[test]
    fn swap_optimal_on_triangle_line() {
        let circuit = triangle();
        let graph = line(3);
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth.optimize_swaps(&circuit, &graph).expect("solves");
        assert!(out.best.proven_optimal);
        assert_eq!(out.best.result.swap_count(), 1);
        assert_eq!(verify(&circuit, &graph, &out.best.result), Ok(()));
        assert!(!out.pareto.is_empty());
    }

    #[test]
    fn zero_swaps_when_layout_fits() {
        // A 2x2-grid-compatible circuit: square interactions.
        let mut circuit = Circuit::new(4);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 2, 3));
        circuit.push(Gate::two(GateKind::Cx, 0, 2));
        circuit.push(Gate::two(GateKind::Cx, 1, 3));
        let graph = grid(2, 2);
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth.optimize_swaps(&circuit, &graph).expect("solves");
        assert_eq!(out.best.result.swap_count(), 0);
        assert!(out.best.proven_optimal);
        assert_eq!(verify(&circuit, &graph, &out.best.result), Ok(()));
        // Depth-optimal too: two layers.
        let d = synth.optimize_depth(&circuit, &graph).expect("solves");
        assert_eq!(d.result.depth, 2);
    }

    #[test]
    fn single_gate_instant() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        let graph = line(4);
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
        let out = synth.optimize_depth(&circuit, &graph).expect("solves");
        assert_eq!(out.result.depth, 1);
        assert!(out.proven_optimal);
        assert_eq!(verify(&circuit, &graph, &out.result), Ok(()));
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let circuit = triangle();
        let graph = grid(3, 3);
        let mut config = SynthesisConfig::with_swap_duration(1);
        config.time_budget = Some(Duration::from_nanos(1));
        let synth = Olsq2Synthesizer::new(config);
        // With an absurd budget the first solve gives Unknown.
        match synth.optimize_depth(&circuit, &graph) {
            Err(SynthesisError::BudgetExhausted) => {}
            Ok(out) => {
                // Fast machines may finish the first solve before the
                // deadline check fires; then the result must be valid.
                assert_eq!(verify(&circuit, &graph, &out.result), Ok(()));
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn incumbent_published_on_every_improvement() {
        let circuit = triangle();
        let graph = line(3);
        let slot = crate::IncumbentSlot::new();
        let mut config = SynthesisConfig::with_swap_duration(1);
        config.incumbent = Some(slot.clone());
        let synth = Olsq2Synthesizer::new(config);
        let out = synth.optimize_depth(&circuit, &graph).expect("solves");
        // The last published incumbent is the returned optimum.
        let published = slot.peek().expect("published");
        assert_eq!(published.depth, out.result.depth);
        assert_eq!(verify(&circuit, &graph, &published), Ok(()));
    }

    #[test]
    fn preset_stop_flag_aborts_before_any_solution() {
        let circuit = triangle();
        let graph = line(3);
        let slot = crate::IncumbentSlot::new();
        let mut config = SynthesisConfig::with_swap_duration(1);
        config.incumbent = Some(slot.clone());
        config.stop_flag = Some(std::sync::Arc::new(std::sync::atomic::AtomicBool::new(
            true,
        )));
        let synth = Olsq2Synthesizer::new(config);
        match synth.optimize_depth(&circuit, &graph) {
            Err(SynthesisError::BudgetExhausted) => {}
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // Nothing was found, so nothing was published.
        assert!(slot.is_empty());
    }

    #[test]
    fn traced_run_records_iteration_spans() {
        let circuit = triangle();
        let graph = line(3);
        let rec = olsq2_obs::Recorder::new();
        let mut config = SynthesisConfig::with_swap_duration(1);
        config.recorder = rec.clone();
        let synth = Olsq2Synthesizer::new(config);
        let out = synth.optimize_swaps(&circuit, &graph).expect("solves");
        let snap = rec.snapshot();

        // One iteration span per solver invocation, each carrying its
        // bound, solve time, and result.
        let iters: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name == "iteration")
            .collect();
        assert_eq!(iters.len(), out.best.iterations);
        for it in &iters {
            assert!(it.fields.iter().any(|(k, _)| k == "t_bound"));
            assert!(it.fields.iter().any(|(k, _)| k == "solve_us"));
            assert!(it.fields.iter().any(|(k, _)| k == "result"));
            assert!(it.dur_us.is_some());
        }
        // Encode spans report the per-family breakdown.
        let enc = snap
            .spans
            .iter()
            .find(|s| s.name == "encode")
            .expect("encode span");
        assert!(enc.fields.iter().any(|(k, _)| k == "clauses.mapping"));
        assert!(enc.fields.iter().any(|(k, _)| k == "vars.transition"));
        // Hierarchy: iteration spans nest under the optimize spans.
        let outer_ids: Vec<u64> = snap
            .spans
            .iter()
            .filter(|s| s.name == "optimize_depth" || s.name == "optimize_swaps")
            .map(|s| s.id)
            .collect();
        assert!(!outer_ids.is_empty());
        for it in &iters {
            assert!(it.parent.is_some_and(|p| outer_ids.contains(&p)));
        }
        // The solver's telemetry flowed into shared counters.
        assert!(
            snap.counters.get("sat.solves").copied().unwrap_or(0) >= out.best.iterations as u64
        );
    }

    #[test]
    fn feasibility_solve_reports_formula_size() {
        let circuit = triangle();
        let graph = line(3);
        let synth = Olsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth
            .solve_feasible(&circuit, &graph, 8)
            .expect("no model error")
            .expect("no budget");
        assert!(out.formula_size.0 > 0);
        assert!(out.formula_size.1 > 0);
        assert_eq!(verify(&circuit, &graph, &out.result), Ok(()));
    }
}
