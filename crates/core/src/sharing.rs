//! The portfolio's clause-sharing medium: a sharded in-memory pool and
//! the per-member [`CohortEndpoint`] that implements the solver-side
//! [`ClauseExchange`] hooks.
//!
//! # Design
//!
//! [`SharedClausePool`] holds one bounded ring buffer per *producer*
//! member. A member publishes into its own shard (single writer per
//! shard, so publishing never contends with other producers) and each
//! consumer keeps a private cursor per foreign shard, so every clause is
//! delivered to every other member at most once. A shard-level atomic
//! sequence number lets consumers skip shards with nothing new without
//! taking the lock. All of it is `std` only: `Arc`, `Mutex`,
//! `AtomicU64` — no external dependencies.
//!
//! # Soundness fence
//!
//! Clauses are only valid between solvers over the *identical* variable
//! space, and cohort members do not keep identical spaces for free: the
//! optimization loops rebuild their model whenever the depth window
//! grows, and the bound machinery (cardinality networks, activation
//! literals) allocates variables in member-local order. The fence is:
//!
//! 1. Every model build computes a **space fingerprint** (hashing the
//!    encoding configuration, model style, and base variable count) and
//!    calls [`ClauseExchange::bind_space`] with it plus the build-time
//!    variable count.
//! 2. The endpoint refuses to export clauses mentioning variables
//!    allocated *after* build (activation literals, bound machinery) —
//!    those numberings are member-local.
//! 3. Published clauses carry the exporter's fingerprint; on import the
//!    endpoint drops clauses whose fingerprint differs from its own
//!    current one.
//!
//! So two members exchange clauses exactly while they demonstrably sit
//! on the same formula build, and go quiet (rather than unsound) when
//! their windows diverge.

use olsq2_obs::{Probe, Recorder, SampleSource, SearchSample};
use olsq2_sat::{ClauseExchange, Lit};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Aggregate clause-sharing volumes for a portfolio run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Clauses exported into the pool (passed the quality gate and the
    /// variable-space fence).
    pub exported: u64,
    /// Clauses delivered into importing solvers.
    pub imported: u64,
    /// Clauses dropped by the fence: unbound/foreign variable space,
    /// post-build variables, or evicted from a ring before delivery.
    pub filtered: u64,
}

/// One producer's ring buffer.
#[derive(Debug, Default)]
struct Shard {
    /// Sequence number of `items.front()`.
    start_seq: u64,
    /// `(space fingerprint, clause)` in publication order.
    items: VecDeque<(u64, Arc<[Lit]>)>,
    /// Clauses pushed out by capacity overflow.
    evicted: u64,
    /// Overflow evictions that some *active* consumer had not yet seen —
    /// the only evictions that actually lose sharing opportunities.
    evicted_unseen: u64,
    /// Entries dropped because every active consumer had already
    /// consumed them (cursor garbage collection, not data loss).
    pruned: u64,
}

/// Pool-side view of one member as a *consumer*: its delivery cursors
/// (mirrored from the endpoint after each drain) and whether it is still
/// participating. Members that exit early — cancelled portfolio losers,
/// refuted cubes — retire, so they stop counting as "lagging" in the
/// eviction accounting and stop holding back cursor garbage collection.
#[derive(Debug)]
struct ConsumerRow {
    active: AtomicBool,
    /// Per-shard position this consumer has consumed up to.
    cursors: Vec<AtomicU64>,
}

/// A shard with its lock-free "anything new?" watermark.
#[derive(Debug, Default)]
struct ShardCell {
    /// Next sequence number this shard will assign. Written with
    /// `Release` after the item is visible under the lock; readers check
    /// it with `Acquire` to skip locking idle shards.
    seq: AtomicU64,
    ring: Mutex<Shard>,
}

/// Sharded multi-producer multi-consumer clause pool.
///
/// Built once per same-encoding cohort by the portfolio driver; members
/// talk to it through their [`CohortEndpoint`].
#[derive(Debug)]
pub struct SharedClausePool {
    shards: Vec<ShardCell>,
    capacity: usize,
    /// One consumer row per member (a member consumes every shard but
    /// its own).
    consumers: Vec<ConsumerRow>,
}

impl SharedClausePool {
    /// A pool for `members` producers with `capacity` clauses per shard.
    pub fn new(members: usize, capacity: usize) -> SharedClausePool {
        assert!(capacity > 0, "shard capacity must be positive");
        SharedClausePool {
            shards: (0..members).map(|_| ShardCell::default()).collect(),
            capacity,
            consumers: (0..members)
                .map(|_| ConsumerRow {
                    active: AtomicBool::new(true),
                    cursors: (0..members).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
        }
    }

    /// Number of producer shards.
    pub fn num_members(&self) -> usize {
        self.shards.len()
    }

    /// Retires `member` as a consumer: its cursors stop holding back
    /// garbage collection of other members' rings and stop counting as
    /// "lagging" in the eviction accounting. Called when a member exits
    /// early (cancelled portfolio loser, refuted cube). Idempotent.
    pub fn retire(&self, member: usize) {
        self.consumers[member]
            .active
            .store(false, Ordering::Release);
    }

    /// Re-admits a retired `member` as a consumer (the cube engine
    /// retires workers at the end of every per-bound run and brings them
    /// back for the next bound). Sound at any time: the member's
    /// mirrored cursors only ever lag its real consumption, so turning
    /// them back on can only make the GC horizon more conservative; any
    /// clauses pruned or evicted while it was away are simply missed
    /// imports, never duplicates.
    pub fn reactivate(&self, member: usize) {
        self.consumers[member].active.store(true, Ordering::Release);
    }

    /// The lowest position any *active* foreign consumer still needs
    /// from `member`'s shard; `u64::MAX` when none is listening.
    fn seen_horizon(&self, member: usize) -> u64 {
        self.consumers
            .iter()
            .enumerate()
            .filter(|(c, row)| *c != member && row.active.load(Ordering::Acquire))
            .map(|(_, row)| row.cursors[member].load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Publishes a clause from `member` tagged with its space fingerprint.
    fn publish(&self, member: usize, space: u64, lits: &[Lit]) {
        let horizon = self.seen_horizon(member);
        let cell = &self.shards[member];
        let mut ring = cell.ring.lock().expect("pool shard poisoned");
        // Cursor GC: everything below the horizon has been consumed by
        // every consumer still participating (mirrored cursors only ever
        // lag real consumption, so this never drops an undelivered
        // clause).
        while !ring.items.is_empty() && ring.start_seq < horizon {
            ring.items.pop_front();
            ring.start_seq += 1;
            ring.pruned += 1;
        }
        if ring.items.len() == self.capacity {
            if ring.start_seq >= horizon {
                // An active consumer had not reached this clause yet.
                ring.evicted_unseen += 1;
            }
            ring.items.pop_front();
            ring.start_seq += 1;
            ring.evicted += 1;
        }
        ring.items.push_back((space, Arc::from(lits)));
        let next = ring.start_seq + ring.items.len() as u64;
        drop(ring);
        cell.seq.store(next, Ordering::Release);
    }

    /// Collects unseen clauses for `consumer` whose fingerprint matches
    /// `space`, advancing `cursors` (one per shard). Returns
    /// `(delivered, dropped)` counts; delivered clauses are appended to
    /// `out`.
    fn collect(
        &self,
        consumer: usize,
        space: u64,
        cursors: &mut [u64],
        out: &mut Vec<Vec<Lit>>,
    ) -> (u64, u64) {
        debug_assert_eq!(cursors.len(), self.shards.len());
        let (mut delivered, mut dropped) = (0u64, 0u64);
        for (i, cell) in self.shards.iter().enumerate() {
            if i == consumer {
                continue;
            }
            // Fast path: nothing published since our cursor.
            if cell.seq.load(Ordering::Acquire) <= cursors[i] {
                continue;
            }
            let ring = cell.ring.lock().expect("pool shard poisoned");
            if cursors[i] < ring.start_seq {
                // Evicted before we got to them.
                dropped += ring.start_seq - cursors[i];
                cursors[i] = ring.start_seq;
            }
            let skip = (cursors[i] - ring.start_seq) as usize;
            for (tag, clause) in ring.items.iter().skip(skip) {
                if *tag == space {
                    out.push(clause.to_vec());
                    delivered += 1;
                } else {
                    dropped += 1;
                }
            }
            cursors[i] = ring.start_seq + ring.items.len() as u64;
            drop(ring);
            // Mirror the position for the publish-side accounting/GC.
            // Stored after consumption, so the mirror only ever lags.
            self.consumers[consumer].cursors[i].store(cursors[i], Ordering::Release);
        }
        (delivered, dropped)
    }

    /// Total clauses pushed out of rings by capacity overflow.
    pub fn evicted(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.ring.lock().expect("pool shard poisoned").evicted)
            .sum()
    }

    /// Overflow evictions some *active* consumer had not yet seen — the
    /// evictions that actually lost a sharing opportunity. Evictions
    /// past only retired members' cursors do not count.
    pub fn evicted_unseen(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.ring.lock().expect("pool shard poisoned").evicted_unseen)
            .sum()
    }

    /// Ring entries reclaimed by cursor garbage collection (seen by every
    /// active consumer, or published with no active consumer left).
    pub fn pruned(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.ring.lock().expect("pool shard poisoned").pruned)
            .sum()
    }
}

/// One portfolio member's attachment to a [`SharedClausePool`].
///
/// Implements [`ClauseExchange`]: the solver's export path lands in the
/// member's own shard and its import path drains every other shard,
/// subject to the variable-space fence described in the
/// [module docs](self).
#[derive(Debug)]
pub struct CohortEndpoint {
    pool: Arc<SharedClausePool>,
    member: usize,
    /// Current space fingerprint (0 = not yet bound; exports dropped).
    space: AtomicU64,
    /// Build-time variable count; clauses mentioning variables at or
    /// above this were learned over member-local bound machinery and
    /// must not leave the solver.
    base_vars: AtomicUsize,
    /// Per-foreign-shard delivery cursors.
    cursors: Mutex<Vec<u64>>,
    /// Set once the member exits; exports and imports become no-ops.
    retired: AtomicBool,
    exported: AtomicU64,
    imported: AtomicU64,
    filtered: AtomicU64,
    recorder: Recorder,
    /// Flight-recorder probe; sharing-flow samples are tagged
    /// [`SampleSource::Sharing`].
    probe: Probe,
}

impl CohortEndpoint {
    /// Attaches member `member` to `pool`.
    pub fn new(pool: Arc<SharedClausePool>, member: usize, recorder: Recorder) -> CohortEndpoint {
        let shards = pool.num_members();
        assert!(member < shards, "member index out of range");
        CohortEndpoint {
            pool,
            member,
            space: AtomicU64::new(0),
            base_vars: AtomicUsize::new(0),
            cursors: Mutex::new(vec![0; shards]),
            retired: AtomicBool::new(false),
            exported: AtomicU64::new(0),
            imported: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
            recorder,
            probe: Probe::disabled(),
        }
    }

    /// Attaches a flight-recorder probe: every `probe.every()` shared
    /// clauses (exports plus imports) the endpoint records one
    /// [`SampleSource::Sharing`] sample carrying its cumulative flow
    /// counters.
    pub fn with_probe(mut self, probe: Probe) -> CohortEndpoint {
        self.probe = probe;
        self
    }

    /// Records a sharing-flow sample when the cumulative flow crosses
    /// the probe cadence. Search-side fields stay zero.
    fn maybe_flight_sample(&self) {
        let exported = self.exported.load(Ordering::Relaxed);
        let imported = self.imported.load(Ordering::Relaxed);
        if !self.probe.sample_due(exported + imported) {
            return;
        }
        self.probe.record(SearchSample {
            source: SampleSource::Sharing,
            exported,
            imported,
            ..SearchSample::default()
        });
    }

    /// Volumes seen by this endpoint so far.
    pub fn stats(&self) -> SharingStats {
        SharingStats {
            exported: self.exported.load(Ordering::Relaxed),
            imported: self.imported.load(Ordering::Relaxed),
            filtered: self.filtered.load(Ordering::Relaxed),
        }
    }

    /// Detaches this member from the pool: its consumer cursors are
    /// retired (see [`SharedClausePool::retire`]) and any further
    /// export/import through the endpoint becomes a no-op. Called when
    /// the member exits before the cohort does — a cancelled portfolio
    /// loser or a cube worker whose cubes are all refuted. Idempotent.
    pub fn retire(&self) {
        if !self.retired.swap(true, Ordering::AcqRel) {
            self.pool.retire(self.member);
        }
    }

    /// Re-admits a retired member, undoing [`CohortEndpoint::retire`].
    /// The cube engine retires every worker's endpoint when its run
    /// drains, then reactivates them at the next optimizer iteration so
    /// the same solvers (and the same pool) carry over. Sound because the
    /// member's delivery cursors were left in place: they only lag real
    /// consumption, so the pool's GC horizon stays conservative, and
    /// clauses evicted while retired are simply never imported (a missed
    /// import, never a duplicate). Idempotent.
    pub fn reactivate(&self) {
        if self.retired.swap(false, Ordering::AcqRel) {
            self.pool.reactivate(self.member);
        }
    }
}

impl ClauseExchange for CohortEndpoint {
    fn export(&self, lits: &[Lit], _lbd: u32) {
        if self.retired.load(Ordering::Acquire) {
            return;
        }
        let space = self.space.load(Ordering::Acquire);
        let base = self.base_vars.load(Ordering::Acquire);
        if space == 0 || lits.iter().any(|l| l.var().index() >= base) {
            // Unbound space, or the clause leans on post-build variables
            // (activation literals / bound machinery) whose numbering is
            // member-local.
            self.filtered.fetch_add(1, Ordering::Relaxed);
            if self.recorder.is_enabled() {
                self.recorder.add("portfolio.clauses_filtered", 1);
            }
            return;
        }
        self.pool.publish(self.member, space, lits);
        self.exported.fetch_add(1, Ordering::Relaxed);
        if self.recorder.is_enabled() {
            self.recorder.add("portfolio.clauses_exported", 1);
        }
        self.maybe_flight_sample();
    }

    fn import_into(&self, out: &mut Vec<Vec<Lit>>) {
        if self.retired.load(Ordering::Acquire) {
            return;
        }
        let space = self.space.load(Ordering::Acquire);
        if space == 0 {
            return;
        }
        let mut cursors = self.cursors.lock().expect("cursor lock poisoned");
        let (delivered, dropped) = self.pool.collect(self.member, space, &mut cursors, out);
        drop(cursors);
        self.imported.fetch_add(delivered, Ordering::Relaxed);
        self.filtered.fetch_add(dropped, Ordering::Relaxed);
        if self.recorder.is_enabled() {
            if delivered > 0 {
                self.recorder.add("portfolio.clauses_imported", delivered);
            }
            if dropped > 0 {
                self.recorder.add("portfolio.clauses_filtered", dropped);
            }
        }
        if delivered > 0 {
            self.maybe_flight_sample();
        }
    }

    fn bind_space(&self, fingerprint: u64, num_vars: usize) {
        self.base_vars.store(num_vars, Ordering::Release);
        self.space.store(fingerprint, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::Var;

    fn lit(v: usize) -> Lit {
        Lit::positive(Var::from_index(v))
    }

    #[test]
    fn clauses_flow_between_bound_members_once() {
        let pool = Arc::new(SharedClausePool::new(2, 16));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool, 1, Recorder::disabled());
        a.bind_space(0xABCD, 10);
        b.bind_space(0xABCD, 10);
        a.export(&[lit(1), lit(2)], 2);
        let mut got = Vec::new();
        b.import_into(&mut got);
        assert_eq!(got, vec![vec![lit(1), lit(2)]]);
        // Delivered at most once.
        got.clear();
        b.import_into(&mut got);
        assert!(got.is_empty());
        // Exporter never hears its own clause back.
        got.clear();
        a.import_into(&mut got);
        assert!(got.is_empty());
        assert_eq!(a.stats().exported, 1);
        assert_eq!(b.stats().imported, 1);
    }

    #[test]
    fn unbound_and_foreign_space_clauses_are_fenced() {
        let pool = Arc::new(SharedClausePool::new(2, 16));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool, 1, Recorder::disabled());
        // Unbound exporter: nothing leaves.
        a.export(&[lit(0)], 1);
        assert_eq!(a.stats().exported, 0);
        assert_eq!(a.stats().filtered, 1);
        // Bound, but b sits on a different formula build.
        a.bind_space(0x1111, 10);
        b.bind_space(0x2222, 10);
        a.export(&[lit(0)], 1);
        let mut got = Vec::new();
        b.import_into(&mut got);
        assert!(got.is_empty());
        assert_eq!(b.stats().imported, 0);
        assert_eq!(b.stats().filtered, 1);
        // b catches up to the same build: later clauses flow again.
        b.bind_space(0x1111, 10);
        a.export(&[lit(3)], 1);
        b.import_into(&mut got);
        assert_eq!(got, vec![vec![lit(3)]]);
    }

    #[test]
    fn post_build_variables_never_leave_the_solver() {
        let pool = Arc::new(SharedClausePool::new(2, 16));
        let a = CohortEndpoint::new(pool, 0, Recorder::disabled());
        a.bind_space(0x7, 5);
        a.export(&[lit(4)], 1); // in-space: ok
        a.export(&[lit(5)], 1); // activation-literal territory: fenced
        assert_eq!(a.stats().exported, 1);
        assert_eq!(a.stats().filtered, 1);
    }

    #[test]
    fn ring_eviction_counts_as_dropped_for_lagging_consumers() {
        let pool = Arc::new(SharedClausePool::new(2, 2));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool.clone(), 1, Recorder::disabled());
        a.bind_space(0x7, 10);
        b.bind_space(0x7, 10);
        for v in 0..5 {
            a.export(&[lit(v)], 1);
        }
        let mut got = Vec::new();
        b.import_into(&mut got);
        // Capacity 2: only the two newest survive; three were evicted.
        assert_eq!(got, vec![vec![lit(3)], vec![lit(4)]]);
        assert_eq!(b.stats().imported, 2);
        assert_eq!(b.stats().filtered, 3);
        assert_eq!(pool.evicted(), 3);
    }

    #[test]
    fn retired_consumers_stop_holding_back_cursor_gc() {
        let pool = Arc::new(SharedClausePool::new(2, 2));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool.clone(), 1, Recorder::disabled());
        a.bind_space(0x7, 10);
        b.bind_space(0x7, 10);
        // b never imports, so its cursor pins a's ring at first.
        a.export(&[lit(0)], 1);
        a.export(&[lit(1)], 1);
        assert_eq!(pool.evicted(), 0);
        b.retire();
        b.retire(); // idempotent
                    // With no active consumer left, publishes reclaim old entries via
                    // GC instead of recording capacity evictions against anyone.
        for v in 2..5 {
            a.export(&[lit(v)], 1);
        }
        assert_eq!(pool.pruned(), 4);
        assert_eq!(pool.evicted(), 0);
        assert_eq!(pool.evicted_unseen(), 0);
        // The retired endpoint is a full no-op in both directions.
        let mut got = Vec::new();
        b.import_into(&mut got);
        assert!(got.is_empty());
        b.export(&[lit(9)], 1);
        assert_eq!(b.stats(), SharingStats::default());
        got.clear();
        a.import_into(&mut got);
        assert!(got.is_empty());
    }

    #[test]
    fn reactivated_consumers_resume_imports_from_their_cursor() {
        let pool = Arc::new(SharedClausePool::new(2, 16));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool.clone(), 1, Recorder::disabled());
        a.bind_space(0x7, 10);
        b.bind_space(0x7, 10);
        a.export(&[lit(0)], 1);
        let mut got = Vec::new();
        b.import_into(&mut got);
        assert_eq!(got.len(), 1);
        // Retired: both directions go quiet, and GC no longer waits on b.
        b.retire();
        a.export(&[lit(1)], 1);
        got.clear();
        b.import_into(&mut got);
        assert!(got.is_empty());
        // Reactivated (idempotent): the next iteration's traffic flows
        // again from b's standing cursor — no duplicates of lit(0).
        b.reactivate();
        b.reactivate();
        a.export(&[lit(2)], 1);
        got.clear();
        b.import_into(&mut got);
        assert!(got.iter().all(|c| c != &vec![lit(0)]));
        assert!(got.contains(&vec![lit(2)]));
        b.export(&[lit(3)], 1);
        got.clear();
        a.import_into(&mut got);
        assert_eq!(got, vec![vec![lit(3)]]);
    }

    #[test]
    fn eviction_accounting_separates_unseen_losses_from_gc() {
        let pool = Arc::new(SharedClausePool::new(2, 2));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool.clone(), 1, Recorder::disabled());
        a.bind_space(0x7, 10);
        b.bind_space(0x7, 10);
        // b is active but lagging: the third export overflows capacity
        // past b's cursor — a real lost sharing opportunity.
        for v in 0..3 {
            a.export(&[lit(v)], 1);
        }
        assert_eq!(pool.evicted(), 1);
        assert_eq!(pool.evicted_unseen(), 1);
        assert_eq!(pool.pruned(), 0);
        // Once b drains, its mirrored cursor lets later publishes reclaim
        // the consumed entries as GC rather than evictions.
        let mut got = Vec::new();
        b.import_into(&mut got);
        assert_eq!(got.len(), 2);
        assert_eq!(b.stats().filtered, 1);
        a.export(&[lit(3)], 1);
        a.export(&[lit(4)], 1);
        assert_eq!(pool.pruned(), 2);
        assert_eq!(pool.evicted(), 1);
        assert_eq!(pool.evicted_unseen(), 1);
    }

    #[test]
    fn concurrent_publish_and_collect_lose_nothing_when_capacity_suffices() {
        let n = 4;
        let per = 200;
        let pool = Arc::new(SharedClausePool::new(n, n * per));
        let endpoints: Vec<_> = (0..n)
            .map(|i| {
                let e = CohortEndpoint::new(pool.clone(), i, Recorder::disabled());
                e.bind_space(0x99, 1000);
                Arc::new(e)
            })
            .collect();
        std::thread::scope(|s| {
            for (i, e) in endpoints.iter().enumerate() {
                let e = e.clone();
                s.spawn(move || {
                    let mut got = Vec::new();
                    for k in 0..per {
                        e.export(&[lit(i * per + k)], 1);
                        if k % 16 == 0 {
                            e.import_into(&mut got);
                        }
                    }
                });
            }
        });
        // After the dust settles every member can drain the others fully.
        for e in &endpoints {
            let mut got = Vec::new();
            e.import_into(&mut got);
            let st = e.stats();
            assert_eq!(st.exported, per as u64);
            assert_eq!(st.imported, ((n - 1) * per) as u64);
            assert_eq!(st.filtered, 0);
        }
    }
}
