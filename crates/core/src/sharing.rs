//! The portfolio's clause-sharing medium: a sharded in-memory pool and
//! the per-member [`CohortEndpoint`] that implements the solver-side
//! [`ClauseExchange`] hooks.
//!
//! # Design
//!
//! [`SharedClausePool`] holds one bounded ring buffer per *producer*
//! member. A member publishes into its own shard (single writer per
//! shard, so publishing never contends with other producers) and each
//! consumer keeps a private cursor per foreign shard, so every clause is
//! delivered to every other member at most once. A shard-level atomic
//! sequence number lets consumers skip shards with nothing new without
//! taking the lock. All of it is `std` only: `Arc`, `Mutex`,
//! `AtomicU64` — no external dependencies.
//!
//! # Soundness fence
//!
//! Clauses are only valid between solvers over the *identical* variable
//! space, and cohort members do not keep identical spaces for free: the
//! optimization loops rebuild their model whenever the depth window
//! grows, and the bound machinery (cardinality networks, activation
//! literals) allocates variables in member-local order. The fence is:
//!
//! 1. Every model build computes a **space fingerprint** (hashing the
//!    encoding configuration, model style, and base variable count) and
//!    calls [`ClauseExchange::bind_space`] with it plus the build-time
//!    variable count.
//! 2. The endpoint refuses to export clauses mentioning variables
//!    allocated *after* build (activation literals, bound machinery) —
//!    those numberings are member-local.
//! 3. Published clauses carry the exporter's fingerprint; on import the
//!    endpoint drops clauses whose fingerprint differs from its own
//!    current one.
//!
//! So two members exchange clauses exactly while they demonstrably sit
//! on the same formula build, and go quiet (rather than unsound) when
//! their windows diverge.

use olsq2_obs::Recorder;
use olsq2_sat::{ClauseExchange, Lit};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Aggregate clause-sharing volumes for a portfolio run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Clauses exported into the pool (passed the quality gate and the
    /// variable-space fence).
    pub exported: u64,
    /// Clauses delivered into importing solvers.
    pub imported: u64,
    /// Clauses dropped by the fence: unbound/foreign variable space,
    /// post-build variables, or evicted from a ring before delivery.
    pub filtered: u64,
}

/// One producer's ring buffer.
#[derive(Debug, Default)]
struct Shard {
    /// Sequence number of `items.front()`.
    start_seq: u64,
    /// `(space fingerprint, clause)` in publication order.
    items: VecDeque<(u64, Arc<[Lit]>)>,
    /// Clauses evicted before every consumer saw them.
    evicted: u64,
}

/// A shard with its lock-free "anything new?" watermark.
#[derive(Debug, Default)]
struct ShardCell {
    /// Next sequence number this shard will assign. Written with
    /// `Release` after the item is visible under the lock; readers check
    /// it with `Acquire` to skip locking idle shards.
    seq: AtomicU64,
    ring: Mutex<Shard>,
}

/// Sharded multi-producer multi-consumer clause pool.
///
/// Built once per same-encoding cohort by the portfolio driver; members
/// talk to it through their [`CohortEndpoint`].
#[derive(Debug)]
pub struct SharedClausePool {
    shards: Vec<ShardCell>,
    capacity: usize,
}

impl SharedClausePool {
    /// A pool for `members` producers with `capacity` clauses per shard.
    pub fn new(members: usize, capacity: usize) -> SharedClausePool {
        assert!(capacity > 0, "shard capacity must be positive");
        SharedClausePool {
            shards: (0..members).map(|_| ShardCell::default()).collect(),
            capacity,
        }
    }

    /// Number of producer shards.
    pub fn num_members(&self) -> usize {
        self.shards.len()
    }

    /// Publishes a clause from `member` tagged with its space fingerprint.
    fn publish(&self, member: usize, space: u64, lits: &[Lit]) {
        let cell = &self.shards[member];
        let mut ring = cell.ring.lock().expect("pool shard poisoned");
        if ring.items.len() == self.capacity {
            ring.items.pop_front();
            ring.start_seq += 1;
            ring.evicted += 1;
        }
        ring.items.push_back((space, Arc::from(lits)));
        let next = ring.start_seq + ring.items.len() as u64;
        drop(ring);
        cell.seq.store(next, Ordering::Release);
    }

    /// Collects unseen clauses for `consumer` whose fingerprint matches
    /// `space`, advancing `cursors` (one per shard). Returns
    /// `(delivered, dropped)` counts; delivered clauses are appended to
    /// `out`.
    fn collect(
        &self,
        consumer: usize,
        space: u64,
        cursors: &mut [u64],
        out: &mut Vec<Vec<Lit>>,
    ) -> (u64, u64) {
        debug_assert_eq!(cursors.len(), self.shards.len());
        let (mut delivered, mut dropped) = (0u64, 0u64);
        for (i, cell) in self.shards.iter().enumerate() {
            if i == consumer {
                continue;
            }
            // Fast path: nothing published since our cursor.
            if cell.seq.load(Ordering::Acquire) <= cursors[i] {
                continue;
            }
            let ring = cell.ring.lock().expect("pool shard poisoned");
            if cursors[i] < ring.start_seq {
                // Evicted before we got to them.
                dropped += ring.start_seq - cursors[i];
                cursors[i] = ring.start_seq;
            }
            let skip = (cursors[i] - ring.start_seq) as usize;
            for (tag, clause) in ring.items.iter().skip(skip) {
                if *tag == space {
                    out.push(clause.to_vec());
                    delivered += 1;
                } else {
                    dropped += 1;
                }
            }
            cursors[i] = ring.start_seq + ring.items.len() as u64;
        }
        (delivered, dropped)
    }

    /// Total clauses evicted from rings before every consumer saw them.
    pub fn evicted(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.ring.lock().expect("pool shard poisoned").evicted)
            .sum()
    }
}

/// One portfolio member's attachment to a [`SharedClausePool`].
///
/// Implements [`ClauseExchange`]: the solver's export path lands in the
/// member's own shard and its import path drains every other shard,
/// subject to the variable-space fence described in the
/// [module docs](self).
#[derive(Debug)]
pub struct CohortEndpoint {
    pool: Arc<SharedClausePool>,
    member: usize,
    /// Current space fingerprint (0 = not yet bound; exports dropped).
    space: AtomicU64,
    /// Build-time variable count; clauses mentioning variables at or
    /// above this were learned over member-local bound machinery and
    /// must not leave the solver.
    base_vars: AtomicUsize,
    /// Per-foreign-shard delivery cursors.
    cursors: Mutex<Vec<u64>>,
    exported: AtomicU64,
    imported: AtomicU64,
    filtered: AtomicU64,
    recorder: Recorder,
}

impl CohortEndpoint {
    /// Attaches member `member` to `pool`.
    pub fn new(pool: Arc<SharedClausePool>, member: usize, recorder: Recorder) -> CohortEndpoint {
        let shards = pool.num_members();
        assert!(member < shards, "member index out of range");
        CohortEndpoint {
            pool,
            member,
            space: AtomicU64::new(0),
            base_vars: AtomicUsize::new(0),
            cursors: Mutex::new(vec![0; shards]),
            exported: AtomicU64::new(0),
            imported: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
            recorder,
        }
    }

    /// Volumes seen by this endpoint so far.
    pub fn stats(&self) -> SharingStats {
        SharingStats {
            exported: self.exported.load(Ordering::Relaxed),
            imported: self.imported.load(Ordering::Relaxed),
            filtered: self.filtered.load(Ordering::Relaxed),
        }
    }
}

impl ClauseExchange for CohortEndpoint {
    fn export(&self, lits: &[Lit], _lbd: u32) {
        let space = self.space.load(Ordering::Acquire);
        let base = self.base_vars.load(Ordering::Acquire);
        if space == 0 || lits.iter().any(|l| l.var().index() >= base) {
            // Unbound space, or the clause leans on post-build variables
            // (activation literals / bound machinery) whose numbering is
            // member-local.
            self.filtered.fetch_add(1, Ordering::Relaxed);
            if self.recorder.is_enabled() {
                self.recorder.add("portfolio.clauses_filtered", 1);
            }
            return;
        }
        self.pool.publish(self.member, space, lits);
        self.exported.fetch_add(1, Ordering::Relaxed);
        if self.recorder.is_enabled() {
            self.recorder.add("portfolio.clauses_exported", 1);
        }
    }

    fn import_into(&self, out: &mut Vec<Vec<Lit>>) {
        let space = self.space.load(Ordering::Acquire);
        if space == 0 {
            return;
        }
        let mut cursors = self.cursors.lock().expect("cursor lock poisoned");
        let (delivered, dropped) = self.pool.collect(self.member, space, &mut cursors, out);
        drop(cursors);
        self.imported.fetch_add(delivered, Ordering::Relaxed);
        self.filtered.fetch_add(dropped, Ordering::Relaxed);
        if self.recorder.is_enabled() {
            if delivered > 0 {
                self.recorder.add("portfolio.clauses_imported", delivered);
            }
            if dropped > 0 {
                self.recorder.add("portfolio.clauses_filtered", dropped);
            }
        }
    }

    fn bind_space(&self, fingerprint: u64, num_vars: usize) {
        self.base_vars.store(num_vars, Ordering::Release);
        self.space.store(fingerprint, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::Var;

    fn lit(v: usize) -> Lit {
        Lit::positive(Var::from_index(v))
    }

    #[test]
    fn clauses_flow_between_bound_members_once() {
        let pool = Arc::new(SharedClausePool::new(2, 16));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool, 1, Recorder::disabled());
        a.bind_space(0xABCD, 10);
        b.bind_space(0xABCD, 10);
        a.export(&[lit(1), lit(2)], 2);
        let mut got = Vec::new();
        b.import_into(&mut got);
        assert_eq!(got, vec![vec![lit(1), lit(2)]]);
        // Delivered at most once.
        got.clear();
        b.import_into(&mut got);
        assert!(got.is_empty());
        // Exporter never hears its own clause back.
        got.clear();
        a.import_into(&mut got);
        assert!(got.is_empty());
        assert_eq!(a.stats().exported, 1);
        assert_eq!(b.stats().imported, 1);
    }

    #[test]
    fn unbound_and_foreign_space_clauses_are_fenced() {
        let pool = Arc::new(SharedClausePool::new(2, 16));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool, 1, Recorder::disabled());
        // Unbound exporter: nothing leaves.
        a.export(&[lit(0)], 1);
        assert_eq!(a.stats().exported, 0);
        assert_eq!(a.stats().filtered, 1);
        // Bound, but b sits on a different formula build.
        a.bind_space(0x1111, 10);
        b.bind_space(0x2222, 10);
        a.export(&[lit(0)], 1);
        let mut got = Vec::new();
        b.import_into(&mut got);
        assert!(got.is_empty());
        assert_eq!(b.stats().imported, 0);
        assert_eq!(b.stats().filtered, 1);
        // b catches up to the same build: later clauses flow again.
        b.bind_space(0x1111, 10);
        a.export(&[lit(3)], 1);
        b.import_into(&mut got);
        assert_eq!(got, vec![vec![lit(3)]]);
    }

    #[test]
    fn post_build_variables_never_leave_the_solver() {
        let pool = Arc::new(SharedClausePool::new(2, 16));
        let a = CohortEndpoint::new(pool, 0, Recorder::disabled());
        a.bind_space(0x7, 5);
        a.export(&[lit(4)], 1); // in-space: ok
        a.export(&[lit(5)], 1); // activation-literal territory: fenced
        assert_eq!(a.stats().exported, 1);
        assert_eq!(a.stats().filtered, 1);
    }

    #[test]
    fn ring_eviction_counts_as_dropped_for_lagging_consumers() {
        let pool = Arc::new(SharedClausePool::new(2, 2));
        let a = CohortEndpoint::new(pool.clone(), 0, Recorder::disabled());
        let b = CohortEndpoint::new(pool.clone(), 1, Recorder::disabled());
        a.bind_space(0x7, 10);
        b.bind_space(0x7, 10);
        for v in 0..5 {
            a.export(&[lit(v)], 1);
        }
        let mut got = Vec::new();
        b.import_into(&mut got);
        // Capacity 2: only the two newest survive; three were evicted.
        assert_eq!(got, vec![vec![lit(3)], vec![lit(4)]]);
        assert_eq!(b.stats().imported, 2);
        assert_eq!(b.stats().filtered, 3);
        assert_eq!(pool.evicted(), 3);
    }

    #[test]
    fn concurrent_publish_and_collect_lose_nothing_when_capacity_suffices() {
        let n = 4;
        let per = 200;
        let pool = Arc::new(SharedClausePool::new(n, n * per));
        let endpoints: Vec<_> = (0..n)
            .map(|i| {
                let e = CohortEndpoint::new(pool.clone(), i, Recorder::disabled());
                e.bind_space(0x99, 1000);
                Arc::new(e)
            })
            .collect();
        std::thread::scope(|s| {
            for (i, e) in endpoints.iter().enumerate() {
                let e = e.clone();
                s.spawn(move || {
                    let mut got = Vec::new();
                    for k in 0..per {
                        e.export(&[lit(i * per + k)], 1);
                        if k % 16 == 0 {
                            e.import_into(&mut got);
                        }
                    }
                });
            }
        });
        // After the dust settles every member can drain the others fully.
        for e in &endpoints {
            let mut got = Vec::new();
            e.import_into(&mut got);
            let st = e.stats();
            assert_eq!(st.exported, per as u64);
            assert_eq!(st.imported, ((n - 1) * per) as u64);
            assert_eq!(st.filtered, 0);
        }
    }
}
