//! Best-so-far incumbent reporting.
//!
//! The optimization loops of §III-B improve a feasible solution step by
//! step; when a caller imposes a wall-clock deadline, the loop may be cut
//! off between improvements. An [`IncumbentSlot`] is a small shared cell
//! the synthesizers publish every intermediate solution into, so an outer
//! driver (the portfolio, the service layer's deadline enforcement) can
//! recover the best solution found so far instead of losing the whole run
//! — graceful degradation rather than an error.
//!
//! The slot is cheap to clone and thread-safe; install one via
//! [`crate::SynthesisConfig::incumbent`].
//!
//! # Examples
//!
//! ```
//! use olsq2::{IncumbentSlot, Olsq2Synthesizer, SynthesisConfig};
//! use olsq2_arch::line;
//! use olsq2_circuit::{Circuit, Gate, GateKind};
//!
//! let mut circuit = Circuit::new(3);
//! circuit.push(Gate::two(GateKind::Cx, 0, 1));
//! circuit.push(Gate::two(GateKind::Cx, 1, 2));
//! let slot = IncumbentSlot::new();
//! let mut config = SynthesisConfig::with_swap_duration(1);
//! config.incumbent = Some(slot.clone());
//! let synth = Olsq2Synthesizer::new(config);
//! let out = synth.optimize_depth(&circuit, &line(3)).unwrap();
//! // The final solution was published on the way out.
//! assert_eq!(slot.peek().unwrap().depth, out.result.depth);
//! ```

use olsq2_layout::LayoutResult;
use std::sync::{Arc, Mutex};

/// A thread-safe cell holding the most recent intermediate solution of an
/// optimization run.
#[derive(Debug, Clone, Default)]
pub struct IncumbentSlot {
    inner: Arc<Mutex<Option<LayoutResult>>>,
}

impl IncumbentSlot {
    /// Creates an empty slot.
    pub fn new() -> IncumbentSlot {
        IncumbentSlot::default()
    }

    /// Publishes a new incumbent. The optimization loops only ever move to
    /// solutions at least as good under their objective, so the latest
    /// publication is the best one.
    pub fn publish(&self, result: &LayoutResult) {
        *self.inner.lock().expect("incumbent lock") = Some(result.clone());
    }

    /// A copy of the current incumbent, if any was published.
    pub fn peek(&self) -> Option<LayoutResult> {
        self.inner.lock().expect("incumbent lock").clone()
    }

    /// Removes and returns the current incumbent.
    pub fn take(&self) -> Option<LayoutResult> {
        self.inner.lock().expect("incumbent lock").take()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("incumbent lock").is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(depth: usize) -> LayoutResult {
        LayoutResult {
            initial_mapping: vec![0, 1],
            schedule: vec![0],
            swaps: vec![],
            depth,
            swap_duration: 1,
        }
    }

    #[test]
    fn publish_peek_take_roundtrip() {
        let slot = IncumbentSlot::new();
        assert!(slot.is_empty());
        assert_eq!(slot.peek(), None);
        slot.publish(&dummy(4));
        slot.publish(&dummy(3)); // latest wins
        assert_eq!(slot.peek().unwrap().depth, 3);
        assert!(!slot.is_empty());
        assert_eq!(slot.take().unwrap().depth, 3);
        assert!(slot.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let slot = IncumbentSlot::new();
        let other = slot.clone();
        slot.publish(&dummy(7));
        assert_eq!(other.peek().unwrap().depth, 7);
    }

    #[test]
    fn concurrent_publish_and_take_observe_improving_incumbents() {
        // A publisher thread plays the optimization loop: it only ever
        // publishes improvements (depth strictly decreasing). A consumer
        // taking concurrently must therefore observe a strictly
        // decreasing sequence of depths — takes can skip incumbents but
        // never go back in time.
        let slot = IncumbentSlot::new();
        let publisher = {
            let slot = slot.clone();
            std::thread::spawn(move || {
                for depth in (1..=100).rev() {
                    slot.publish(&dummy(depth));
                }
            })
        };
        let mut observed: Vec<usize> = Vec::new();
        loop {
            if let Some(result) = slot.take() {
                observed.push(result.depth);
                if result.depth == 1 {
                    break;
                }
            }
            if publisher.is_finished() && slot.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        publisher.join().expect("publisher thread");
        assert!(!observed.is_empty(), "at least one incumbent seen");
        assert!(
            observed.windows(2).all(|w| w[0] > w[1]),
            "takes must never observe a stale (worse) incumbent: {observed:?}"
        );
    }

    #[test]
    fn deadline_recovery_takes_the_last_published_incumbent() {
        // The service's deadline path: the loop published a few
        // improvements before the budget fired, and recovery must hand
        // back exactly the latest one — full result, not just its depth.
        let slot = IncumbentSlot::new();
        slot.publish(&dummy(9));
        slot.publish(&dummy(6));
        let mut best = dummy(5);
        best.initial_mapping = vec![1, 0];
        slot.publish(&best);
        let recovered = slot.take().expect("incumbent available at deadline");
        assert_eq!(recovered, best);
        // Nothing left behind: a second recovery attempt finds the slot
        // empty rather than a stale duplicate.
        assert_eq!(slot.take(), None);
    }
}
