//! TB-OLSQ2 — the transition-based, coarse-grained model (§III-D).
//!
//! Time is abstracted into *blocks* separated by mapping transitions: a
//! mapping `π_q^b` per block, a block index `t_g` per gate, and SWAP
//! variables `σ_e^b` on the transition after block `b`. Dependent gates may
//! share a block (the dependency becomes `t_g ≤ t_g'`), SWAPs never overlap
//! gates (they live between blocks, so Eq. 2–3 vanish), and each transition
//! is one layer of SWAPs on disjoint edges. The objective is block count or
//! SWAP count; results are lowered back to a time-resolved
//! [`LayoutResult`] by list-scheduling each block.

// Indexed `for` loops are deliberate here: block/edge index loops mirror the paper's formulation.
#![allow(clippy::needless_range_loop)]
use crate::config::{MappingEncoding, SynthesisConfig};
use crate::model::ModelError;
use crate::optimize::{result_str, Olsq2Synthesizer, SynthesisError, SynthesisOutcome};
use crate::vars::{FdVar, TimeVars};
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, DependencyGraph, Operands};
use olsq2_encode::{
    at_most_one, gates, CardinalityNetwork, CnfSink, ConstraintFamily, FamilyTally,
};
use olsq2_layout::{LayoutResult, SwapOp};
use olsq2_sat::{Lit, SolveResult, Solver};
use std::collections::HashMap;
use std::time::Instant;

/// The transition-based model over a fixed block window.
#[derive(Debug)]
struct TransitionModel {
    solver: Solver,
    /// `mapping[q][b]`.
    mapping: Vec<Vec<FdVar>>,
    time: TimeVars,
    /// `swap_lits[e][b]` for transitions `b` in `0..blocks-1`.
    swap_lits: Vec<Vec<Lit>>,
    blocks: usize,
    block_bounds: HashMap<usize, Lit>,
    swap_card: Option<CardinalityNetwork>,
    num_gates: usize,
    tally: FamilyTally,
    /// Current window-generation guard (incremental builds only); every
    /// solve assumes it, and [`TransitionModel::extend_blocks`] retires it.
    window_guard: Option<Lit>,
    /// Number of in-place block-window extensions performed.
    extensions: usize,
    /// Running hash of post-build lazy allocations (see `FlatModel`).
    alloc_history: u64,
}

impl TransitionModel {
    fn build(
        circuit: &Circuit,
        graph: &CouplingGraph,
        config: &SynthesisConfig,
        blocks: usize,
    ) -> Result<TransitionModel, ModelError> {
        let nq = circuit.num_qubits();
        let np = graph.num_qubits();
        if circuit.num_gates() == 0 {
            return Err(ModelError::EmptyCircuit);
        }
        if nq > np {
            return Err(ModelError::TooManyQubits {
                program: nq,
                physical: np,
            });
        }
        if !graph.is_connected() && nq > 1 {
            return Err(ModelError::DisconnectedDevice);
        }
        let blocks = blocks.max(1);
        let mut solver = Solver::new();
        solver.set_features(config.solver_features);
        let enc = config.encoding;
        let ne = graph.num_edges();
        let mut tally = FamilyTally::new();
        let mut mark = tally.mark(&solver);

        let new_mapping_var = |s: &mut Solver| match enc.mapping {
            MappingEncoding::OneHot | MappingEncoding::InverseOneHot => {
                FdVar::new_onehot(s, np, enc.amo)
            }
            MappingEncoding::Binary => FdVar::new_binary(s, np),
        };
        let mut mapping: Vec<Vec<FdVar>> = (0..nq)
            .map(|_| (0..blocks).map(|_| new_mapping_var(&mut solver)).collect())
            .collect();

        // Injectivity per block.
        match enc.mapping {
            MappingEncoding::OneHot => {
                for b in 0..blocks {
                    for p in 0..np {
                        let sels: Vec<Lit> = (0..nq)
                            .map(|q| mapping[q][b].eq_lit(&mut solver, p))
                            .collect();
                        at_most_one(&mut solver, &sels, enc.amo);
                    }
                }
            }
            MappingEncoding::Binary => {
                for b in 0..blocks {
                    for q1 in 0..nq {
                        for q2 in (q1 + 1)..nq {
                            let diffs: Vec<Lit> = mapping[q1][b]
                                .raw_lits()
                                .iter()
                                .zip(mapping[q2][b].raw_lits())
                                .map(|(&x, y)| gates::xor_lit(&mut solver, x, y))
                                .collect();
                            let diff = gates::or_all(&mut solver, &diffs);
                            solver.add_clause([diff]);
                        }
                    }
                }
            }
            MappingEncoding::InverseOneHot => {
                for b in 0..blocks {
                    let mut inv: Vec<FdVar> = (0..np)
                        .map(|_| FdVar::new_onehot(&mut solver, nq + 1, enc.amo))
                        .collect();
                    for q in 0..nq {
                        for p in 0..np {
                            let m = mapping[q][b].eq_lit(&mut solver, p);
                            let i = inv[p].eq_lit(&mut solver, q);
                            solver.add_clause([!m, i]);
                            solver.add_clause([!i, m]);
                        }
                    }
                }
            }
        }

        mark = tally.credit_since(ConstraintFamily::Mapping, &solver, mark);

        // Block-index variables; dependencies are non-strict (gates may
        // share a block).
        let dag = if config.commutation_aware {
            DependencyGraph::new_with_commutation(circuit)
        } else {
            DependencyGraph::new(circuit)
        };
        // Guarded block-index domains allow the block window to grow in
        // place (see [`TransitionModel::extend_blocks`]).
        let window_guard = config
            .incremental
            .then(|| Lit::positive(CnfSink::new_var(&mut solver)));
        let mut time = TimeVars::new(
            &mut solver,
            circuit.num_gates(),
            blocks,
            enc.time,
            enc.amo,
            window_guard,
        );
        for &(g, g2) in dag.dependencies() {
            time.assert_before_or_equal(&mut solver, g, g2);
        }

        mark = tally.credit_since(ConstraintFamily::Dependency, &solver, mark);

        // Transition SWAPs: one layer per transition, disjoint edges.
        let swap_lits: Vec<Vec<Lit>> = (0..ne)
            .map(|_| {
                (0..blocks.saturating_sub(1))
                    .map(|_| Lit::positive(CnfSink::new_var(&mut solver)))
                    .collect()
            })
            .collect();
        for e1 in 0..ne {
            let (a1, b1) = graph.edge(e1);
            for e2 in (e1 + 1)..ne {
                let (a2, b2) = graph.edge(e2);
                let shares = a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2;
                if !shares {
                    continue;
                }
                for b in 0..blocks.saturating_sub(1) {
                    solver.add_clause([!swap_lits[e1][b], !swap_lits[e2][b]]);
                }
            }
        }

        mark = tally.credit_since(ConstraintFamily::Swap, &solver, mark);

        // Adjacency inside blocks (Eq. 1 on block mappings).
        let mut adj_cache: HashMap<(u16, u16, usize), Lit> = HashMap::new();
        for (g, gate) in circuit.gates().iter().enumerate() {
            if let Operands::Two(q1, q2) = gate.operands {
                let (qa, qb) = (q1.min(q2), q1.max(q2));
                for b in 0..blocks {
                    let adj = match adj_cache.get(&(qa, qb, b)) {
                        Some(&l) => l,
                        None => {
                            let mut pair_lits = Vec::with_capacity(2 * ne);
                            for e in 0..ne {
                                let (pa, pb) = graph.edge(e);
                                for (x, y) in [(pa, pb), (pb, pa)] {
                                    let la =
                                        mapping[qa as usize][b].eq_lit(&mut solver, x as usize);
                                    let lb =
                                        mapping[qb as usize][b].eq_lit(&mut solver, y as usize);
                                    pair_lits.push(gates::and_lit(&mut solver, la, lb));
                                }
                            }
                            let l = gates::or_all(&mut solver, &pair_lits);
                            adj_cache.insert((qa, qb, b), l);
                            l
                        }
                    };
                    let mut clause = time.var(g).neq_clause(b);
                    clause.push(adj);
                    solver.add_clause(clause);
                }
            }
        }

        mark = tally.credit_since(ConstraintFamily::Scheduling, &solver, mark);

        // Mapping transformation between consecutive blocks.
        for b in 0..blocks.saturating_sub(1) {
            for q in 0..nq {
                for p in 0..np {
                    let incident = graph.edges_at(p as u16);
                    let antecedent = mapping[q][b].neq_clause(p);
                    for &bit in &mapping[q][b + 1].eq_conj(p) {
                        let mut clause = antecedent.clone();
                        clause.extend(incident.iter().map(|&e| swap_lits[e][b]));
                        clause.push(bit);
                        solver.add_clause(clause);
                    }
                }
                for e in 0..ne {
                    let (pa, pb) = graph.edge(e);
                    for (from, to) in [(pa, pb), (pb, pa)] {
                        let antecedent = mapping[q][b].neq_clause(from as usize);
                        for &bit in &mapping[q][b + 1].eq_conj(to as usize) {
                            let mut clause = Vec::with_capacity(antecedent.len() + 2);
                            clause.push(!swap_lits[e][b]);
                            clause.extend(antecedent.iter().copied());
                            clause.push(bit);
                            solver.add_clause(clause);
                        }
                    }
                }
            }
        }

        tally.credit_since(ConstraintFamily::Transition, &solver, mark);

        // Structure-aware seeding: same rationale as the flat model —
        // prefer the all-false polarity inside one-hot groups and on the
        // transition SWAP layer, and point the first decisions at block 0.
        if config.solver_features.structure_seeding {
            if matches!(
                enc.mapping,
                MappingEncoding::OneHot | MappingEncoding::InverseOneHot
            ) {
                for per_b in &mapping {
                    for fd in per_b {
                        for l in fd.raw_lits() {
                            solver.set_saved_phase(l.var(), false);
                        }
                    }
                    for l in per_b[0].raw_lits() {
                        solver.boost_activity(l.var(), 1.0);
                    }
                }
            }
            for per_b in &swap_lits {
                for &sl in per_b {
                    solver.set_saved_phase(sl.var(), false);
                }
            }
        }

        config.diversification.apply(&mut solver);
        // Everything past the build is bound-machinery: activation
        // literals, cardinality counters, window-growth variables. Clauses
        // over them encode cross-solve (and, under sharing, cross-member)
        // contracts, so inprocessing must leave them exactly as written.
        solver.set_inprocess_floor(solver.num_vars());
        if let Some(exchange) = &config.clause_exchange {
            // Same fence as FlatModel, under a distinct style tag so
            // transition-based formulas never mix with flat ones even if
            // their sizes coincide.
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            "olsq2.transition".hash(&mut h);
            blocks.hash(&mut h);
            config.swap_duration.hash(&mut h);
            enc.hash(&mut h);
            solver.num_vars().hash(&mut h);
            solver.num_clauses().hash(&mut h);
            exchange.bind_space(h.finish() | 1, solver.num_vars());
            solver.set_exchange_filter(config.exchange_filter);
            solver.set_exchange(Some(exchange.clone()));
        }

        Ok(TransitionModel {
            solver,
            mapping,
            time,
            swap_lits,
            blocks,
            block_bounds: HashMap::new(),
            swap_card: None,
            num_gates: circuit.num_gates(),
            tally,
            window_guard,
            extensions: 0,
            alloc_history: 0,
        })
    }

    /// Grows the block window to `new_blocks` in place — the transition
    /// analogue of `FlatModel::extend_window`. Appends per-block mapping
    /// variables, transition SWAP layers, adjacency, and mapping
    /// transformation for the new blocks onto the live solver; block-index
    /// variables move to a new guard generation and recorded dependencies
    /// are re-emitted for the new values. Returns `false` (caller rebuilds)
    /// for non-incremental builds or a binary block index needing a wider
    /// bit-vector.
    fn extend_blocks(
        &mut self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        config: &SynthesisConfig,
        new_blocks: usize,
    ) -> bool {
        let Some(old_guard) = self.window_guard else {
            return false;
        };
        let new_blocks = new_blocks.max(1);
        assert!(new_blocks >= self.blocks, "block windows only grow");
        if new_blocks == self.blocks {
            return true;
        }
        let old_blocks = self.blocks;
        let nq = self.mapping.len();
        let np = graph.num_qubits();
        let ne = graph.num_edges();
        let enc = config.encoding;

        // --- Block-index variables: new guard generation ------------------
        let mut mark = self.tally.mark(&self.solver);
        let new_guard = Lit::positive(CnfSink::new_var(&mut self.solver));
        if !self.time.extend(&mut self.solver, new_blocks, new_guard) {
            return false; // binary width grew: caller rebuilds
        }
        mark = self
            .tally
            .credit_since(ConstraintFamily::Dependency, &self.solver, mark);

        // --- Mapping variables + injectivity for the new blocks -----------
        for q in 0..nq {
            for _ in old_blocks..new_blocks {
                let var = match enc.mapping {
                    MappingEncoding::OneHot | MappingEncoding::InverseOneHot => {
                        FdVar::new_onehot(&mut self.solver, np, enc.amo)
                    }
                    MappingEncoding::Binary => FdVar::new_binary(&mut self.solver, np),
                };
                self.mapping[q].push(var);
            }
        }
        match enc.mapping {
            MappingEncoding::OneHot => {
                for b in old_blocks..new_blocks {
                    for p in 0..np {
                        let sels: Vec<Lit> = (0..nq)
                            .map(|q| self.mapping[q][b].eq_lit(&mut self.solver, p))
                            .collect();
                        at_most_one(&mut self.solver, &sels, enc.amo);
                    }
                }
            }
            MappingEncoding::Binary => {
                for b in old_blocks..new_blocks {
                    for q1 in 0..nq {
                        for q2 in (q1 + 1)..nq {
                            let diffs: Vec<Lit> = self.mapping[q1][b]
                                .raw_lits()
                                .iter()
                                .zip(self.mapping[q2][b].raw_lits())
                                .map(|(&x, y)| gates::xor_lit(&mut self.solver, x, y))
                                .collect();
                            let diff = gates::or_all(&mut self.solver, &diffs);
                            self.solver.add_clause([diff]);
                        }
                    }
                }
            }
            MappingEncoding::InverseOneHot => {
                for b in old_blocks..new_blocks {
                    let mut inv: Vec<FdVar> = (0..np)
                        .map(|_| FdVar::new_onehot(&mut self.solver, nq + 1, enc.amo))
                        .collect();
                    for q in 0..nq {
                        for p in 0..np {
                            let m = self.mapping[q][b].eq_lit(&mut self.solver, p);
                            let i = inv[p].eq_lit(&mut self.solver, q);
                            self.solver.add_clause([!m, i]);
                            self.solver.add_clause([!i, m]);
                        }
                    }
                }
            }
        }
        mark = self
            .tally
            .credit_since(ConstraintFamily::Mapping, &self.solver, mark);

        // --- New transition SWAP layers (indices old_blocks-1..new_blocks-1)
        for e in 0..ne {
            for _ in (old_blocks - 1)..(new_blocks - 1) {
                let l = Lit::positive(CnfSink::new_var(&mut self.solver));
                self.swap_lits[e].push(l);
            }
        }
        for e1 in 0..ne {
            let (a1, b1) = graph.edge(e1);
            for e2 in (e1 + 1)..ne {
                let (a2, b2) = graph.edge(e2);
                let shares = a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2;
                if !shares {
                    continue;
                }
                for b in (old_blocks - 1)..(new_blocks - 1) {
                    self.solver
                        .add_clause([!self.swap_lits[e1][b], !self.swap_lits[e2][b]]);
                }
            }
        }
        mark = self
            .tally
            .credit_since(ConstraintFamily::Swap, &self.solver, mark);

        // --- Adjacency inside the new blocks (Eq. 1) ----------------------
        let mut adj_cache: HashMap<(u16, u16, usize), Lit> = HashMap::new();
        for (g, gate) in circuit.gates().iter().enumerate() {
            if let Operands::Two(q1, q2) = gate.operands {
                let (qa, qb) = (q1.min(q2), q1.max(q2));
                for b in old_blocks..new_blocks {
                    let adj = match adj_cache.get(&(qa, qb, b)) {
                        Some(&l) => l,
                        None => {
                            let mut pair_lits = Vec::with_capacity(2 * ne);
                            for e in 0..ne {
                                let (pa, pb) = graph.edge(e);
                                for (x, y) in [(pa, pb), (pb, pa)] {
                                    let la = self.mapping[qa as usize][b]
                                        .eq_lit(&mut self.solver, x as usize);
                                    let lb = self.mapping[qb as usize][b]
                                        .eq_lit(&mut self.solver, y as usize);
                                    pair_lits.push(gates::and_lit(&mut self.solver, la, lb));
                                }
                            }
                            let l = gates::or_all(&mut self.solver, &pair_lits);
                            adj_cache.insert((qa, qb, b), l);
                            l
                        }
                    };
                    let mut clause = self.time.var(g).neq_clause(b);
                    clause.push(adj);
                    self.solver.add_clause(clause);
                }
            }
        }
        mark = self
            .tally
            .credit_since(ConstraintFamily::Scheduling, &self.solver, mark);

        // --- Mapping transformation across the seam and new blocks --------
        for b in (old_blocks - 1)..(new_blocks - 1) {
            for q in 0..nq {
                for p in 0..np {
                    let incident = graph.edges_at(p as u16);
                    let antecedent = self.mapping[q][b].neq_clause(p);
                    for &bit in &self.mapping[q][b + 1].eq_conj(p) {
                        let mut clause = antecedent.clone();
                        clause.extend(incident.iter().map(|&e| self.swap_lits[e][b]));
                        clause.push(bit);
                        self.solver.add_clause(clause);
                    }
                }
                for e in 0..ne {
                    let (pa, pb) = graph.edge(e);
                    for (from, to) in [(pa, pb), (pb, pa)] {
                        let antecedent = self.mapping[q][b].neq_clause(from as usize);
                        for &bit in &self.mapping[q][b + 1].eq_conj(to as usize) {
                            let mut clause = Vec::with_capacity(antecedent.len() + 2);
                            clause.push(!self.swap_lits[e][b]);
                            clause.extend(antecedent.iter().copied());
                            clause.push(bit);
                            self.solver.add_clause(clause);
                        }
                    }
                }
            }
        }
        mark = self
            .tally
            .credit_since(ConstraintFamily::Transition, &self.solver, mark);

        // --- Patch cached block-bound activations -------------------------
        // Every cached bound has k ≤ old window, so all new transition
        // layers lie at or beyond k-1 and must be forbidden under it; new
        // block-index values likewise (one-hot only — binary comparators
        // cover the full width). The symmetry clauses reference only
        // transitions below k-1, which predate the extension.
        let mut block_acts: Vec<(usize, Lit)> =
            self.block_bounds.iter().map(|(&k, &a)| (k, a)).collect();
        block_acts.sort_unstable_by_key(|&(k, _)| k);
        for &(_, act) in &block_acts {
            if enc.time == crate::config::TimeEncoding::OneHot {
                for g in 0..self.num_gates {
                    self.time.var_mut(g).forbid_range_if(
                        &mut self.solver,
                        old_blocks..new_blocks,
                        Some(act),
                    );
                }
            }
            for e in 0..ne {
                for b in (old_blocks - 1)..(new_blocks - 1) {
                    let l = self.swap_lits[e][b];
                    self.solver.add_clause([!act, !l]);
                }
            }
        }
        if let Some(card) = &mut self.swap_card {
            let new_inputs: Vec<Lit> = (0..ne)
                .flat_map(|e| self.swap_lits[e][(old_blocks - 1)..].iter().copied())
                .collect();
            let invalidated = card.extend(&mut self.solver, &new_inputs);
            for l in invalidated {
                self.solver.add_clause([!l]);
            }
        }
        self.tally
            .credit_since(ConstraintFamily::Cardinality, &self.solver, mark);

        // --- Generation flip ----------------------------------------------
        self.solver.add_clause([!old_guard]);
        self.solver.simplify();
        self.window_guard = Some(new_guard);
        self.blocks = new_blocks;
        self.extensions += 1;
        self.note_alloc(3, new_blocks);
        self.rebind_exchange(config);
        true
    }

    /// Folds a post-build lazy allocation event into the history hash.
    fn note_alloc(&mut self, tag: u64, key: usize) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.alloc_history.hash(&mut h);
        tag.hash(&mut h);
        key.hash(&mut h);
        self.alloc_history = h.finish();
    }

    /// Re-binds the clause-sharing fence after an extension (see
    /// `FlatModel::rebind_exchange`): variable count + allocation history
    /// pin the space; clause counts are member-divergent and excluded.
    fn rebind_exchange(&mut self, config: &SynthesisConfig) {
        if let Some(exchange) = &config.clause_exchange {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            "olsq2.transition.extended".hash(&mut h);
            self.blocks.hash(&mut h);
            config.swap_duration.hash(&mut h);
            config.encoding.hash(&mut h);
            self.extensions.hash(&mut h);
            self.solver.num_vars().hash(&mut h);
            self.alloc_history.hash(&mut h);
            exchange.bind_space(h.finish() | 1, self.solver.num_vars());
        }
    }

    /// Solves under the given assumptions plus the active window guard.
    fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        let result = match self.window_guard {
            None => self.solver.solve(assumptions),
            Some(g) => {
                let mut with_guard = Vec::with_capacity(assumptions.len() + 1);
                with_guard.extend_from_slice(assumptions);
                with_guard.push(g);
                self.solver.solve(&with_guard)
            }
        };
        // Steer subsequent (tighter) solves toward the incumbent layout.
        if result == SolveResult::Sat && self.solver.features().target_phase {
            self.solver.adopt_model_targets();
        }
        result
    }

    /// Activation literal for "exactly `k` blocks are used": all gates in
    /// blocks `0..k`, no SWAP on transitions `k-1..`, and — the paper's
    /// symmetry breaking behind its early termination rule — every live
    /// transition carries at least one SWAP (a solution with an empty
    /// transition is identical to one with fewer blocks, which the search
    /// has already covered).
    fn block_bound(&mut self, k: usize) -> Lit {
        assert!(k >= 1 && k <= self.blocks);
        if let Some(&l) = self.block_bounds.get(&k) {
            return l;
        }
        let mark = self.tally.mark(&self.solver);
        let act = Lit::positive(CnfSink::new_var(&mut self.solver));
        for g in 0..self.num_gates {
            self.time
                .var_mut(g)
                .assert_le_if(&mut self.solver, k - 1, Some(act));
        }
        for row in &self.swap_lits {
            for &l in row.iter().skip(k.saturating_sub(1)) {
                self.solver.add_clause([!act, !l]);
            }
        }
        for b in 0..k.saturating_sub(1) {
            let mut clause = vec![!act];
            clause.extend(self.swap_lits.iter().map(|row| row[b]));
            self.solver.add_clause(clause);
        }
        self.tally
            .credit_since(ConstraintFamily::Cardinality, &self.solver, mark);
        self.block_bounds.insert(k, act);
        self.note_alloc(1, k);
        act
    }

    fn swap_bound(&mut self, k: usize, capacity: usize, enc: olsq2_encode::CardEncoding) -> Lit {
        let mark = self.tally.mark(&self.solver);
        if self.swap_card.is_none() {
            let inputs: Vec<Lit> = self
                .swap_lits
                .iter()
                .flat_map(|row| row.iter().copied())
                .collect();
            self.swap_card = Some(CardinalityNetwork::new(
                &mut self.solver,
                &inputs,
                capacity,
                enc,
            ));
        }
        let act = self
            .swap_card
            .as_mut()
            .expect("just built")
            .at_most(&mut self.solver, k);
        self.tally
            .credit_since(ConstraintFamily::Cardinality, &self.solver, mark);
        self.note_alloc(2, k.wrapping_mul(65_537).wrapping_add(capacity));
        act
    }

    /// Decodes `(block mapping, per-gate block, transition swaps)`.
    fn decode(&self, circuit: &Circuit) -> TbSolution {
        let blocks = self.blocks;
        let mapping: Vec<Vec<u16>> = (0..blocks)
            .map(|b| {
                self.mapping
                    .iter()
                    .map(|per_b| per_b[b].value_in(&self.solver) as u16)
                    .collect()
            })
            .collect();
        let gate_block: Vec<usize> = (0..circuit.num_gates())
            .map(|g| self.time.value_in(&self.solver, g))
            .collect();
        let swaps: Vec<Vec<usize>> = (0..blocks.saturating_sub(1))
            .map(|b| {
                self.swap_lits
                    .iter()
                    .enumerate()
                    .filter(|(_, row)| self.solver.model_value(row[b]) == Some(true))
                    .map(|(e, _)| e)
                    .collect()
            })
            .collect();
        TbSolution {
            mapping,
            gate_block,
            swaps,
        }
    }
}

/// A decoded transition-based solution before lowering.
#[derive(Debug, Clone)]
struct TbSolution {
    /// `mapping[b][q]` per block.
    mapping: Vec<Vec<u16>>,
    /// Block index per gate.
    gate_block: Vec<usize>,
    /// Edge indices swapped at each transition.
    swaps: Vec<Vec<usize>>,
}

impl TbSolution {
    fn swap_count(&self) -> usize {
        self.swaps.iter().map(Vec::len).sum()
    }

    fn used_blocks(&self) -> usize {
        self.gate_block.iter().copied().max().unwrap_or(0) + 1
    }

    /// Lowers to a time-resolved [`LayoutResult`]: list-schedule each block
    /// ASAP, then place the transition's SWAP layer after it.
    fn lower(&self, circuit: &Circuit, swap_duration: usize) -> LayoutResult {
        let sd = swap_duration.max(1);
        let blocks = self.used_blocks();
        let mut schedule = vec![0usize; circuit.num_gates()];
        let mut swaps = Vec::new();
        let mut cursor = 0usize;
        let mut qubit_ready = vec![0usize; circuit.num_qubits()];
        for b in 0..blocks {
            let mut block_end = cursor;
            for (g, gate) in circuit.gates().iter().enumerate() {
                if self.gate_block[g] != b {
                    continue;
                }
                let start = gate
                    .operands
                    .qubits()
                    .map(|q| qubit_ready[q as usize])
                    .max()
                    .unwrap_or(cursor)
                    .max(cursor);
                schedule[g] = start;
                for q in gate.operands.qubits() {
                    qubit_ready[q as usize] = start + 1;
                }
                block_end = block_end.max(start + 1);
            }
            cursor = block_end;
            if b + 1 < blocks {
                let layer = &self.swaps[b];
                if !layer.is_empty() {
                    let finish = cursor + sd - 1;
                    for &e in layer {
                        swaps.push(SwapOp {
                            edge: e,
                            finish_time: finish,
                        });
                    }
                    cursor = finish + 1;
                }
                for r in &mut qubit_ready {
                    *r = (*r).max(cursor);
                }
            }
        }
        let depth = schedule
            .iter()
            .copied()
            .chain(swaps.iter().map(|s| s.finish_time))
            .max()
            .unwrap_or(0)
            + 1;
        LayoutResult {
            initial_mapping: self.mapping[0].clone(),
            schedule,
            swaps,
            depth,
            swap_duration: sd,
        }
    }
}

/// Outcome of a TB-OLSQ2 run.
#[derive(Debug, Clone)]
pub struct TbOutcome {
    /// The lowered, time-resolved result.
    pub outcome: SynthesisOutcome,
    /// Number of blocks in the solution.
    pub block_count: usize,
}

/// The TB-OLSQ2 synthesizer (transition-based, near-optimal SWAP count).
///
/// # Examples
///
/// ```
/// use olsq2::{TbOlsq2Synthesizer, SynthesisConfig};
/// use olsq2_arch::line;
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// use olsq2_layout::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(3);
/// circuit.push(Gate::two(GateKind::Cx, 0, 1));
/// circuit.push(Gate::two(GateKind::Cx, 1, 2));
/// circuit.push(Gate::two(GateKind::Cx, 0, 2));
/// let graph = line(3);
/// let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
/// let out = synth.optimize_swaps(&circuit, &graph)?;
/// assert_eq!(out.outcome.result.swap_count(), 1);
/// assert_eq!(verify(&circuit, &graph, &out.outcome.result), Ok(()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TbOlsq2Synthesizer {
    config: SynthesisConfig,
}

impl TbOlsq2Synthesizer {
    /// Creates a TB synthesizer.
    pub fn new(config: SynthesisConfig) -> TbOlsq2Synthesizer {
        TbOlsq2Synthesizer { config }
    }

    fn deadline(&self) -> Option<Instant> {
        self.config.time_budget.map(|b| Instant::now() + b)
    }

    fn arm(&self, model: &mut TransitionModel, deadline: Option<Instant>) {
        model.solver.set_deadline(deadline);
        model
            .solver
            .set_conflict_budget(self.config.conflict_budget);
        model.solver.set_stop_flag(self.config.stop_flag.clone());
    }

    /// Builds the transition model under an `encode` span carrying the
    /// per-family formula breakdown, and installs the recorder in the
    /// solver.
    fn build_model(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        blocks: usize,
    ) -> Result<TransitionModel, ModelError> {
        let span = self.config.recorder.span("encode");
        span.set("blocks", blocks);
        let mut model = TransitionModel::build(circuit, graph, &self.config, blocks)?;
        if self.config.recorder.is_enabled() {
            span.set("vars", model.solver.num_vars());
            span.set("clauses", model.solver.num_clauses());
            for (fam, c) in model.tally.iter() {
                span.set(fam.vars_key(), c.vars);
                span.set(fam.clauses_key(), c.clauses);
            }
        }
        model.solver.set_recorder(self.config.recorder.clone());
        model.solver.set_probe(self.config.probe.clone());
        Ok(model)
    }

    /// Grows `model` to `blocks` — in place via
    /// [`TransitionModel::extend_blocks`] when the incremental path applies,
    /// otherwise by rebuilding from scratch.
    fn grow_model(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        model: &mut TransitionModel,
        blocks: usize,
    ) -> Result<(), ModelError> {
        if self.config.incremental {
            let span = self.config.recorder.span("extend");
            span.set("blocks", blocks);
            let vars_before = model.solver.num_vars();
            let clauses_before = model.solver.num_clauses();
            let extend_start = Instant::now();
            if model.extend_blocks(circuit, graph, &self.config, blocks) {
                span.set("extend_us", extend_start.elapsed().as_micros() as u64);
                span.set("appended_vars", model.solver.num_vars() - vars_before);
                span.set(
                    "appended_clauses",
                    model.solver.num_clauses().saturating_sub(clauses_before),
                );
                return Ok(());
            }
            span.set("result", "rebuild");
        }
        *model = self.build_model(circuit, graph, blocks)?;
        Ok(())
    }

    /// Opens one `iteration` span tagged with the active bounds.
    fn iteration_span(&self, objective: &str, bounds: &[(&str, usize)]) -> olsq2_obs::SpanGuard {
        let span = self.config.recorder.span("iteration");
        span.set("objective", objective);
        for &(k, v) in bounds {
            span.set(k, v);
        }
        span
    }

    /// Publishes a lowered intermediate solution to the configured
    /// incumbent slot (see [`crate::IncumbentSlot`]).
    fn publish_incumbent(&self, result: &olsq2_layout::LayoutResult) {
        if let Some(slot) = &self.config.incumbent {
            slot.publish(result);
        }
    }

    /// Minimizes the block count: start at 1 block, increase by 1 until
    /// SAT (§III-D).
    ///
    /// # Errors
    ///
    /// Standard [`SynthesisError`] conditions.
    pub fn optimize_blocks(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<TbOutcome, SynthesisError> {
        let start = Instant::now();
        let deadline = self.deadline();
        let outer = self.config.recorder.span("tb_optimize_blocks");
        let mut window = 4usize;
        let mut model = self.build_model(circuit, graph, window)?;
        let mut iterations = 0usize;
        let mut k = 1usize;
        loop {
            if k > window {
                window = (window * 2).min(circuit.num_gates().max(4));
                if k > window {
                    return Err(SynthesisError::WindowExhausted);
                }
                self.grow_model(circuit, graph, &mut model, window)?;
            }
            let span = self.iteration_span("blocks", &[("block_bound", k)]);
            let encode_start = Instant::now();
            let act = model.block_bound(k);
            span.set("encode_us", encode_start.elapsed().as_micros() as u64);
            self.arm(&mut model, deadline);
            iterations += 1;
            let stats_before = model.solver.stats();
            let solve_start = Instant::now();
            let res = model.solve(&[act]);
            span.set("solve_us", solve_start.elapsed().as_micros() as u64);
            span.set("result", result_str(res));
            Olsq2Synthesizer::set_iteration_deltas(&span, stats_before, model.solver.stats());
            drop(span);
            match res {
                SolveResult::Sat => {
                    let sol = model.decode(circuit);
                    let result = sol.lower(circuit, self.config.swap_duration);
                    self.publish_incumbent(&result);
                    outer.set("iterations", iterations);
                    return Ok(TbOutcome {
                        outcome: SynthesisOutcome {
                            result,
                            proven_optimal: true, // monotone: k-1 was UNSAT
                            iterations,
                            elapsed: start.elapsed(),
                            formula_size: (model.solver.num_vars(), model.solver.num_clauses()),
                            solver_stats: model.solver.stats(),
                            extensions: model.extensions,
                        },
                        block_count: sol.used_blocks(),
                    });
                }
                SolveResult::Unsat => k += 1,
                SolveResult::Unknown => return Err(SynthesisError::BudgetExhausted),
            }
        }
    }

    /// SWAP-count optimization over the transition model: block-optimal
    /// first, then iterative descent; relax the block count when the
    /// optimum under the current count is proven; stop early when
    /// `S = blocks - 1` (each transition needs at least one SWAP).
    ///
    /// # Errors
    ///
    /// Standard [`SynthesisError`] conditions.
    pub fn optimize_swaps(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<TbOutcome, SynthesisError> {
        let start = Instant::now();
        let deadline = self.deadline();
        let outer = self.config.recorder.span("tb_optimize_swaps");
        let first = self.optimize_blocks(circuit, graph)?;
        let mut iterations = first.outcome.iterations;
        let mut blocks = first.block_count;
        let mut window = blocks.max(2);
        let mut model = self.build_model(circuit, graph, window)?;
        let mut best_sol: Option<TbSolution> = None;
        let mut best_count = first.outcome.result.swap_count();
        let capacity = best_count.max(1);
        let mut proven;
        let mut relax_rounds = 0usize;

        'outer: loop {
            // Descend at the current block count.
            loop {
                if best_count == 0 || best_count <= blocks.saturating_sub(1) {
                    // Cannot go below blocks-1 at this block count.
                    proven = true;
                    break;
                }
                let span = self.iteration_span(
                    "swaps",
                    &[
                        ("block_bound", blocks.min(window)),
                        ("swap_bound", best_count - 1),
                    ],
                );
                let encode_start = Instant::now();
                let act_b = model.block_bound(blocks.min(window));
                let act_s =
                    model.swap_bound(best_count - 1, capacity, self.config.encoding.cardinality);
                span.set("encode_us", encode_start.elapsed().as_micros() as u64);
                self.arm(&mut model, deadline);
                iterations += 1;
                let stats_before = model.solver.stats();
                let solve_start = Instant::now();
                let res = model.solve(&[act_b, act_s]);
                span.set("solve_us", solve_start.elapsed().as_micros() as u64);
                span.set("result", result_str(res));
                Olsq2Synthesizer::set_iteration_deltas(&span, stats_before, model.solver.stats());
                drop(span);
                match res {
                    SolveResult::Sat => {
                        let sol = model.decode(circuit);
                        best_count = sol.swap_count();
                        self.publish_incumbent(&sol.lower(circuit, self.config.swap_duration));
                        best_sol = Some(sol);
                    }
                    SolveResult::Unsat => {
                        proven = true;
                        break;
                    }
                    SolveResult::Unknown => {
                        proven = false;
                        break 'outer;
                    }
                }
            }
            if best_count == 0 {
                break;
            }
            // Early termination (§III-D): at b+1 blocks every solution has
            // at least b SWAPs (one per transition), so relaxing cannot
            // beat a count of ≤ b.
            if best_count <= blocks {
                proven = true;
                break;
            }
            if let Some(limit) = self.config.pareto_relax_limit {
                if relax_rounds >= limit {
                    break;
                }
            }
            relax_rounds += 1;
            // Relax the block count by one and try to do better.
            let new_blocks = blocks + 1;
            if new_blocks > window {
                window = new_blocks;
                self.grow_model(circuit, graph, &mut model, window)?;
            }
            let span = self.iteration_span(
                "swaps",
                &[("block_bound", new_blocks), ("swap_bound", best_count - 1)],
            );
            let encode_start = Instant::now();
            let act_b = model.block_bound(new_blocks);
            let act_s =
                model.swap_bound(best_count - 1, capacity, self.config.encoding.cardinality);
            span.set("encode_us", encode_start.elapsed().as_micros() as u64);
            self.arm(&mut model, deadline);
            iterations += 1;
            let stats_before = model.solver.stats();
            let solve_start = Instant::now();
            let res = model.solve(&[act_b, act_s]);
            span.set("solve_us", solve_start.elapsed().as_micros() as u64);
            span.set("result", result_str(res));
            Olsq2Synthesizer::set_iteration_deltas(&span, stats_before, model.solver.stats());
            drop(span);
            match res {
                SolveResult::Sat => {
                    let sol = model.decode(circuit);
                    best_count = sol.swap_count();
                    self.publish_incumbent(&sol.lower(circuit, self.config.swap_duration));
                    best_sol = Some(sol);
                    blocks = new_blocks;
                }
                SolveResult::Unsat => {
                    proven = true;
                    break;
                }
                SolveResult::Unknown => {
                    proven = false;
                    break;
                }
            }
        }

        let (result, block_count) = match best_sol {
            Some(sol) => {
                let bc = sol.used_blocks();
                (sol.lower(circuit, self.config.swap_duration), bc)
            }
            None => (first.outcome.result.clone(), first.block_count),
        };
        outer.set("iterations", iterations);
        outer.set("proven_optimal", proven);
        Ok(TbOutcome {
            outcome: SynthesisOutcome {
                result,
                proven_optimal: proven,
                iterations,
                elapsed: start.elapsed(),
                formula_size: (model.solver.num_vars(), model.solver.num_clauses()),
                solver_stats: model.solver.stats(),
                extensions: model.extensions,
            },
            block_count,
        })
    }

    /// Builds a model with a fixed block window and solves once under the
    /// given SWAP bound — the Table II measurement for TB-OLSQ2(CNF).
    ///
    /// # Errors
    ///
    /// Propagates model errors; `Ok(None)` if the budget expired.
    pub fn solve_feasible(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        blocks: usize,
        swap_bound: Option<usize>,
    ) -> Result<Option<SynthesisOutcome>, SynthesisError> {
        let start = Instant::now();
        let outer = self.config.recorder.span("tb_solve_feasible");
        outer.set("blocks", blocks);
        let mut model = self.build_model(circuit, graph, blocks)?;
        let mut assumptions = Vec::new();
        if let Some(k) = swap_bound {
            assumptions.push(model.swap_bound(k, k, self.config.encoding.cardinality));
        }
        self.arm(&mut model, self.deadline());
        let span = self.iteration_span("feasible", &[("block_bound", blocks)]);
        let stats_before = model.solver.stats();
        let solve_start = Instant::now();
        let res = model.solve(&assumptions);
        span.set("solve_us", solve_start.elapsed().as_micros() as u64);
        span.set("result", result_str(res));
        Olsq2Synthesizer::set_iteration_deltas(&span, stats_before, model.solver.stats());
        drop(span);
        match res {
            SolveResult::Sat => {
                let sol = model.decode(circuit);
                let result = sol.lower(circuit, self.config.swap_duration);
                self.publish_incumbent(&result);
                Ok(Some(SynthesisOutcome {
                    result,
                    proven_optimal: false,
                    iterations: 1,
                    elapsed: start.elapsed(),
                    formula_size: (model.solver.num_vars(), model.solver.num_clauses()),
                    solver_stats: model.solver.stats(),
                    extensions: model.extensions,
                }))
            }
            SolveResult::Unsat => Err(SynthesisError::WindowExhausted),
            SolveResult::Unknown => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_arch::{grid, line};
    use olsq2_circuit::{Gate, GateKind};
    use olsq2_layout::verify;

    fn triangle() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c.push(Gate::two(GateKind::Cx, 0, 2));
        c
    }

    #[test]
    fn tb_block_optimal_on_triangle() {
        let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth
            .optimize_blocks(&triangle(), &line(3))
            .expect("solves");
        // The triangle needs two blocks on a line (one transition).
        assert_eq!(out.block_count, 2);
        assert_eq!(verify(&triangle(), &line(3), &out.outcome.result), Ok(()));
    }

    #[test]
    fn tb_swap_optimal_on_triangle() {
        let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth.optimize_swaps(&triangle(), &line(3)).expect("solves");
        assert_eq!(out.outcome.result.swap_count(), 1);
        assert!(out.outcome.proven_optimal);
        assert_eq!(verify(&triangle(), &line(3), &out.outcome.result), Ok(()));
    }

    #[test]
    fn tb_zero_swaps_when_embeddable() {
        let mut circuit = Circuit::new(4);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit.push(Gate::two(GateKind::Cx, 2, 3));
        let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
        let out = synth.optimize_swaps(&circuit, &grid(2, 2)).expect("solves");
        assert_eq!(out.outcome.result.swap_count(), 0);
        assert_eq!(out.block_count, 1);
        assert_eq!(verify(&circuit, &grid(2, 2), &out.outcome.result), Ok(()));
    }

    #[test]
    fn tb_lowering_respects_dependencies_in_one_block() {
        // Three dependent gates all fit one block (they are chained on the
        // same qubits) — lowering must serialize them.
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 0));
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(3));
        let out = synth.optimize_swaps(&circuit, &line(2)).expect("solves");
        assert_eq!(out.block_count, 1);
        assert_eq!(out.outcome.result.depth, 3);
        assert_eq!(verify(&circuit, &line(2), &out.outcome.result), Ok(()));
    }

    #[test]
    fn tb_feasibility_probe() {
        let synth = TbOlsq2Synthesizer::new(SynthesisConfig::with_swap_duration(1));
        let out = synth
            .solve_feasible(&triangle(), &line(3), 3, Some(2))
            .expect("no model error")
            .expect("in budget");
        assert!(out.result.swap_count() <= 2);
        assert_eq!(verify(&triangle(), &line(3), &out.result), Ok(()));
    }
}
