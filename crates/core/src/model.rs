//! The OLSQ2 flat (time-resolved) model — the paper's §III formulation.
//!
//! Variables (§III-A-1):
//! * mapping `π_q^t` — finite-domain over physical qubits, per program
//!   qubit and time step;
//! * time `t_g` — finite-domain over `0..T_UB`, per gate;
//! * SWAP `σ_e^t` — Boolean, true iff a SWAP on edge `e` *finishes* at `t`.
//!
//! There are **no space variables**: gate positions are implied by mapping
//! and time variables (Improvement 1). Constraints follow §II-A/§III-A-2:
//! injectivity, dependencies, two-qubit adjacency (Eq. 1), SWAP/gate
//! overlap (Eq. 2–3), SWAP/SWAP exclusion, and mapping transformation.
//! Objective bounds are attached through activation literals so the
//! optimization loops of §III-B stay incremental.

// Indexed `for` loops are deliberate here: time-step/edge index loops mirror the paper's formulation.
#![allow(clippy::needless_range_loop)]
use crate::config::{MappingEncoding, SynthesisConfig, TimeEncoding};
use crate::vars::{FdVar, TimeVars};
use olsq2_arch::CouplingGraph;
use olsq2_circuit::{Circuit, DependencyGraph, Operands};
use olsq2_encode::{
    at_most_one, gates, BatchSink, CardinalityNetwork, CnfSink, ConstraintFamily, FamilyTally,
};
use olsq2_layout::{LayoutResult, SwapOp};
use olsq2_sat::{Lit, SolveResult, Solver};
use std::collections::HashMap;

/// Errors raised while constructing a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// More program qubits than physical qubits.
    TooManyQubits {
        /// Program qubit count.
        program: usize,
        /// Physical qubit count.
        physical: usize,
    },
    /// The circuit has no gates (nothing to synthesize).
    EmptyCircuit,
    /// The coupling graph cannot route the circuit (disconnected).
    DisconnectedDevice,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::TooManyQubits { program, physical } => write!(
                f,
                "circuit uses {program} program qubits but the device has only {physical}"
            ),
            ModelError::EmptyCircuit => write!(f, "circuit has no gates"),
            ModelError::DisconnectedDevice => {
                write!(
                    f,
                    "coupling graph is disconnected; routing may be impossible"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Which formulation to build: the paper's succinct OLSQ2 model or the
/// original OLSQ baseline with per-gate *space variables* (used for the
/// speedup comparisons of Fig. 1 and Tables I–II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelStyle {
    /// OLSQ2 (Improvement 1): no space variables; gate positions inferred
    /// from mapping and time variables.
    #[default]
    Olsq2,
    /// OLSQ (Tan & Cong, ICCAD'20): each gate carries a space variable
    /// `x_g` (over edges for two-qubit gates, over qubits for single-qubit
    /// gates) plus consistency constraints tying `x_g` to the mapping —
    /// the redundancy the paper eliminates.
    OlsqBaseline,
}

/// The built model plus handles for incremental bounding and extraction.
#[derive(Debug)]
pub struct FlatModel {
    solver: Solver,
    /// `mapping[q][t]`.
    mapping: Vec<Vec<FdVar>>,
    time: TimeVars,
    /// `swap_lits[e][t]`; entries below `S_D - 1` are frozen false.
    swap_lits: Vec<Vec<Lit>>,
    t_ub: usize,
    sd: usize,
    style: ModelStyle,
    config: SynthesisConfig,
    depth_bounds: HashMap<usize, Lit>,
    swap_card: Option<CardinalityNetwork>,
    num_gates: usize,
    tally: FamilyTally,
    /// Current window-generation guard (incremental builds only): the
    /// active at-least-one/domain-bound constraints for the time variables
    /// are conditional on it, and every solve assumes it. Superseded
    /// guards are permanently falsified at the root by
    /// [`FlatModel::extend_window`].
    window_guard: Option<Lit>,
    /// Number of in-place window extensions performed.
    extensions: usize,
    /// Running hash of post-build lazy allocations (bound activation
    /// literals, cardinality machinery). Folded into the clause-sharing
    /// fingerprint after an extension: clause *counts* diverge across
    /// cohort members (each learns and simplifies differently), so the
    /// variable space is pinned by variable count + allocation history
    /// instead.
    alloc_history: u64,
    /// The clause-sharing fence that is (or would be) in force for this
    /// model: the exact `(fingerprint, num_vars)` pair last passed to
    /// [`olsq2_sat::ClauseExchange::bind_space`]. Tracked even without an
    /// exchange so a fork can be re-bound later — a fork's variable space
    /// is bit-identical to its base's, so the pair carries over verbatim.
    bound_fingerprint: u64,
    bound_vars: usize,
}

impl FlatModel {
    /// Builds the OLSQ2 model for `circuit` on `graph` with the given
    /// depth window `t_ub`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the instance is structurally infeasible.
    pub fn build(
        circuit: &Circuit,
        graph: &CouplingGraph,
        config: &SynthesisConfig,
        t_ub: usize,
    ) -> Result<FlatModel, ModelError> {
        Self::build_with_style(circuit, graph, config, t_ub, ModelStyle::Olsq2)
    }

    /// Builds either formulation (see [`ModelStyle`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the instance is structurally infeasible.
    pub fn build_with_style(
        circuit: &Circuit,
        graph: &CouplingGraph,
        config: &SynthesisConfig,
        t_ub: usize,
        style: ModelStyle,
    ) -> Result<FlatModel, ModelError> {
        let nq = circuit.num_qubits();
        let np = graph.num_qubits();
        if circuit.num_gates() == 0 {
            return Err(ModelError::EmptyCircuit);
        }
        if nq > np {
            return Err(ModelError::TooManyQubits {
                program: nq,
                physical: np,
            });
        }
        if !graph.is_connected() && nq > 1 {
            return Err(ModelError::DisconnectedDevice);
        }
        let sd = config.swap_duration.max(1);
        let t_ub = t_ub.max(1);
        let mut solver = Solver::new();
        if config.proof_log {
            // Before any clause: the log must contain every original.
            solver.enable_proof();
        }
        solver.set_features(config.solver_features);
        let enc = config.encoding;
        let mut tally = FamilyTally::new();
        let mut mark = tally.mark(&solver);

        // --- Mapping variables + injectivity -------------------------------
        let new_mapping_var = |s: &mut Solver| match enc.mapping {
            MappingEncoding::OneHot | MappingEncoding::InverseOneHot => {
                FdVar::new_onehot(s, np, enc.amo)
            }
            MappingEncoding::Binary => FdVar::new_binary(s, np),
        };
        let mut mapping: Vec<Vec<FdVar>> = (0..nq)
            .map(|_| (0..t_ub).map(|_| new_mapping_var(&mut solver)).collect())
            .collect();

        // Injectivity is pure clause emission: stage it through a
        // BatchSink so the clauses land via one bulk hand-off per buffer
        // instead of a solver call each.
        let mut batch = BatchSink::new(&mut solver);
        match enc.mapping {
            MappingEncoding::OneHot => {
                // Pairwise per (t, p): the "int"-style injectivity.
                for t in 0..t_ub {
                    for p in 0..np {
                        let sels: Vec<Lit> = (0..nq)
                            .map(|q| mapping[q][t].eq_lit(&mut batch, p))
                            .collect();
                        at_most_one(&mut batch, &sels, enc.amo);
                    }
                }
            }
            MappingEncoding::Binary => {
                // Pairwise difference per (t, q<q'): at least one bit of the
                // two bit-vectors differs.
                for t in 0..t_ub {
                    for q1 in 0..nq {
                        for q2 in (q1 + 1)..nq {
                            let diff = fd_differs(&mut batch, &mapping[q1][t], &mapping[q2][t]);
                            batch.add_clause(&[diff]);
                        }
                    }
                }
            }
            MappingEncoding::InverseOneHot => {
                // EUF-style: an inverse family π_inv(p, t) over Q ∪ {free}
                // with channeling; injectivity follows from π_inv being a
                // function (its exactly-one constraint).
                for t in 0..t_ub {
                    let mut inv: Vec<FdVar> = (0..np)
                        .map(|_| FdVar::new_onehot(&mut batch, nq + 1, enc.amo))
                        .collect();
                    for q in 0..nq {
                        for p in 0..np {
                            let m = mapping[q][t].eq_lit(&mut batch, p);
                            let i = inv[p].eq_lit(&mut batch, q);
                            batch.add_clause(&[!m, i]);
                            batch.add_clause(&[!i, m]);
                        }
                    }
                }
            }
        }
        drop(batch);

        // Initial-mapping one-hot groups are the natural cube-splitting
        // axis: asserting each selector of π_q^0 in turn partitions the
        // space exactly, and the unguarded at-least-one clause makes the
        // split certifiable in stitched proofs. (Binary mappings have no
        // such group; t > 0 columns are weaker split candidates and are
        // left out.)
        if matches!(
            enc.mapping,
            MappingEncoding::OneHot | MappingEncoding::InverseOneHot
        ) {
            for q in 0..nq {
                tally.register_split_group(ConstraintFamily::Mapping, mapping[q][0].raw_lits());
            }
        }

        mark = tally.credit_since(ConstraintFamily::Mapping, &solver, mark);

        // --- Time variables + dependencies ---------------------------------
        let dag = if config.commutation_aware {
            DependencyGraph::new_with_commutation(circuit)
        } else {
            DependencyGraph::new(circuit)
        };
        // Incremental builds guard the window-scoped domain constraints on
        // a generation literal so the window can later grow in place (see
        // [`FlatModel::extend_window`]); the guard is assumed on every
        // solve. Non-incremental builds emit them unconditionally.
        let window_guard = config
            .incremental
            .then(|| Lit::positive(CnfSink::new_var(&mut solver)));
        let mut time = TimeVars::new(
            &mut solver,
            circuit.num_gates(),
            t_ub,
            enc.time,
            enc.amo,
            window_guard,
        );
        for &(g, g2) in dag.dependencies() {
            time.assert_before(&mut solver, g, g2);
        }
        // Commutation relaxes *order*, not exclusivity: gates sharing a
        // program qubit must still occupy distinct time steps.
        if config.commutation_aware {
            let dep_set: std::collections::HashSet<(usize, usize)> =
                dag.dependencies().iter().copied().collect();
            let mut per_qubit: Vec<Vec<usize>> = vec![Vec::new(); nq];
            for (g, gate) in circuit.gates().iter().enumerate() {
                for q in gate.operands.qubits() {
                    per_qubit[q as usize].push(g);
                }
            }
            let mut seen_pairs = std::collections::HashSet::new();
            for gates_on_q in &per_qubit {
                for (i, &a) in gates_on_q.iter().enumerate() {
                    for &b in &gates_on_q[i + 1..] {
                        if dep_set.contains(&(a, b))
                            || dep_set.contains(&(b, a))
                            || !seen_pairs.insert((a, b))
                        {
                            continue;
                        }
                        time.assert_not_equal(&mut solver, a, b);
                    }
                }
            }
        }

        mark = tally.credit_since(ConstraintFamily::Dependency, &solver, mark);

        // --- SWAP variables -------------------------------------------------
        let ne = graph.num_edges();
        let swap_lits: Vec<Vec<Lit>> = (0..ne)
            .map(|_| {
                (0..t_ub)
                    .map(|_| Lit::positive(CnfSink::new_var(&mut solver)))
                    .collect()
            })
            .collect();
        // A SWAP cannot finish before S_D - 1.
        for lits in &swap_lits {
            for &l in lits.iter().take(sd - 1) {
                solver.add_clause([!l]);
            }
        }
        // SWAP/SWAP exclusion: overlapping windows on edges sharing a qubit.
        for e1 in 0..ne {
            let (a1, b1) = graph.edge(e1);
            for e2 in e1..ne {
                let (a2, b2) = graph.edge(e2);
                let shares = e1 == e2 || a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2;
                if !shares {
                    continue;
                }
                for t1 in (sd - 1)..t_ub {
                    let upper = (t1 + sd).min(t_ub);
                    // Windows (t-S_D, t] intersect iff |t1 - t2| < S_D; for
                    // the same edge only emit each unordered pair once.
                    let lower = if e1 == e2 {
                        t1 + 1
                    } else {
                        (t1 + 1).saturating_sub(sd).max(sd - 1)
                    };
                    for t2 in lower..upper {
                        if e1 == e2 && t1 == t2 {
                            continue;
                        }
                        solver.add_clause([!swap_lits[e1][t1], !swap_lits[e2][t2]]);
                    }
                }
            }
        }

        mark = tally.credit_since(ConstraintFamily::Swap, &solver, mark);

        // The scheduling families dominate the formula; stage them in bulk.
        let mut batch = BatchSink::new(&mut solver);
        match style {
            ModelStyle::Olsq2 => {
                // --- Valid two-qubit gate scheduling (Eq. 1) ----------------
                // Cache the adjacency disjunction per (qubit pair, t).
                let mut adj_cache: HashMap<(u16, u16, usize), Lit> = HashMap::new();
                for (g, gate) in circuit.gates().iter().enumerate() {
                    if let Operands::Two(q1, q2) = gate.operands {
                        let (qa, qb) = (q1.min(q2), q1.max(q2));
                        for t in 0..t_ub {
                            let adj = match adj_cache.get(&(qa, qb, t)) {
                                Some(&l) => l,
                                None => {
                                    let mut pair_lits = Vec::with_capacity(2 * ne);
                                    for e in 0..ne {
                                        let (pa, pb) = graph.edge(e);
                                        for (x, y) in [(pa, pb), (pb, pa)] {
                                            let la = mapping[qa as usize][t]
                                                .eq_lit(&mut batch, x as usize);
                                            let lb = mapping[qb as usize][t]
                                                .eq_lit(&mut batch, y as usize);
                                            pair_lits.push(gates::and_lit(&mut batch, la, lb));
                                        }
                                    }
                                    let l = gates::or_all(&mut batch, &pair_lits);
                                    adj_cache.insert((qa, qb, t), l);
                                    l
                                }
                            };
                            // (t_g == t) → adjacent(qa, qb, t)
                            let mut clause = time.var(g).neq_clause(t);
                            clause.push(adj);
                            batch.add_clause(&clause);
                        }
                    }
                }

                // --- Valid SWAP insertion (Eq. 2–3) -------------------------
                // A SWAP finishing at t occupies its endpoints during the
                // window (t - S_D, t]; no gate touching those physical
                // qubits may be scheduled in that window.
                for (g, gate) in circuit.gates().iter().enumerate() {
                    let qubits: Vec<u16> = gate.operands.qubits().collect();
                    for e in 0..ne {
                        let (pa, pb) = graph.edge(e);
                        for t in (sd - 1)..t_ub {
                            for t_prime in (t + 1 - sd)..=t {
                                for &q in &qubits {
                                    for p in [pa, pb] {
                                        // (t_g == t') ∧ (π_q^t == p) → ¬σ_e^t
                                        let mut clause = time.var(g).neq_clause(t_prime);
                                        clause
                                            .extend(mapping[q as usize][t].neq_clause(p as usize));
                                        clause.push(!swap_lits[e][t]);
                                        batch.add_clause(&clause);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            ModelStyle::OlsqBaseline => {
                // Original OLSQ: per-gate space variables with consistency
                // constraints, and overlap constraints expressed through
                // them (the redundancy Improvement 1 removes).
                let mut space: Vec<FdVar> = Vec::with_capacity(circuit.num_gates());
                for gate in circuit.gates() {
                    let domain = match gate.operands {
                        Operands::One(_) => np,
                        Operands::Two(..) => ne,
                    };
                    let var = match enc.mapping {
                        MappingEncoding::OneHot | MappingEncoding::InverseOneHot => {
                            FdVar::new_onehot(&mut batch, domain, enc.amo)
                        }
                        MappingEncoding::Binary => FdVar::new_binary(&mut batch, domain),
                    };
                    space.push(var);
                }
                // Consistency between space, time, and mapping variables.
                for (g, gate) in circuit.gates().iter().enumerate() {
                    match gate.operands {
                        Operands::One(q) => {
                            // (t_g == t ∧ x_g == p) → π_q^t == p.
                            for t in 0..t_ub {
                                for p in 0..np {
                                    let head: Vec<Lit> = time
                                        .var(g)
                                        .neq_clause(t)
                                        .into_iter()
                                        .chain(space[g].neq_clause(p))
                                        .collect();
                                    for &bit in &mapping[q as usize][t].eq_conj(p) {
                                        let mut clause = head.clone();
                                        clause.push(bit);
                                        batch.add_clause(&clause);
                                    }
                                }
                            }
                        }
                        Operands::Two(q1, q2) => {
                            // (t_g == t ∧ x_g == e) → endpoints match in
                            // either orientation.
                            for t in 0..t_ub {
                                for e in 0..ne {
                                    let (pa, pb) = graph.edge(e);
                                    let mut orient = Vec::with_capacity(2);
                                    for (x, y) in [(pa, pb), (pb, pa)] {
                                        let la =
                                            mapping[q1 as usize][t].eq_lit(&mut batch, x as usize);
                                        let lb =
                                            mapping[q2 as usize][t].eq_lit(&mut batch, y as usize);
                                        orient.push(gates::and_lit(&mut batch, la, lb));
                                    }
                                    let both = gates::or_all(&mut batch, &orient);
                                    let mut clause: Vec<Lit> = time
                                        .var(g)
                                        .neq_clause(t)
                                        .into_iter()
                                        .chain(space[g].neq_clause(e))
                                        .collect();
                                    clause.push(both);
                                    batch.add_clause(&clause);
                                }
                            }
                        }
                    }
                }
                // Overlap via space variables (OLSQ Eq. 7–8 analogue).
                for (g, gate) in circuit.gates().iter().enumerate() {
                    for e in 0..ne {
                        let (pa, pb) = graph.edge(e);
                        for t in (sd - 1)..t_ub {
                            for t_prime in (t + 1 - sd)..=t {
                                match gate.operands {
                                    Operands::One(_) => {
                                        for p in [pa, pb] {
                                            let mut clause = time.var(g).neq_clause(t_prime);
                                            clause.extend(space[g].neq_clause(p as usize));
                                            clause.push(!swap_lits[e][t]);
                                            batch.add_clause(&clause);
                                        }
                                    }
                                    Operands::Two(..) => {
                                        // Any edge sharing a qubit with e
                                        // (including e itself).
                                        for e2 in 0..ne {
                                            let (qa, qb) = graph.edge(e2);
                                            let shares = e2 == e
                                                || qa == pa
                                                || qa == pb
                                                || qb == pa
                                                || qb == pb;
                                            if !shares {
                                                continue;
                                            }
                                            let mut clause = time.var(g).neq_clause(t_prime);
                                            clause.extend(space[g].neq_clause(e2));
                                            clause.push(!swap_lits[e][t]);
                                            batch.add_clause(&clause);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        drop(batch);

        mark = tally.credit_since(ConstraintFamily::Scheduling, &solver, mark);

        // --- SWAP transformation (mapping consistency) ----------------------
        let mut batch = BatchSink::new(&mut solver);
        for t in 0..t_ub.saturating_sub(1) {
            for q in 0..nq {
                // Stay: (π_q^t == p) ∧ no swap at an edge of p finishing at t
                //       → π_q^{t+1} == p.
                for p in 0..np {
                    let incident = graph.edges_at(p as u16);
                    let antecedent = mapping[q][t].neq_clause(p);
                    for &bit in &mapping[q][t + 1].eq_conj(p) {
                        let mut clause = antecedent.clone();
                        clause.extend(incident.iter().map(|&e| swap_lits[e][t]));
                        clause.push(bit);
                        batch.add_clause(&clause);
                    }
                }
                // Move: σ_e^t ∧ (π_q^t == e.p) → π_q^{t+1} == e.p'.
                for e in 0..ne {
                    let (pa, pb) = graph.edge(e);
                    for (from, to) in [(pa, pb), (pb, pa)] {
                        let antecedent = mapping[q][t].neq_clause(from as usize);
                        for &bit in &mapping[q][t + 1].eq_conj(to as usize) {
                            let mut clause = Vec::with_capacity(antecedent.len() + 2);
                            clause.push(!swap_lits[e][t]);
                            clause.extend(antecedent.iter().copied());
                            clause.push(bit);
                            batch.add_clause(&clause);
                        }
                    }
                }
            }
        }
        drop(batch);

        tally.credit_since(ConstraintFamily::Transition, &solver, mark);

        // Structure-aware seeding: in an exactly-one group all but one
        // selector end up false, and optimal layouts use few SWAPs, so
        // the all-false polarity starts the search inside the layout
        // structure instead of fighting the at-most-one constraints. The
        // t = 0 activity bump points the first decisions at the initial
        // placement — the same groups the cube splitter branches on.
        if config.solver_features.structure_seeding {
            if matches!(
                enc.mapping,
                MappingEncoding::OneHot | MappingEncoding::InverseOneHot
            ) {
                for per_t in &mapping {
                    for fd in per_t {
                        for l in fd.raw_lits() {
                            solver.set_saved_phase(l.var(), false);
                        }
                    }
                    for l in per_t[0].raw_lits() {
                        solver.boost_activity(l.var(), 1.0);
                    }
                }
            }
            if enc.time == TimeEncoding::OneHot {
                for g in 0..circuit.num_gates() {
                    for l in time.var(g).raw_lits() {
                        solver.set_saved_phase(l.var(), false);
                    }
                }
            }
            for per_t in &swap_lits {
                for &sl in per_t {
                    solver.set_saved_phase(sl.var(), false);
                }
            }
        }

        // Domain-informed branching order (§V): decide the initial
        // placement first, then gate times; SWAPs follow by propagation.
        if config.seed_variable_order {
            for per_t in &mapping {
                for l in per_t[0].raw_lits() {
                    solver.boost_activity(l.var(), 2.0);
                }
            }
            for g in 0..circuit.num_gates() {
                for l in time.var(g).raw_lits() {
                    solver.boost_activity(l.var(), 1.0);
                }
            }
        }

        config.diversification.apply(&mut solver);
        // Everything past the build is bound-machinery: activation
        // literals, cardinality counters, window-growth variables. Clauses
        // over them encode cross-solve (and, under sharing, cross-member)
        // contracts, so inprocessing must leave them exactly as written.
        solver.set_inprocess_floor(solver.num_vars());
        // Computed whether or not an exchange is present: forks re-bind
        // from this stored pair.
        let bound_fingerprint = Self::space_fingerprint(style, t_ub, sd, &enc, &solver);
        let bound_vars = solver.num_vars();
        if let Some(exchange) = &config.clause_exchange {
            // Fence clauses to this exact formula build: identical
            // (style, window, encoding, size) builds — and only those —
            // share a fingerprint, so cohort members exchange clauses
            // while their variable spaces provably coincide. Variables
            // allocated after this point (activation literals, bound
            // machinery) are member-local and excluded via the
            // build-time variable count.
            exchange.bind_space(bound_fingerprint, bound_vars);
            solver.set_exchange_filter(config.exchange_filter);
            solver.set_exchange(Some(exchange.clone()));
        }

        Ok(FlatModel {
            solver,
            mapping,
            time,
            swap_lits,
            t_ub,
            sd,
            style,
            config: config.clone(),
            depth_bounds: HashMap::new(),
            swap_card: None,
            num_gates: circuit.num_gates(),
            tally,
            window_guard,
            extensions: 0,
            alloc_history: 0,
            bound_fingerprint,
            bound_vars,
        })
    }

    /// Forks this model into a new cohort member without re-encoding: the
    /// underlying solver state is snapshotted via [`Solver::fork`]
    /// (O(memcpy) — clause arena, watch lists, root trail, phases,
    /// activities, proof prefix), the encoding handles (variable maps,
    /// bound activators, cardinality network, window guard) are cloned,
    /// and only the per-member knobs from `config` are re-applied:
    /// diversification, the clause exchange (re-bound with this model's
    /// stored fence, since the fork's variable space is bit-identical),
    /// and the exchange filter.
    ///
    /// The `(fingerprint, num_vars)` fence pair — including the
    /// allocation-history chain accumulated by bound requests and
    /// [`FlatModel::extend_window`] — carries over verbatim, so a forked
    /// member keeps sharing (and keeps *extending*) exactly as a freshly
    /// encoded member with the same history would.
    ///
    /// `config` must agree with the base model on everything that shapes
    /// the formula (encoding, swap duration, style, proof logging);
    /// callers that cannot guarantee that should fall back to a fresh
    /// build. Diversification is free to differ — it changes no clauses.
    pub fn fork(&mut self, config: &SynthesisConfig) -> FlatModel {
        debug_assert_eq!(config.encoding, self.config.encoding);
        debug_assert_eq!(
            config.swap_duration.max(1),
            self.sd,
            "fork must keep the base swap duration"
        );
        debug_assert_eq!(
            config.proof_log, self.config.proof_log,
            "proof logging is decided at encode time"
        );
        let mut solver = self.solver.fork();
        config.diversification.apply(&mut solver);
        if let Some(exchange) = &config.clause_exchange {
            exchange.bind_space(self.bound_fingerprint, self.bound_vars);
            solver.set_exchange_filter(config.exchange_filter);
            solver.set_exchange(Some(exchange.clone()));
        }
        FlatModel {
            solver,
            mapping: self.mapping.clone(),
            time: self.time.clone(),
            swap_lits: self.swap_lits.clone(),
            t_ub: self.t_ub,
            sd: self.sd,
            style: self.style,
            config: config.clone(),
            depth_bounds: self.depth_bounds.clone(),
            swap_card: self.swap_card.clone(),
            num_gates: self.num_gates,
            tally: self.tally.clone(),
            window_guard: self.window_guard,
            extensions: self.extensions,
            alloc_history: self.alloc_history,
            bound_fingerprint: self.bound_fingerprint,
            bound_vars: self.bound_vars,
        }
    }

    /// Grows the depth window to `new_t_ub` **in place**: appends the new
    /// time steps' variables and constraint families onto the live solver,
    /// keeping every learned clause, VSIDS activity, and saved phase. The
    /// encoding is time-resolved, so all clauses over steps `0..old_t_ub`
    /// remain valid verbatim; only the window-scoped domain constraints
    /// move to a new guard generation, and the superseded guard is
    /// permanently falsified at the root (which [`Solver::simplify`] then
    /// exploits to physically retire the dead constraints).
    ///
    /// Returns `false` without extending when the model cannot extend —
    /// built non-incrementally, the baseline style, or a binary time
    /// encoding that would need a wider bit-vector. The caller falls back
    /// to a rebuild then.
    ///
    /// `circuit` and `graph` must be the ones the model was built from.
    ///
    /// # Panics
    ///
    /// Panics if `new_t_ub` is below the current window.
    pub fn extend_window(
        &mut self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        new_t_ub: usize,
    ) -> bool {
        let Some(old_guard) = self.window_guard else {
            return false;
        };
        if self.style != ModelStyle::Olsq2 {
            return false;
        }
        let new_t_ub = new_t_ub.max(1);
        assert!(new_t_ub >= self.t_ub, "windows only grow");
        if new_t_ub == self.t_ub {
            return true;
        }
        let old_t_ub = self.t_ub;
        let nq = self.mapping.len();
        let np = graph.num_qubits();
        let ne = graph.num_edges();
        let sd = self.sd;
        let enc = self.config.encoding;

        // --- Time variables: new guard generation + dependency re-emit ----
        let mut mark = self.tally.mark(&self.solver);
        let new_guard = Lit::positive(CnfSink::new_var(&mut self.solver));
        if !self.time.extend(&mut self.solver, new_t_ub, new_guard) {
            return false; // binary width grew: caller rebuilds
        }
        mark = self
            .tally
            .credit_since(ConstraintFamily::Dependency, &self.solver, mark);

        // --- Mapping variables + injectivity for the new steps ------------
        for q in 0..nq {
            for _ in old_t_ub..new_t_ub {
                let var = match enc.mapping {
                    MappingEncoding::OneHot | MappingEncoding::InverseOneHot => {
                        FdVar::new_onehot(&mut self.solver, np, enc.amo)
                    }
                    MappingEncoding::Binary => FdVar::new_binary(&mut self.solver, np),
                };
                self.mapping[q].push(var);
            }
        }
        let mapping = &mut self.mapping;
        let mut batch = BatchSink::new(&mut self.solver);
        match enc.mapping {
            MappingEncoding::OneHot => {
                for t in old_t_ub..new_t_ub {
                    for p in 0..np {
                        let sels: Vec<Lit> = (0..nq)
                            .map(|q| mapping[q][t].eq_lit(&mut batch, p))
                            .collect();
                        at_most_one(&mut batch, &sels, enc.amo);
                    }
                }
            }
            MappingEncoding::Binary => {
                for t in old_t_ub..new_t_ub {
                    for q1 in 0..nq {
                        for q2 in (q1 + 1)..nq {
                            let diff = fd_differs(&mut batch, &mapping[q1][t], &mapping[q2][t]);
                            batch.add_clause(&[diff]);
                        }
                    }
                }
            }
            MappingEncoding::InverseOneHot => {
                for t in old_t_ub..new_t_ub {
                    let mut inv: Vec<FdVar> = (0..np)
                        .map(|_| FdVar::new_onehot(&mut batch, nq + 1, enc.amo))
                        .collect();
                    for q in 0..nq {
                        for p in 0..np {
                            let m = mapping[q][t].eq_lit(&mut batch, p);
                            let i = inv[p].eq_lit(&mut batch, q);
                            batch.add_clause(&[!m, i]);
                            batch.add_clause(&[!i, m]);
                        }
                    }
                }
            }
        }
        drop(batch);
        mark = self
            .tally
            .credit_since(ConstraintFamily::Mapping, &self.solver, mark);

        // --- SWAP variables for the new steps + exclusions ----------------
        for e in 0..ne {
            for t in old_t_ub..new_t_ub {
                let l = Lit::positive(CnfSink::new_var(&mut self.solver));
                if t < sd - 1 {
                    self.solver.add_clause([!l]);
                }
                self.swap_lits[e].push(l);
            }
        }
        // Replicate the build-time exclusion loops at the larger window,
        // skipping pairs whose finish times both predate the extension
        // (those clauses were already emitted).
        for e1 in 0..ne {
            let (a1, b1) = graph.edge(e1);
            for e2 in e1..ne {
                let (a2, b2) = graph.edge(e2);
                let shares = e1 == e2 || a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2;
                if !shares {
                    continue;
                }
                for t1 in (sd - 1)..new_t_ub {
                    let upper = (t1 + sd).min(new_t_ub);
                    let lower = if e1 == e2 {
                        t1 + 1
                    } else {
                        (t1 + 1).saturating_sub(sd).max(sd - 1)
                    };
                    for t2 in lower..upper {
                        if (e1 == e2 && t1 == t2) || (t1 < old_t_ub && t2 < old_t_ub) {
                            continue;
                        }
                        self.solver
                            .add_clause([!self.swap_lits[e1][t1], !self.swap_lits[e2][t2]]);
                    }
                }
            }
        }
        mark = self
            .tally
            .credit_since(ConstraintFamily::Swap, &self.solver, mark);

        // --- Scheduling validity for the new steps (Eq. 1–3) --------------
        let mapping = &mut self.mapping;
        let time = &self.time;
        let swap_lits = &self.swap_lits;
        let mut batch = BatchSink::new(&mut self.solver);
        let mut adj_cache: HashMap<(u16, u16, usize), Lit> = HashMap::new();
        for (g, gate) in circuit.gates().iter().enumerate() {
            if let Operands::Two(q1, q2) = gate.operands {
                let (qa, qb) = (q1.min(q2), q1.max(q2));
                for t in old_t_ub..new_t_ub {
                    let adj = match adj_cache.get(&(qa, qb, t)) {
                        Some(&l) => l,
                        None => {
                            let mut pair_lits = Vec::with_capacity(2 * ne);
                            for e in 0..ne {
                                let (pa, pb) = graph.edge(e);
                                for (x, y) in [(pa, pb), (pb, pa)] {
                                    let la = mapping[qa as usize][t].eq_lit(&mut batch, x as usize);
                                    let lb = mapping[qb as usize][t].eq_lit(&mut batch, y as usize);
                                    pair_lits.push(gates::and_lit(&mut batch, la, lb));
                                }
                            }
                            let l = gates::or_all(&mut batch, &pair_lits);
                            adj_cache.insert((qa, qb, t), l);
                            l
                        }
                    };
                    let mut clause = time.var(g).neq_clause(t);
                    clause.push(adj);
                    batch.add_clause(&clause);
                }
            }
        }
        // Eq. 2–3: every new pair has a new finish time (a swap finishing
        // at t blocks gates in (t - S_D, t], so old finish times only pair
        // with old gate times, which were covered by the build).
        for (g, gate) in circuit.gates().iter().enumerate() {
            let qubits: Vec<u16> = gate.operands.qubits().collect();
            for e in 0..ne {
                let (pa, pb) = graph.edge(e);
                for t in (sd - 1).max(old_t_ub)..new_t_ub {
                    for t_prime in (t + 1 - sd)..=t {
                        for &q in &qubits {
                            for p in [pa, pb] {
                                let mut clause = time.var(g).neq_clause(t_prime);
                                clause.extend(mapping[q as usize][t].neq_clause(p as usize));
                                clause.push(!swap_lits[e][t]);
                                batch.add_clause(&clause);
                            }
                        }
                    }
                }
            }
        }
        drop(batch);
        mark = self
            .tally
            .credit_since(ConstraintFamily::Scheduling, &self.solver, mark);

        // --- Mapping transformation across the seam and new steps ---------
        let mapping = &self.mapping;
        let swap_lits = &self.swap_lits;
        let mut batch = BatchSink::new(&mut self.solver);
        for t in (old_t_ub - 1)..(new_t_ub - 1) {
            for q in 0..nq {
                for p in 0..np {
                    let incident = graph.edges_at(p as u16);
                    let antecedent = mapping[q][t].neq_clause(p);
                    for &bit in &mapping[q][t + 1].eq_conj(p) {
                        let mut clause = antecedent.clone();
                        clause.extend(incident.iter().map(|&e| swap_lits[e][t]));
                        clause.push(bit);
                        batch.add_clause(&clause);
                    }
                }
                for e in 0..ne {
                    let (pa, pb) = graph.edge(e);
                    for (from, to) in [(pa, pb), (pb, pa)] {
                        let antecedent = mapping[q][t].neq_clause(from as usize);
                        for &bit in &mapping[q][t + 1].eq_conj(to as usize) {
                            let mut clause = Vec::with_capacity(antecedent.len() + 2);
                            clause.push(!swap_lits[e][t]);
                            clause.extend(antecedent.iter().copied());
                            clause.push(bit);
                            batch.add_clause(&clause);
                        }
                    }
                }
            }
        }
        drop(batch);
        mark = self
            .tally
            .credit_since(ConstraintFamily::Transition, &self.solver, mark);

        // --- Patch cached bound activations over the new steps ------------
        // A one-hot depth bound issued before the extension knows nothing
        // about the new time selectors or swap literals; forbid them under
        // the same activator. (Binary comparators cover the full bit width
        // and need no patch.) Sorted for deterministic clause order.
        let mut depth_acts: Vec<(usize, Lit)> =
            self.depth_bounds.iter().map(|(&d, &a)| (d, a)).collect();
        depth_acts.sort_unstable_by_key(|&(d, _)| d);
        for &(_, act) in &depth_acts {
            if enc.time == crate::config::TimeEncoding::OneHot {
                for g in 0..self.num_gates {
                    self.time.var_mut(g).forbid_range_if(
                        &mut self.solver,
                        old_t_ub..new_t_ub,
                        Some(act),
                    );
                }
            }
            for e in 0..ne {
                for t in old_t_ub..new_t_ub {
                    let l = self.swap_lits[e][t];
                    self.solver.add_clause([!act, !l]);
                }
            }
        }
        if let Some(card) = &mut self.swap_card {
            let new_inputs: Vec<Lit> = (0..ne)
                .flat_map(|e| self.swap_lits[e][old_t_ub..].iter().copied())
                .collect();
            let invalidated = card.extend(&mut self.solver, &new_inputs);
            // Invalidated bound activators (adder-network rebuilds) are
            // permanently retired; callers re-request their bounds.
            for l in invalidated {
                self.solver.add_clause([!l]);
            }
        }
        self.tally
            .credit_since(ConstraintFamily::Cardinality, &self.solver, mark);

        // --- Generation flip: retire the superseded window guard ----------
        self.solver.add_clause([!old_guard]);
        self.solver.simplify();
        self.window_guard = Some(new_guard);
        self.t_ub = new_t_ub;
        self.extensions += 1;
        self.note_alloc(3, new_t_ub);
        self.rebind_exchange();
        true
    }

    /// Folds a post-build lazy allocation event into the running history
    /// hash (see the `alloc_history` field).
    fn note_alloc(&mut self, tag: u64, key: usize) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.alloc_history.hash(&mut h);
        tag.hash(&mut h);
        key.hash(&mut h);
        self.alloc_history = h.finish();
    }

    /// Re-binds the clause-sharing fence after an extension: cohort members
    /// that performed the identical build + bound-request + extension
    /// sequence provably share a variable numbering, so sharing stays live
    /// across grown windows. Clause counts are deliberately excluded — they
    /// diverge per member (different learned units, different
    /// simplifications) without affecting variable meanings.
    fn rebind_exchange(&mut self) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        "olsq2.flat.extended".hash(&mut h);
        self.style.hash(&mut h);
        self.t_ub.hash(&mut h);
        self.sd.hash(&mut h);
        self.config.encoding.hash(&mut h);
        self.extensions.hash(&mut h);
        self.solver.num_vars().hash(&mut h);
        self.alloc_history.hash(&mut h);
        // Stored unconditionally so later forks inherit the exact fence.
        self.bound_fingerprint = h.finish() | 1;
        self.bound_vars = self.solver.num_vars();
        if let Some(exchange) = &self.config.clause_exchange {
            exchange.bind_space(self.bound_fingerprint, self.bound_vars);
        }
    }

    /// Hash identifying one formula build for the clause-sharing fence.
    /// Model construction is deterministic, so equal inputs yield equal
    /// variable numberings; the formula size is folded in as a guard
    /// against accidental collisions across circuits/devices.
    fn space_fingerprint(
        style: ModelStyle,
        t_ub: usize,
        sd: usize,
        enc: &crate::EncodingConfig,
        solver: &Solver,
    ) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        "olsq2.flat".hash(&mut h);
        style.hash(&mut h);
        t_ub.hash(&mut h);
        sd.hash(&mut h);
        enc.hash(&mut h);
        solver.num_vars().hash(&mut h);
        solver.num_clauses().hash(&mut h);
        // 0 means "unbound" to the endpoint; steer clear of it.
        h.finish() | 1
    }

    /// The depth window `T_UB` the model was built for.
    pub fn t_ub(&self) -> usize {
        self.t_ub
    }

    /// Formula-size statistics `(variables, clauses)` of the built model.
    pub fn formula_size(&self) -> (usize, usize) {
        (self.solver.num_vars(), self.solver.num_clauses())
    }

    /// Per-constraint-family formula-size breakdown. Bound machinery added
    /// after the build ([`FlatModel::depth_bound`], [`FlatModel::swap_bound`])
    /// is credited to [`ConstraintFamily::Cardinality`].
    pub fn breakdown(&self) -> &FamilyTally {
        &self.tally
    }

    /// Mutable access to the underlying solver (budgets, statistics).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// The active window guard, when the model was built incrementally.
    /// Callers that bypass [`FlatModel::solve`] (the cube engine solves
    /// through the raw solver) must assume it themselves.
    pub fn window_guard(&self) -> Option<Lit> {
        self.window_guard
    }

    /// Activation literal enforcing depth ≤ `depth` (all `t_g ≤ depth-1`,
    /// Eq. 4, and no SWAP finishing at or after `depth`).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or exceeds `T_UB`.
    pub fn depth_bound(&mut self, depth: usize) -> Lit {
        assert!(
            depth >= 1 && depth <= self.t_ub,
            "depth bound out of window"
        );
        if let Some(&l) = self.depth_bounds.get(&depth) {
            return l;
        }
        let mark = self.tally.mark(&self.solver);
        let act = Lit::positive(CnfSink::new_var(&mut self.solver));
        for g in 0..self.num_gates {
            self.time
                .var_mut(g)
                .assert_le_if(&mut self.solver, depth - 1, Some(act));
        }
        for e in 0..self.swap_lits.len() {
            for t in depth..self.t_ub {
                let l = self.swap_lits[e][t];
                self.solver.add_clause([!act, !l]);
            }
        }
        self.tally
            .credit_since(ConstraintFamily::Cardinality, &self.solver, mark);
        self.depth_bounds.insert(depth, act);
        self.note_alloc(1, depth);
        act
    }

    /// Activation literal enforcing `Σ σ ≤ k` (Eq. 5). The cardinality
    /// network is built lazily on first use with capacity `max_bound`
    /// (later calls may use any `k ≤ max_bound` of the *first* call).
    pub fn swap_bound(&mut self, k: usize, max_bound: usize) -> Lit {
        let mark = self.tally.mark(&self.solver);
        if self.swap_card.is_none() {
            let inputs: Vec<Lit> = self
                .swap_lits
                .iter()
                .flat_map(|row| row.iter().copied())
                .collect();
            self.swap_card = Some(CardinalityNetwork::new(
                &mut self.solver,
                &inputs,
                max_bound,
                self.config.encoding.cardinality,
            ));
        }
        let act = self
            .swap_card
            .as_mut()
            .expect("just built")
            .at_most(&mut self.solver, k);
        self.tally
            .credit_since(ConstraintFamily::Cardinality, &self.solver, mark);
        self.note_alloc(2, k.wrapping_mul(65_537).wrapping_add(max_bound));
        act
    }

    /// Number of in-place window extensions performed on this model.
    pub fn extensions(&self) -> usize {
        self.extensions
    }

    /// Solves under the given assumptions (plus the active window guard on
    /// incremental builds — without it the guarded at-least-one constraints
    /// would let every time variable go unassigned).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        let result = match self.window_guard {
            None => self.solver.solve(assumptions),
            Some(g) => {
                let mut with_guard = Vec::with_capacity(assumptions.len() + 1);
                with_guard.extend_from_slice(assumptions);
                with_guard.push(g);
                self.solver.solve(&with_guard)
            }
        };
        // Each satisfiable bound is the new incumbent layout; steer the
        // next (tighter) solve toward it via target phases.
        if result == SolveResult::Sat && self.solver.features().target_phase {
            self.solver.adopt_model_targets();
        }
        result
    }

    /// Extracts the layout result from the solver's current model.
    ///
    /// # Panics
    ///
    /// Panics if the last `solve` was not SAT.
    pub fn extract(&self) -> LayoutResult {
        let initial_mapping: Vec<u16> = self
            .mapping
            .iter()
            .map(|per_t| per_t[0].value_in(&self.solver) as u16)
            .collect();
        let schedule: Vec<usize> = (0..self.num_gates)
            .map(|g| self.time.value_in(&self.solver, g))
            .collect();
        let mut swaps = Vec::new();
        for (e, row) in self.swap_lits.iter().enumerate() {
            for (t, &l) in row.iter().enumerate() {
                if self.solver.model_value(l) == Some(true) {
                    swaps.push(SwapOp {
                        edge: e,
                        finish_time: t,
                    });
                }
            }
        }
        let depth = schedule
            .iter()
            .copied()
            .chain(swaps.iter().map(|s| s.finish_time))
            .max()
            .unwrap_or(0)
            + 1;
        LayoutResult {
            initial_mapping,
            schedule,
            swaps,
            depth,
            swap_duration: self.sd,
        }
    }
}

/// A shareable encoded-model template for O(memcpy) cohort spawning.
///
/// Wraps one built [`FlatModel`] behind a mutex so several spawners
/// (portfolio members, cube workers, service resumes) can fork members
/// from a single encode. The seed remembers the exact instance it
/// encodes — a structural fingerprint of the circuit, the device, and
/// every formula-shaping config field — and [`ModelSeed::fork_for`]
/// refuses to fork for anything else, so a stale or mismatched seed
/// degrades to a fresh build instead of an unsound fork.
#[derive(Debug, Clone)]
pub struct ModelSeed {
    inner: std::sync::Arc<std::sync::Mutex<FlatModel>>,
    instance: u64,
}

impl ModelSeed {
    /// Wraps a built model as a seed for the given instance fingerprint
    /// (from [`ModelSeed::instance_fingerprint`] on the same inputs).
    pub fn capture(model: FlatModel, instance: u64) -> ModelSeed {
        ModelSeed {
            inner: std::sync::Arc::new(std::sync::Mutex::new(model)),
            instance,
        }
    }

    /// The instance fingerprint this seed was captured for.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// Structural fingerprint of one synthesis instance: the exact gate
    /// list (kinds, parameters, operands — **not** relabeling-invariant:
    /// a fork replays the base's variable numbering, so only the
    /// bit-identical instance may consume it), the device edge list, and
    /// every config field that shapes the formula or the solver's
    /// pre-search state. Diversification and run-scoped handles
    /// (budgets, exchange, telemetry) are deliberately excluded — they
    /// are re-applied per fork.
    pub fn instance_fingerprint(
        circuit: &Circuit,
        graph: &CouplingGraph,
        config: &SynthesisConfig,
    ) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        "olsq2.instance".hash(&mut h);
        circuit.num_qubits().hash(&mut h);
        for gate in circuit.gates() {
            gate.kind.name().hash(&mut h);
            for p in gate.kind.params() {
                p.to_bits().hash(&mut h);
            }
            match gate.operands {
                Operands::One(q) => (1u8, q, 0u16).hash(&mut h),
                Operands::Two(a, b) => (2u8, a, b).hash(&mut h),
            }
        }
        graph.num_qubits().hash(&mut h);
        for &(a, b) in graph.edges() {
            (a, b).hash(&mut h);
        }
        config.encoding.hash(&mut h);
        config.swap_duration.hash(&mut h);
        config.commutation_aware.hash(&mut h);
        config.seed_variable_order.hash(&mut h);
        config.incremental.hash(&mut h);
        config.proof_log.hash(&mut h);
        // SolverFeatures carries no Hash impl; its Debug form is a
        // faithful field dump and the fingerprint never leaves the
        // process, so hashing it is stable where it needs to be.
        format!("{:?}", config.solver_features).hash(&mut h);
        h.finish()
    }

    /// Forks a member model for `config` at depth window `t_ub`, or
    /// `None` when the seed cannot serve it (different instance, smaller
    /// window than the template's, or a window growth the incremental
    /// machinery cannot perform) — the caller then falls back to a fresh
    /// encode.
    ///
    /// A larger window is served by forking and growing the *fork* via
    /// [`FlatModel::extend_window`], which re-arms the allocation-history
    /// fingerprint chain on the member, exactly as a freshly encoded
    /// member would have.
    pub fn fork_for(
        &self,
        config: &SynthesisConfig,
        circuit: &Circuit,
        graph: &CouplingGraph,
        instance: u64,
        t_ub: usize,
    ) -> Option<FlatModel> {
        if instance != self.instance {
            return None;
        }
        let mut base = self.inner.lock().ok()?;
        let base_t_ub = base.t_ub();
        if t_ub == base_t_ub {
            return Some(base.fork(config));
        }
        if t_ub > base_t_ub && config.incremental {
            let mut fork = base.fork(config);
            drop(base);
            if fork.extend_window(circuit, graph, t_ub) {
                return Some(fork);
            }
        }
        None
    }
}

/// A handle a preemptible run publishes its encoded state into when the
/// budget expires mid-descent (see `snapshot_slot` on
/// [`SynthesisConfig`]): the service's snapshot-on-preempt hook reads it
/// back and reattaches it as the `model_seed` of the resume run, which
/// then forks instead of re-encoding.
#[derive(Debug, Clone, Default)]
pub struct SnapshotSlot {
    inner: std::sync::Arc<std::sync::Mutex<Option<ModelSeed>>>,
}

impl SnapshotSlot {
    /// Creates an empty slot.
    pub fn new() -> SnapshotSlot {
        SnapshotSlot::default()
    }

    /// Publishes a snapshot (replacing any previous one).
    pub fn publish(&self, seed: ModelSeed) {
        *self.inner.lock().expect("snapshot lock") = Some(seed);
    }

    /// A handle to the current snapshot, if one was published.
    pub fn peek(&self) -> Option<ModelSeed> {
        self.inner.lock().expect("snapshot lock").clone()
    }

    /// Removes and returns the current snapshot.
    pub fn take(&self) -> Option<ModelSeed> {
        self.inner.lock().expect("snapshot lock").take()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("snapshot lock").is_none()
    }
}

/// A literal true iff two finite-domain variables differ (bit-level XOR
/// over the raw representation literals).
fn fd_differs<S: CnfSink>(sink: &mut S, a: &FdVar, b: &FdVar) -> Lit {
    let bits_a = a.raw_lits();
    let bits_b = b.raw_lits();
    debug_assert_eq!(bits_a.len(), bits_b.len());
    let diffs: Vec<Lit> = bits_a
        .iter()
        .zip(bits_b.iter())
        .map(|(&x, &y)| gates::xor_lit(sink, x, y))
        .collect();
    gates::or_all(sink, &diffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncodingConfig;
    use olsq2_arch::line;
    use olsq2_circuit::{Gate, GateKind};
    use olsq2_layout::verify;

    fn cx_pair_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c
    }

    #[test]
    fn trivial_instance_solves_and_verifies() {
        let circuit = cx_pair_circuit();
        let graph = line(2);
        let config = SynthesisConfig::with_swap_duration(1);
        let mut model = FlatModel::build(&circuit, &graph, &config, 2).expect("builds");
        assert_eq!(model.solve(&[]), SolveResult::Sat);
        let result = model.extract();
        assert_eq!(verify(&circuit, &graph, &result), Ok(()));
    }

    #[test]
    fn distant_qubits_force_a_swap() {
        // cx(q0,q1) twice on a 3-line: only 2 program qubits, 3 physical.
        // With depth window 1 and swap window too small it is UNSAT; with a
        // wide window it is SAT.
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let config = SynthesisConfig::with_swap_duration(1);
        let mut model = FlatModel::build(&circuit, &graph, &config, 6).expect("builds");
        assert_eq!(model.solve(&[]), SolveResult::Sat);
        let result = model.extract();
        assert_eq!(verify(&circuit, &graph, &result), Ok(()));
        // A triangle on a line needs at least one swap.
        assert!(!result.swaps.is_empty());
    }

    #[test]
    fn depth_bounds_are_monotone() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        let graph = line(3);
        let config = SynthesisConfig::with_swap_duration(1);
        let mut model = FlatModel::build(&circuit, &graph, &config, 4).expect("builds");
        let b2 = model.depth_bound(2);
        let b4 = model.depth_bound(4);
        assert_eq!(model.solve(&[b2]), SolveResult::Sat);
        let r = model.extract();
        assert!(r.depth <= 2);
        assert_eq!(model.solve(&[b4]), SolveResult::Sat);
        // Bound 1 is impossible: two dependent gates.
        let b1 = model.depth_bound(1);
        assert_eq!(model.solve(&[b1]), SolveResult::Unsat);
    }

    #[test]
    fn swap_bound_zero_forbids_swaps() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let config = SynthesisConfig::with_swap_duration(1);
        let mut model = FlatModel::build(&circuit, &graph, &config, 8).expect("builds");
        let s0 = model.swap_bound(0, 4);
        assert_eq!(model.solve(&[s0]), SolveResult::Unsat); // triangle needs a swap
        let s1 = model.swap_bound(1, 4);
        let r1 = model.solve(&[s1]);
        assert_eq!(r1, SolveResult::Sat);
        let result = model.extract();
        assert_eq!(result.swap_count(), 1);
        assert_eq!(verify(&circuit, &graph, &result), Ok(()));
    }

    #[test]
    fn all_encodings_agree_on_feasibility() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        for enc in [
            EncodingConfig::bv(),
            EncodingConfig::int(),
            EncodingConfig::euf_int(),
            EncodingConfig::euf_bv(),
        ] {
            let config = SynthesisConfig {
                encoding: enc,
                swap_duration: 1,
                ..SynthesisConfig::default()
            };
            let mut model = FlatModel::build(&circuit, &graph, &config, 6).expect("builds");
            let s0 = model.swap_bound(0, 3);
            assert_eq!(model.solve(&[s0]), SolveResult::Unsat, "{enc:?}");
            let s1 = model.swap_bound(1, 3);
            assert_eq!(model.solve(&[s1]), SolveResult::Sat, "{enc:?}");
            let result = model.extract();
            assert_eq!(verify(&circuit, &graph, &result), Ok(()), "{enc:?}");
        }
    }

    #[test]
    fn baseline_style_agrees_with_olsq2() {
        use crate::model::ModelStyle;
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let config = SynthesisConfig::with_swap_duration(1);
        let mut baseline =
            FlatModel::build_with_style(&circuit, &graph, &config, 6, ModelStyle::OlsqBaseline)
                .expect("builds");
        let mut succinct = FlatModel::build(&circuit, &graph, &config, 6).expect("builds");
        // The baseline carries strictly more variables (the space vars).
        assert!(baseline.formula_size().0 > succinct.formula_size().0);
        // Both agree on swap feasibility bounds.
        for k in 0..3usize {
            let ab = baseline.swap_bound(k, 3);
            let sb = succinct.swap_bound(k, 3);
            let rb = baseline.solve(&[ab]);
            let rs = succinct.solve(&[sb]);
            assert_eq!(rb, rs, "k={k}");
            if rb == SolveResult::Sat {
                let res = baseline.extract();
                assert_eq!(verify(&circuit, &graph, &res), Ok(()));
            }
        }
    }

    #[test]
    fn seeded_variable_order_preserves_answers() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let mut config = SynthesisConfig::with_swap_duration(1);
        config.seed_variable_order = true;
        let mut seeded = FlatModel::build(&circuit, &graph, &config, 6).expect("builds");
        config.seed_variable_order = false;
        let mut plain = FlatModel::build(&circuit, &graph, &config, 6).expect("builds");
        for k in 0..3usize {
            let a = seeded.swap_bound(k, 3);
            let b = plain.swap_bound(k, 3);
            assert_eq!(seeded.solve(&[a]), plain.solve(&[b]), "k={k}");
        }
    }

    #[test]
    fn breakdown_accounts_for_the_whole_formula() {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let config = SynthesisConfig::with_swap_duration(1);
        let mut model = FlatModel::build(&circuit, &graph, &config, 6).expect("builds");
        // Every build-time family is populated (clauses may be stored as
        // trail units, so compare vars exactly and clauses as an upper
        // bound: some clauses become root-level units or are simplified).
        for fam in [
            ConstraintFamily::Mapping,
            ConstraintFamily::Dependency,
            ConstraintFamily::Swap,
            ConstraintFamily::Scheduling,
            ConstraintFamily::Transition,
        ] {
            assert!(model.breakdown().get(fam).vars > 0 || model.breakdown().get(fam).clauses > 0);
        }
        assert_eq!(model.breakdown().total().vars, model.formula_size().0);
        assert_eq!(model.breakdown().total().clauses, model.formula_size().1);
        // Bound machinery lands in the cardinality family.
        let before = model.breakdown().get(ConstraintFamily::Cardinality);
        model.swap_bound(1, 3);
        model.depth_bound(4);
        let after = model.breakdown().get(ConstraintFamily::Cardinality);
        assert!(after.vars > before.vars);
        assert_eq!(model.breakdown().total().vars, model.formula_size().0);
    }

    #[test]
    fn rejects_structurally_bad_instances() {
        let graph = line(2);
        let mut big = Circuit::new(3);
        big.push(Gate::two(GateKind::Cx, 0, 2));
        let config = SynthesisConfig::default();
        assert!(matches!(
            FlatModel::build(&big, &graph, &config, 4),
            Err(ModelError::TooManyQubits { .. })
        ));
        assert!(matches!(
            FlatModel::build(&Circuit::new(2), &graph, &config, 4),
            Err(ModelError::EmptyCircuit)
        ));
    }

    #[test]
    fn swap_duration_three_spaces_out_swaps() {
        // One swap needed; with S_D=3 the earliest finish is t=2, so the
        // dependent gate lands at t≥3.
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::two(GateKind::Cx, 0, 1));
        circuit.push(Gate::two(GateKind::Cx, 1, 2));
        circuit.push(Gate::two(GateKind::Cx, 0, 2));
        let graph = line(3);
        let config = SynthesisConfig::with_swap_duration(3);
        let mut model = FlatModel::build(&circuit, &graph, &config, 10).expect("builds");
        assert_eq!(model.solve(&[]), SolveResult::Sat);
        let result = model.extract();
        assert_eq!(verify(&circuit, &graph, &result), Ok(()));
        assert!(result.swaps.iter().all(|s| s.finish_time >= 2));
    }
}
