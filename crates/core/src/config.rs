//! Synthesis configuration: encoding choices, budgets, and solver
//! diversification.

use olsq2_encode::{AmoEncoding, CardEncoding};
use olsq2_sat::{ClauseExchange, ExchangeFilter, Solver, SolverFeatures};
use std::sync::Arc;
use std::time::Duration;

/// How the finite-domain mapping variables `π_q^t` are encoded
/// (§III-C of the paper; names map to the paper's Table I configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MappingEncoding {
    /// One selector per physical qubit with pairwise injectivity — the
    /// stand-in for Z3's *integer* encoding (wide, explicit pairwise
    /// constraints). On this crate's pure-SAT substrate the direct
    /// encoding propagates best and is the default (see the note on
    /// [`EncodingConfig::default`]).
    #[default]
    OneHot,
    /// `⌈log₂|P|⌉`-bit unsigned bit-vectors — the paper's winning `bv`
    /// encoding *under Z3*, where it avoids the arithmetic theory solver.
    Binary,
    /// One-hot plus an explicit inverse family `π_inv(p, t)` with
    /// channeling constraints — the stand-in for the paper's EUF
    /// injectivity trick (`π_inv(π(q,t),t) = q`), which avoids pairwise
    /// constraints.
    InverseOneHot,
}

/// How the gate time variables `t_g` are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimeEncoding {
    /// One selector per time step, dependencies via prefix ladders.
    #[default]
    OneHot,
    /// `⌈log₂T⌉`-bit vectors, dependencies via comparator circuits.
    Binary,
}

/// A named encoding configuration, mirroring Table I's six columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodingConfig {
    /// Mapping variable encoding.
    pub mapping: MappingEncoding,
    /// Time variable encoding.
    pub time: TimeEncoding,
    /// At-most-one encoding used inside one-hot groups.
    pub amo: AmoEncoding,
    /// Cardinality encoding for the SWAP-count bound (Table II).
    pub cardinality: CardEncoding,
}

impl Default for EncodingConfig {
    /// The fastest configuration **on this SAT substrate**: one-hot
    /// variables with CNF sequential counters.
    ///
    /// Note an instructive inversion relative to the paper: under Z3 the
    /// bit-vector encoding wins because it escapes the integer arithmetic
    /// theory solver via bit-blasting. Here *every* encoding is already
    /// bit-blasted, and — consistent with the direct-vs-log encoding
    /// literature for CSP-to-SAT — the one-hot (direct) encoding
    /// propagates better. `EncodingConfig::bv()` reproduces the paper's
    /// configuration for the Table I comparison.
    fn default() -> Self {
        EncodingConfig {
            mapping: MappingEncoding::OneHot,
            time: TimeEncoding::OneHot,
            amo: AmoEncoding::Pairwise,
            cardinality: CardEncoding::SequentialCounter,
        }
    }
}

impl EncodingConfig {
    /// `OLSQ2(bv)` — the paper's best configuration under Z3.
    pub fn bv() -> Self {
        EncodingConfig {
            mapping: MappingEncoding::Binary,
            time: TimeEncoding::Binary,
            ..Self::default()
        }
    }

    /// `OLSQ2(int)` — one-hot everywhere with pairwise injectivity
    /// (the default here; see [`EncodingConfig::default`]).
    pub fn int() -> Self {
        EncodingConfig {
            mapping: MappingEncoding::OneHot,
            time: TimeEncoding::OneHot,
            ..Self::default()
        }
    }

    /// `OLSQ2(EUF+int)` — inverse-function injectivity, one-hot time.
    pub fn euf_int() -> Self {
        EncodingConfig {
            mapping: MappingEncoding::InverseOneHot,
            time: TimeEncoding::OneHot,
            ..Self::default()
        }
    }

    /// `OLSQ2(EUF+bv)` — inverse-function injectivity, binary time.
    pub fn euf_bv() -> Self {
        EncodingConfig {
            mapping: MappingEncoding::InverseOneHot,
            time: TimeEncoding::Binary,
            ..Self::default()
        }
    }
}

/// Solver diversification knobs for portfolio members (HordeSat-style).
///
/// Racing several *identical* solvers on the same encoding is pointless —
/// they explore the same search tree. These knobs perturb branching,
/// polarity, activity decay, and the restart schedule so same-encoding
/// cohort members diverge, which is both a win on its own (different
/// member finds the answer first) and what makes learned-clause sharing
/// profitable (members learn *different* clauses).
///
/// Every field is optional; `None` keeps the solver default, so
/// `SolverDiversification::default()` is an exact no-op and a diversified
/// run with one member is bit-identical to an undiversified one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverDiversification {
    /// Seed for randomized branching (~1/64 decisions pick a random
    /// unassigned variable). `None` = deterministic VSIDS.
    pub decision_seed: Option<u64>,
    /// Saved-phase polarity for never-assigned variables.
    pub default_phase: Option<bool>,
    /// VSIDS activity decay factor in `(0, 1)`.
    pub var_decay: Option<f64>,
    /// Luby restart unit in conflicts.
    pub restart_base: Option<u64>,
    /// Override the chronological-backtracking feature flag.
    ///
    /// Search-policy overrides are *disable-only*: `variant` never draws
    /// `Some(true)`, and `apply` treats `Some(true)` on a feature the
    /// base configuration turned off as `None`. A `--legacy-solver` run
    /// therefore stays legacy for every member, keeping A/B trace pairs
    /// meaningful.
    pub chrono_backtrack: Option<bool>,
    /// Override the Glucose-restart feature flag (disable-only, as above).
    pub glucose_restarts: Option<bool>,
    /// Override the target-phase feature flag (disable-only, as above).
    pub target_phase: Option<bool>,
}

impl SolverDiversification {
    /// Whether applying this diversification changes nothing.
    pub fn is_noop(&self) -> bool {
        *self == SolverDiversification::default()
    }

    /// Applies the set knobs to a solver (unset knobs are left alone).
    pub fn apply(&self, solver: &mut Solver) {
        if let Some(seed) = self.decision_seed {
            solver.set_decision_seed(Some(seed));
        }
        if let Some(phase) = self.default_phase {
            solver.set_default_phase(phase);
        }
        if let Some(decay) = self.var_decay {
            solver.set_var_decay(decay);
        }
        if let Some(base) = self.restart_base {
            solver.set_restart_base(base);
        }
        let mut f = solver.features();
        let mut changed = false;
        // Disable-only: a member may opt out of a search policy the base
        // configuration enabled, never opt back into one it disabled.
        if self.chrono_backtrack == Some(false) && f.chrono_backtrack {
            f.chrono_backtrack = false;
            changed = true;
        }
        if self.glucose_restarts == Some(false) && f.glucose_restarts {
            f.glucose_restarts = false;
            f.restart_postpone = false;
            changed = true;
        }
        if self.target_phase == Some(false) && f.target_phase {
            f.target_phase = false;
            changed = true;
        }
        if changed {
            solver.set_features(f);
        }
    }

    /// The `index`-th member of a seeded diversification family.
    ///
    /// Index 0 is always the no-op (the cohort keeps one vanilla member,
    /// so a diversified portfolio can never do worse than the plain one
    /// on a single-threaded machine). Higher indices draw a decision
    /// seed, polarity, decay, and restart base from a splitmix64 stream,
    /// so any `(seed, index)` pair is reproducible.
    pub fn variant(seed: u64, index: usize) -> Self {
        if index == 0 {
            return SolverDiversification::default();
        }
        // splitmix64 over (seed, index): cheap, well-mixed, stateless.
        let mut x = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        const DECAYS: [f64; 4] = [0.90, 0.93, 0.95, 0.99];
        const BASES: [u64; 4] = [50, 100, 150, 300];
        // Search-policy disagreement (disable-only, see `apply`): one in
        // four members runs without each modern policy, so a cohort
        // always spans both sides of every policy on larger portfolios.
        let disable = |draw: u64| draw.is_multiple_of(4).then_some(false);
        SolverDiversification {
            decision_seed: Some(next() | 1),
            default_phase: Some(next() & 1 == 1),
            var_decay: Some(DECAYS[(next() % DECAYS.len() as u64) as usize]),
            restart_base: Some(BASES[(next() % BASES.len() as u64) as usize]),
            chrono_backtrack: disable(next()),
            glucose_restarts: disable(next()),
            target_phase: disable(next()),
        }
    }
}

/// Budgets and model parameters for a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Encoding configuration.
    pub encoding: EncodingConfig,
    /// SWAP duration `S_D` in time steps (1 for QAOA circuits, 3 for
    /// CNOT-decomposed SWAPs, as in §IV).
    pub swap_duration: usize,
    /// Initial depth-window factor: `T_UB = max(T_LB·factor, T_LB + S_D)`
    /// (§III-A-1 uses 1.5).
    pub tub_factor: f64,
    /// Wall-clock budget for the whole optimization (§III-B "fixed time
    /// budget"); `None` runs to optimality.
    pub time_budget: Option<Duration>,
    /// Optional per-solve conflict budget (mainly for tests).
    pub conflict_budget: Option<u64>,
    /// Maximum number of depth/block relaxation rounds during SWAP
    /// optimization (`None` = relax until no improvement, the paper's
    /// termination condition 2; `Some(0)` = optimize under the optimal
    /// depth/block count only).
    pub pareto_relax_limit: Option<usize>,
    /// Cooperative interrupt: while set to `true`, solves abort with a
    /// budget result. Installed by [`crate::PortfolioSynthesizer`] to
    /// cancel losing portfolio members.
    pub stop_flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Best-so-far reporting: when set, the optimization loops publish
    /// every intermediate solution here, so a deadline-bound caller can
    /// recover the incumbent when the budget expires mid-descent.
    pub incumbent: Option<crate::IncumbentSlot>,
    /// Seed the solver's branching order with domain knowledge (§V of the
    /// paper): initial-mapping variables first, then gate times, leaving
    /// SWAP variables to be derived — "place, then schedule, then route".
    pub seed_variable_order: bool,
    /// Use the commutation-aware dependency graph (gate absorption,
    /// Tan & Cong ICCAD'21, the paper's ref. \[23\]): provably commuting
    /// gates are left unordered, widening the solution space — QAOA's ZZ
    /// layers collapse to dependency-free sets. Results must be checked
    /// with `verify_with_dag` under the same relaxation.
    pub commutation_aware: bool,
    /// Telemetry sink: the optimization loops record one span per
    /// (bound, iteration) with encode/solve times, the model builders
    /// report per-family formula sizes, and the SAT solver emits
    /// restart/reduce events into it. The default disabled recorder costs
    /// one branch per emission site.
    pub recorder: olsq2_obs::Recorder,
    /// Flight-recorder probe: when enabled, every SAT solver this run
    /// builds samples its search dynamics (trail depth, LBD EMAs,
    /// learnt-tier sizes) into the probe's lock-free ring every
    /// `probe.every()` conflicts, and the sharing endpoints tag their
    /// import/export flow into the same ring. Dump it with
    /// [`olsq2_obs::Probe::write_jsonl`] when a run dies. The default
    /// disabled probe costs one branch per conflict.
    pub probe: olsq2_obs::Probe,
    /// Solver diversification knobs (see [`SolverDiversification`]);
    /// applied to every solver this run builds. The default is a no-op.
    pub diversification: SolverDiversification,
    /// Learned-clause sharing medium. When set, every solver this run
    /// builds exports learnts passing [`Self::exchange_filter`] and
    /// imports foreign clauses at restart boundaries. Installed by the
    /// portfolio driver; the medium MUST fence clauses to identical
    /// variable spaces (the model builders call
    /// [`ClauseExchange::bind_space`] with a formula fingerprint at every
    /// rebuild so it can).
    pub clause_exchange: Option<Arc<dyn ClauseExchange>>,
    /// Export quality gate for [`Self::clause_exchange`].
    pub exchange_filter: ExchangeFilter,
    /// Zero-rebuild incremental encoding: when the depth/block window must
    /// grow, extend the live model in place (keeping all learned clauses,
    /// VSIDS activity, and saved phases) instead of rebuilding from
    /// scratch. Window-scoped constraints are guarded on a generation
    /// literal; superseded generations are root-falsified and reclaimed by
    /// the solver's simplification pass. `false` forces the old
    /// rebuild-on-growth path (A/B comparisons, debugging).
    pub incremental: bool,
    /// Propagation-kernel and inprocessing features for every solver this
    /// run builds (binary watch lists, vivification, strengthening,
    /// rephasing, tiered learnt store). Defaults to everything on;
    /// [`SolverFeatures::legacy`] reproduces the pre-overhaul kernel for
    /// A/B comparisons.
    pub solver_features: SolverFeatures,
    /// Record clausal proofs on every solver this run builds (enabled
    /// *before* the first clause, as the log requires). UNSAT iterations
    /// can then justify themselves — the cube-and-conquer path stitches
    /// the per-worker logs into one checkable refutation. Incompatible
    /// with [`Self::clause_exchange`]: imported clauses carry no
    /// derivation, so proof-mode runs must not share.
    pub proof_log: bool,
    /// Spawn cohort members by forking an already-encoded base solver
    /// ([`crate::FlatModel::fork`]) instead of re-encoding per member.
    /// Applies to portfolio cohorts, pooled cube workers, and
    /// [`Self::model_seed`] consumption. `false` forces the old
    /// encode-per-member path (A/B comparisons, `--no-fork`).
    pub fork_spawn: bool,
    /// An encoded-model template to fork from instead of encoding: when
    /// set (and [`Self::fork_spawn`] is on), the model builder forks the
    /// seed — after verifying it matches this exact instance — and only
    /// re-applies the per-member knobs. Installed by the portfolio/cube
    /// spawners and by the service's snapshot-on-preempt resume path.
    pub model_seed: Option<crate::ModelSeed>,
    /// Where to publish the encoded state when the budget expires
    /// mid-descent: a degraded (preempted) run forks its final model into
    /// this slot, and a later resume attaches it as [`Self::model_seed`].
    /// `None` (the default) skips the capture entirely.
    pub snapshot_slot: Option<crate::SnapshotSlot>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            encoding: EncodingConfig::default(),
            swap_duration: 3,
            tub_factor: 1.5,
            time_budget: None,
            conflict_budget: None,
            pareto_relax_limit: None,
            stop_flag: None,
            incumbent: None,
            seed_variable_order: false,
            commutation_aware: false,
            recorder: olsq2_obs::Recorder::disabled(),
            probe: olsq2_obs::Probe::disabled(),
            diversification: SolverDiversification::default(),
            clause_exchange: None,
            exchange_filter: ExchangeFilter::default(),
            incremental: true,
            solver_features: SolverFeatures::default(),
            proof_log: false,
            fork_spawn: true,
            model_seed: None,
            snapshot_slot: None,
        }
    }
}

impl SynthesisConfig {
    /// Default configuration with the given SWAP duration.
    pub fn with_swap_duration(swap_duration: usize) -> Self {
        SynthesisConfig {
            swap_duration,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configs() {
        assert_eq!(EncodingConfig::bv().mapping, MappingEncoding::Binary);
        assert_eq!(EncodingConfig::int().mapping, MappingEncoding::OneHot);
        assert_eq!(EncodingConfig::int().time, TimeEncoding::OneHot);
        assert_eq!(
            EncodingConfig::euf_int().mapping,
            MappingEncoding::InverseOneHot
        );
        assert_eq!(EncodingConfig::euf_bv().time, TimeEncoding::Binary);
    }

    #[test]
    fn diversification_variant_zero_is_noop() {
        assert!(SolverDiversification::variant(42, 0).is_noop());
        assert!(!SolverDiversification::variant(42, 1).is_noop());
    }

    #[test]
    fn diversification_variants_are_reproducible_and_distinct() {
        let a = SolverDiversification::variant(7, 1);
        let b = SolverDiversification::variant(7, 1);
        assert_eq!(a, b);
        let c = SolverDiversification::variant(7, 2);
        // Different index must at least change the decision seed.
        assert_ne!(a.decision_seed, c.decision_seed);
        let d = SolverDiversification::variant(8, 1);
        assert_ne!(a.decision_seed, d.decision_seed);
    }

    #[test]
    fn diversification_applies_cleanly() {
        let mut s = Solver::new();
        SolverDiversification::variant(3, 5).apply(&mut s);
        SolverDiversification::default().apply(&mut s); // no-op path
    }

    #[test]
    fn diversification_policy_overrides_are_disable_only() {
        // A member may opt out of a modern search policy...
        let mut s = Solver::new();
        let d = SolverDiversification {
            chrono_backtrack: Some(false),
            glucose_restarts: Some(false),
            target_phase: Some(false),
            ..SolverDiversification::default()
        };
        d.apply(&mut s);
        let f = s.features();
        assert!(!f.chrono_backtrack && !f.glucose_restarts && !f.target_phase);
        assert!(
            !f.restart_postpone,
            "postponement dies with glucose restarts"
        );

        // ...but can never re-enable one the base configuration disabled:
        // a --legacy-solver run stays legacy for every portfolio member.
        let mut s = Solver::new();
        s.set_features(SolverFeatures::legacy());
        let d = SolverDiversification {
            chrono_backtrack: Some(true),
            glucose_restarts: Some(true),
            target_phase: Some(true),
            ..SolverDiversification::default()
        };
        d.apply(&mut s);
        let f = s.features();
        assert!(!f.chrono_backtrack && !f.glucose_restarts && !f.target_phase);

        // Seeded variants are reproducible including the policy draws.
        assert_eq!(
            SolverDiversification::variant(11, 3),
            SolverDiversification::variant(11, 3)
        );
        // Some variant in a small family disables at least one policy.
        let disables_any = (1..8).any(|k| {
            let v = SolverDiversification::variant(11, k);
            v.chrono_backtrack == Some(false)
                || v.glucose_restarts == Some(false)
                || v.target_phase == Some(false)
        });
        assert!(disables_any);
    }

    #[test]
    fn default_budgets_are_unlimited() {
        let c = SynthesisConfig::default();
        assert!(c.time_budget.is_none());
        assert!(c.conflict_budget.is_none());
        assert_eq!(c.swap_duration, 3);
        assert_eq!(SynthesisConfig::with_swap_duration(1).swap_duration, 1);
    }
}
