//! Finite-domain variable families over the SAT substrate.
//!
//! [`FdVar`] is the bridge between the paper's SMT-level variables (mapping
//! `π_q^t`, time `t_g`) and CNF: the same model-building code works with
//! one-hot ("int") and binary ("bv") representations, which is how the
//! Table I encoding ablation is expressed.

// Indexed `for` loops are deliberate here: ladder constraints index adjacent positions.
#![allow(clippy::needless_range_loop)]
use crate::config::TimeEncoding;
use olsq2_encode::{width_for, AmoEncoding, BitVec, CnfSink, OneHot};
use olsq2_sat::{Lit, Solver};

/// A variable ranging over `0..domain`, in one of two CNF representations.
#[derive(Debug, Clone)]
pub struct FdVar {
    repr: FdRepr,
    domain: usize,
    eq_cache: Vec<Option<Lit>>,
}

#[derive(Debug, Clone)]
enum FdRepr {
    OneHot(OneHot),
    Binary(BitVec),
}

impl FdVar {
    /// One-hot representation with an exactly-one constraint.
    pub fn new_onehot<S: CnfSink>(sink: &mut S, domain: usize, amo: AmoEncoding) -> FdVar {
        FdVar {
            repr: FdRepr::OneHot(OneHot::new(sink, domain, amo)),
            domain,
            eq_cache: vec![None; domain],
        }
    }

    /// Binary representation; values ≥ `domain` are excluded by a
    /// comparator when `domain` is not a power of two.
    pub fn new_binary<S: CnfSink>(sink: &mut S, domain: usize) -> FdVar {
        assert!(domain > 0);
        let bv = BitVec::new(sink, width_for(domain as u64 - 1));
        bv.assert_le_const_if(sink, domain as u64 - 1, None);
        FdVar {
            repr: FdRepr::Binary(bv),
            domain,
            eq_cache: vec![None; domain],
        }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// A literal that is true iff the variable equals `v`
    /// (cached per value; one-hot returns the selector directly).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the domain.
    pub fn eq_lit<S: CnfSink>(&mut self, sink: &mut S, v: usize) -> Lit {
        assert!(v < self.domain);
        if let Some(l) = self.eq_cache[v] {
            return l;
        }
        let l = match &self.repr {
            FdRepr::OneHot(oh) => oh.selector(v),
            FdRepr::Binary(bv) => bv.eq_const_lit(sink, v as u64),
        };
        self.eq_cache[v] = Some(l);
        l
    }

    /// Clause-prefix literals asserting "≠ v": at least one is true iff the
    /// variable differs from `v`. Append consequent literals to build
    /// `(self == v) → ⋁ consequents` without auxiliaries.
    pub fn neq_clause(&self, v: usize) -> Vec<Lit> {
        assert!(v < self.domain);
        match &self.repr {
            FdRepr::OneHot(oh) => vec![!oh.selector(v)],
            FdRepr::Binary(bv) => bv.neq_const_clause(v as u64),
        }
    }

    /// Literals that are *all* true iff the variable equals `v`
    /// (a conjunction antecedent).
    pub fn eq_conj(&self, v: usize) -> Vec<Lit> {
        assert!(v < self.domain);
        match &self.repr {
            FdRepr::OneHot(oh) => vec![oh.selector(v)],
            FdRepr::Binary(bv) => bv.eq_const_conj(v as u64),
        }
    }

    /// Asserts `guard → self ≤ v`.
    pub fn assert_le_if<S: CnfSink>(&mut self, sink: &mut S, v: usize, guard: Option<Lit>) {
        match &self.repr {
            FdRepr::Binary(bv) => bv.assert_le_const_if(sink, v as u64, guard),
            FdRepr::OneHot(_) => {
                for value in (v + 1)..self.domain {
                    let mut clause = Vec::with_capacity(2);
                    if let Some(g) = guard {
                        clause.push(!g);
                    }
                    let eq = self.eq_lit(sink, value);
                    clause.push(!eq);
                    sink.add_clause(&clause);
                }
            }
        }
    }

    /// The raw representation literals: the bits (binary) or selectors
    /// (one-hot). Two same-encoding variables are equal iff these agree
    /// position-wise.
    pub fn raw_lits(&self) -> Vec<Lit> {
        match &self.repr {
            FdRepr::OneHot(oh) => oh.selectors().to_vec(),
            FdRepr::Binary(bv) => bv.bits().to_vec(),
        }
    }

    /// Decodes the value from a model.
    ///
    /// # Panics
    ///
    /// Panics if the solver has no model covering this variable.
    pub fn value_in(&self, solver: &Solver) -> usize {
        match &self.repr {
            FdRepr::OneHot(oh) => oh
                .value_in(solver)
                .expect("model must assign one-hot group"),
            FdRepr::Binary(bv) => {
                bv.value_in(solver).expect("model must assign bit-vector") as usize
            }
        }
    }
}

/// The family of gate time variables with dependency support.
///
/// For one-hot time, dependencies use per-gate *prefix ladders*
/// (`le[g][t] ↔ t_g ≤ t`), giving `O(T)` clauses per dependency; for
/// binary time, a comparator circuit per dependency.
#[derive(Debug)]
pub struct TimeVars {
    vars: Vec<FdVar>,
    encoding: TimeEncoding,
    /// Lazily built prefix ladders (one-hot only): `ladders[g][t]` ↔ `t_g ≤ t`.
    ladders: Vec<Option<Vec<Lit>>>,
    t_ub: usize,
}

impl TimeVars {
    /// Allocates `num_gates` time variables over `0..t_ub`.
    pub fn new<S: CnfSink>(
        sink: &mut S,
        num_gates: usize,
        t_ub: usize,
        encoding: TimeEncoding,
        amo: AmoEncoding,
    ) -> TimeVars {
        let vars = (0..num_gates)
            .map(|_| match encoding {
                TimeEncoding::OneHot => FdVar::new_onehot(sink, t_ub, amo),
                TimeEncoding::Binary => FdVar::new_binary(sink, t_ub),
            })
            .collect();
        TimeVars {
            vars,
            encoding,
            ladders: vec![None; num_gates],
            t_ub,
        }
    }

    /// The upper bound `T_UB` the variables range under.
    pub fn t_ub(&self) -> usize {
        self.t_ub
    }

    /// Access to gate `g`'s variable.
    pub fn var_mut(&mut self, g: usize) -> &mut FdVar {
        &mut self.vars[g]
    }

    /// Immutable access to gate `g`'s variable.
    pub fn var(&self, g: usize) -> &FdVar {
        &self.vars[g]
    }

    /// Scheduled time of gate `g` in the current model.
    pub fn value_in(&self, solver: &Solver, g: usize) -> usize {
        self.vars[g].value_in(solver)
    }

    fn ladder<S: CnfSink>(&mut self, sink: &mut S, g: usize) -> &[Lit] {
        if self.ladders[g].is_none() {
            // le[t] ↔ t_g ≤ t, built as a prefix OR of selectors.
            let mut lits = Vec::with_capacity(self.t_ub);
            let mut prev: Option<Lit> = None;
            for t in 0..self.t_ub {
                let sel = self.vars[g].eq_lit(sink, t);
                let le = Lit::positive(sink.new_var());
                match prev {
                    None => {
                        // le0 ↔ sel0
                        sink.add_clause(&[!le, sel]);
                        sink.add_clause(&[le, !sel]);
                    }
                    Some(p) => {
                        sink.add_clause(&[!p, le]);
                        sink.add_clause(&[!sel, le]);
                        sink.add_clause(&[!le, p, sel]);
                    }
                }
                lits.push(le);
                prev = Some(le);
            }
            self.ladders[g] = Some(lits);
        }
        self.ladders[g].as_ref().expect("just built")
    }

    /// Asserts the relaxed dependency `t_earlier ≤ t_later`, used by the
    /// transition-based model where dependent gates may share a block.
    pub fn assert_before_or_equal<S: CnfSink>(
        &mut self,
        sink: &mut S,
        earlier: usize,
        later: usize,
    ) {
        match self.encoding {
            TimeEncoding::Binary => {
                let (a, b) = (self.vars[earlier].clone(), self.vars[later].clone());
                if let (FdRepr::Binary(ba), FdRepr::Binary(bb)) = (&a.repr, &b.repr) {
                    ba.assert_le(sink, bb);
                }
            }
            TimeEncoding::OneHot => {
                let ladder: Vec<Lit> = self.ladder(sink, earlier).to_vec();
                for t in 0..self.t_ub {
                    let sel = self.vars[later].eq_lit(sink, t);
                    sink.add_clause(&[!sel, ladder[t]]);
                }
            }
        }
    }

    /// Asserts `t_a ≠ t_b`: two gates that share a program qubit can never
    /// execute in the same time step, even when commutation leaves their
    /// *order* free (used by the commutation-aware flat model).
    pub fn assert_not_equal<S: CnfSink>(&mut self, sink: &mut S, a: usize, b: usize) {
        match self.encoding {
            TimeEncoding::OneHot => {
                for t in 0..self.t_ub {
                    let sa = self.vars[a].eq_lit(sink, t);
                    let sb = self.vars[b].eq_lit(sink, t);
                    sink.add_clause(&[!sa, !sb]);
                }
            }
            TimeEncoding::Binary => {
                let (va, vb) = (self.vars[a].clone(), self.vars[b].clone());
                let diffs: Vec<Lit> = va
                    .raw_lits()
                    .iter()
                    .zip(vb.raw_lits())
                    .map(|(&x, y)| {
                        // y ↔ x ⊕ y via Tseitin, one per bit.
                        olsq2_encode::gates::xor_lit(sink, x, y)
                    })
                    .collect();
                sink.add_clause(&diffs);
            }
        }
    }

    /// Asserts the gate-dependency constraint `t_earlier < t_later`
    /// (§II-A constraint 2).
    pub fn assert_before<S: CnfSink>(&mut self, sink: &mut S, earlier: usize, later: usize) {
        match self.encoding {
            TimeEncoding::Binary => {
                let (a, b) = (self.vars[earlier].clone(), self.vars[later].clone());
                if let (FdRepr::Binary(ba), FdRepr::Binary(bb)) = (&a.repr, &b.repr) {
                    ba.assert_lt(sink, bb);
                }
            }
            TimeEncoding::OneHot => {
                // sel(later, t) → le(earlier, t-1); sel(later, 0) impossible.
                let first = self.vars[later].eq_lit(sink, 0);
                sink.add_clause(&[!first]);
                let ladder: Vec<Lit> = self.ladder(sink, earlier).to_vec();
                for t in 1..self.t_ub {
                    let sel = self.vars[later].eq_lit(sink, t);
                    sink.add_clause(&[!sel, ladder[t - 1]]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::{SolveResult, Solver};

    fn both_reprs(domain: usize) -> Vec<(Solver, FdVar)> {
        let mut out = Vec::new();
        let mut s1 = Solver::new();
        let v1 = FdVar::new_onehot(&mut s1, domain, AmoEncoding::Pairwise);
        out.push((s1, v1));
        let mut s2 = Solver::new();
        let v2 = FdVar::new_binary(&mut s2, domain);
        out.push((s2, v2));
        out
    }

    #[test]
    fn eq_lit_matches_value() {
        for (mut s, mut v) in both_reprs(5) {
            let e3 = v.eq_lit(&mut s, 3);
            s.add_clause([e3]);
            assert_eq!(s.solve(&[]), SolveResult::Sat);
            assert_eq!(v.value_in(&s), 3);
        }
    }

    #[test]
    fn binary_excludes_values_outside_domain() {
        let mut s = Solver::new();
        let mut v = FdVar::new_binary(&mut s, 5); // width 3, but 5..8 excluded
        for val in 0..5 {
            let e = v.eq_lit(&mut s, val);
            assert_eq!(s.solve(&[e]), SolveResult::Sat, "value {val}");
        }
        // Forbid all legal values: no model remains.
        let bad: Vec<Lit> = (0..5).map(|val| !v.eq_lit(&mut s, val)).collect();
        assert_eq!(s.solve(&bad), SolveResult::Unsat);
    }

    #[test]
    fn eq_cache_returns_same_literal() {
        for (mut s, mut v) in both_reprs(6) {
            let a = v.eq_lit(&mut s, 2);
            let b = v.eq_lit(&mut s, 2);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn neq_clause_blocks_exactly_one_value() {
        for (mut s, v) in both_reprs(4) {
            let clause = v.neq_clause(1);
            s.add_clause(clause);
            let mut allowed = 0;
            for val in 0..4 {
                let conj = v.eq_conj(val);
                if s.solve(&conj) == SolveResult::Sat {
                    allowed += 1;
                }
            }
            assert_eq!(allowed, 3);
        }
    }

    #[test]
    fn le_bound_with_guard() {
        for (mut s, mut v) in both_reprs(8) {
            let g = Lit::positive(s.new_var());
            v.assert_le_if(&mut s, 3, Some(g));
            let e6 = v.eq_lit(&mut s, 6);
            assert_eq!(s.solve(&[g, e6]), SolveResult::Unsat);
            assert_eq!(s.solve(&[e6]), SolveResult::Sat);
            let e2 = v.eq_lit(&mut s, 2);
            assert_eq!(s.solve(&[g, e2]), SolveResult::Sat);
        }
    }

    #[test]
    fn dependencies_order_gates_exhaustively() {
        for encoding in [TimeEncoding::OneHot, TimeEncoding::Binary] {
            let mut s = Solver::new();
            let mut tv = TimeVars::new(&mut s, 3, 4, encoding, AmoEncoding::Pairwise);
            tv.assert_before(&mut s, 0, 1);
            tv.assert_before(&mut s, 1, 2);
            // Check every assignment triple.
            for a in 0..4 {
                for b in 0..4 {
                    for c in 0..4 {
                        let mut assumptions = Vec::new();
                        for (g, val) in [(0usize, a), (1, b), (2, c)] {
                            assumptions.push(tv.var_mut(g).eq_lit(&mut s, val));
                        }
                        let expected = a < b && b < c;
                        assert_eq!(
                            s.solve(&assumptions) == SolveResult::Sat,
                            expected,
                            "{encoding:?} {a},{b},{c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn t_ub_accessor() {
        let mut s = Solver::new();
        let tv = TimeVars::new(&mut s, 2, 7, TimeEncoding::Binary, AmoEncoding::Pairwise);
        assert_eq!(tv.t_ub(), 7);
    }
}
