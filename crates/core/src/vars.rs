//! Finite-domain variable families over the SAT substrate.
//!
//! [`FdVar`] is the bridge between the paper's SMT-level variables (mapping
//! `π_q^t`, time `t_g`) and CNF: the same model-building code works with
//! one-hot ("int") and binary ("bv") representations, which is how the
//! Table I encoding ablation is expressed.

// Indexed `for` loops are deliberate here: ladder constraints index adjacent positions.
#![allow(clippy::needless_range_loop)]
use crate::config::TimeEncoding;
use olsq2_encode::{width_for, AmoEncoding, BitVec, CnfSink, OneHot};
use olsq2_sat::{Lit, Solver};

/// A variable ranging over `0..domain`, in one of two CNF representations.
#[derive(Debug, Clone)]
pub struct FdVar {
    repr: FdRepr,
    domain: usize,
    eq_cache: Vec<Option<Lit>>,
}

#[derive(Debug, Clone)]
enum FdRepr {
    OneHot(OneHot),
    Binary(BitVec),
}

impl FdVar {
    /// One-hot representation with an exactly-one constraint.
    pub fn new_onehot<S: CnfSink>(sink: &mut S, domain: usize, amo: AmoEncoding) -> FdVar {
        FdVar::new_onehot_guarded(sink, domain, amo, None)
    }

    /// One-hot representation whose *at-least-one* constraint is guarded
    /// (`guard → some selector true`; at-most-one stays unconditional).
    ///
    /// This is the extendable-window form: when the domain later grows via
    /// [`FdVar::extend_domain`], the caller root-falsifies the old guard
    /// and a fresh guarded at-least-one over the enlarged selector set
    /// takes over. With `None` the constraint is unconditional and the
    /// variable cannot be extended.
    pub fn new_onehot_guarded<S: CnfSink>(
        sink: &mut S,
        domain: usize,
        amo: AmoEncoding,
        guard: Option<Lit>,
    ) -> FdVar {
        let oh = match guard {
            None => OneHot::new(sink, domain, amo),
            Some(g) => {
                assert!(domain > 0, "domain must be nonempty");
                let selectors: Vec<Lit> =
                    (0..domain).map(|_| Lit::positive(sink.new_var())).collect();
                let mut alo = Vec::with_capacity(domain + 1);
                alo.push(!g);
                alo.extend_from_slice(&selectors);
                sink.add_clause(&alo);
                olsq2_encode::at_most_one(sink, &selectors, amo);
                OneHot::from_selectors(selectors)
            }
        };
        FdVar {
            repr: FdRepr::OneHot(oh),
            domain,
            eq_cache: vec![None; domain],
        }
    }

    /// Binary representation; values ≥ `domain` are excluded by a
    /// comparator when `domain` is not a power of two.
    pub fn new_binary<S: CnfSink>(sink: &mut S, domain: usize) -> FdVar {
        FdVar::new_binary_guarded(sink, domain, None)
    }

    /// Binary representation whose domain-bound comparator is guarded by
    /// `guard` (see [`FdVar::new_onehot_guarded`] for the protocol).
    pub fn new_binary_guarded<S: CnfSink>(
        sink: &mut S,
        domain: usize,
        guard: Option<Lit>,
    ) -> FdVar {
        assert!(domain > 0);
        let bv = BitVec::new(sink, width_for(domain as u64 - 1));
        bv.assert_le_const_if(sink, domain as u64 - 1, guard);
        FdVar {
            repr: FdRepr::Binary(bv),
            domain,
            eq_cache: vec![None; domain],
        }
    }

    /// Grows the domain to `0..new_domain` in place, guarding the new
    /// generation's domain constraint with `guard`. Returns `false` if the
    /// representation cannot extend (binary needing a wider bit-vector) —
    /// the caller must then rebuild instead.
    ///
    /// The caller owns the generational protocol: the previous guard must
    /// be root-falsified so the old (narrower) at-least-one / domain bound
    /// stops constraining the variable. Existing at-most-one constraints,
    /// equality literals, and comparator circuits stay valid because the
    /// domain only grows.
    pub fn extend_domain<S: CnfSink>(
        &mut self,
        sink: &mut S,
        new_domain: usize,
        amo: AmoEncoding,
        guard: Lit,
    ) -> bool {
        assert!(new_domain >= self.domain, "domains only grow");
        if new_domain == self.domain {
            return true;
        }
        match &mut self.repr {
            FdRepr::Binary(bv) => {
                if width_for(new_domain as u64 - 1) != bv.width() {
                    return false; // wider vector needed: not extendable in place
                }
                bv.assert_le_const_if(sink, new_domain as u64 - 1, Some(guard));
            }
            FdRepr::OneHot(oh) => {
                let mut selectors = oh.selectors().to_vec();
                let old = selectors.len();
                selectors.extend((old..new_domain).map(|_| Lit::positive(sink.new_var())));
                match amo {
                    // Pairwise extends incrementally: only pairs touching a
                    // new selector are missing.
                    AmoEncoding::Pairwise => {
                        for i in 0..old {
                            for j in old..new_domain {
                                sink.add_clause(&[!selectors[i], !selectors[j]]);
                            }
                        }
                        for i in old..new_domain {
                            for j in (i + 1)..new_domain {
                                sink.add_clause(&[!selectors[i], !selectors[j]]);
                            }
                        }
                    }
                    // Ladder/commander auxiliaries don't extend; re-emit the
                    // whole at-most-one (redundant over old pairs but sound).
                    _ => olsq2_encode::at_most_one(sink, &selectors, amo),
                }
                let mut alo = Vec::with_capacity(new_domain + 1);
                alo.push(!guard);
                alo.extend_from_slice(&selectors);
                sink.add_clause(&alo);
                self.repr = FdRepr::OneHot(OneHot::from_selectors(selectors));
            }
        }
        self.eq_cache.resize(new_domain, None);
        self.domain = new_domain;
        true
    }

    /// Asserts `guard → self ∉ lo..hi`, used to patch previously issued
    /// bound activation literals when the domain grows past them: a cached
    /// one-hot `≤ v` bound knows nothing about selectors allocated later,
    /// so each extension forbids the new values under the same activator.
    /// (Binary comparators cover the whole bit width and need no patch.)
    pub fn forbid_range_if<S: CnfSink>(
        &mut self,
        sink: &mut S,
        range: std::ops::Range<usize>,
        guard: Option<Lit>,
    ) {
        assert!(range.end <= self.domain);
        for v in range {
            let mut clause = self.neq_clause(v);
            if let Some(g) = guard {
                clause.insert(0, !g);
            }
            sink.add_clause(&clause);
        }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// A literal that is true iff the variable equals `v`
    /// (cached per value; one-hot returns the selector directly).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the domain.
    pub fn eq_lit<S: CnfSink>(&mut self, sink: &mut S, v: usize) -> Lit {
        assert!(v < self.domain);
        if let Some(l) = self.eq_cache[v] {
            return l;
        }
        let l = match &self.repr {
            FdRepr::OneHot(oh) => oh.selector(v),
            FdRepr::Binary(bv) => bv.eq_const_lit(sink, v as u64),
        };
        self.eq_cache[v] = Some(l);
        l
    }

    /// Clause-prefix literals asserting "≠ v": at least one is true iff the
    /// variable differs from `v`. Append consequent literals to build
    /// `(self == v) → ⋁ consequents` without auxiliaries.
    pub fn neq_clause(&self, v: usize) -> Vec<Lit> {
        assert!(v < self.domain);
        match &self.repr {
            FdRepr::OneHot(oh) => vec![!oh.selector(v)],
            FdRepr::Binary(bv) => bv.neq_const_clause(v as u64),
        }
    }

    /// Literals that are *all* true iff the variable equals `v`
    /// (a conjunction antecedent).
    pub fn eq_conj(&self, v: usize) -> Vec<Lit> {
        assert!(v < self.domain);
        match &self.repr {
            FdRepr::OneHot(oh) => vec![oh.selector(v)],
            FdRepr::Binary(bv) => bv.eq_const_conj(v as u64),
        }
    }

    /// Asserts `guard → self ≤ v`.
    pub fn assert_le_if<S: CnfSink>(&mut self, sink: &mut S, v: usize, guard: Option<Lit>) {
        match &self.repr {
            FdRepr::Binary(bv) => bv.assert_le_const_if(sink, v as u64, guard),
            FdRepr::OneHot(_) => {
                for value in (v + 1)..self.domain {
                    let mut clause = Vec::with_capacity(2);
                    if let Some(g) = guard {
                        clause.push(!g);
                    }
                    let eq = self.eq_lit(sink, value);
                    clause.push(!eq);
                    sink.add_clause(&clause);
                }
            }
        }
    }

    /// The raw representation literals: the bits (binary) or selectors
    /// (one-hot). Two same-encoding variables are equal iff these agree
    /// position-wise.
    pub fn raw_lits(&self) -> Vec<Lit> {
        match &self.repr {
            FdRepr::OneHot(oh) => oh.selectors().to_vec(),
            FdRepr::Binary(bv) => bv.bits().to_vec(),
        }
    }

    /// Decodes the value from a model.
    ///
    /// # Panics
    ///
    /// Panics if the solver has no model covering this variable.
    pub fn value_in(&self, solver: &Solver) -> usize {
        match &self.repr {
            FdRepr::OneHot(oh) => oh
                .value_in(solver)
                .expect("model must assign one-hot group"),
            FdRepr::Binary(bv) => {
                bv.value_in(solver).expect("model must assign bit-vector") as usize
            }
        }
    }
}

/// The family of gate time variables with dependency support.
///
/// For one-hot time, dependencies use per-gate *prefix ladders*
/// (`le[g][t] ↔ t_g ≤ t`), giving `O(T)` clauses per dependency; for
/// binary time, a comparator circuit per dependency.
#[derive(Debug, Clone)]
pub struct TimeVars {
    vars: Vec<FdVar>,
    encoding: TimeEncoding,
    amo: AmoEncoding,
    /// Lazily built prefix ladders (one-hot only): `ladders[g][t]` ↔ `t_g ≤ t`.
    ladders: Vec<Option<Vec<Lit>>>,
    t_ub: usize,
    /// Whether construction was guarded (extension requires it).
    guarded: bool,
    /// Recorded `(earlier, later)` strict dependencies, re-emitted for the
    /// new time steps when the window is extended (one-hot only; binary
    /// comparators are domain-independent).
    befores: Vec<(usize, usize)>,
    /// Recorded relaxed dependencies (`t_earlier ≤ t_later`).
    before_or_equals: Vec<(usize, usize)>,
    /// Recorded disequalities (`t_a ≠ t_b`).
    not_equals: Vec<(usize, usize)>,
}

impl TimeVars {
    /// Allocates `num_gates` time variables over `0..t_ub`.
    ///
    /// With a `guard`, the per-variable domain constraint (at-least-one /
    /// binary upper bound) is conditional on it, which is what makes the
    /// window extendable later via [`TimeVars::extend`]; every solve must
    /// then assume the current generation's guard. With `None` the
    /// variables are unconditional and the window is fixed.
    pub fn new<S: CnfSink>(
        sink: &mut S,
        num_gates: usize,
        t_ub: usize,
        encoding: TimeEncoding,
        amo: AmoEncoding,
        guard: Option<Lit>,
    ) -> TimeVars {
        let vars = (0..num_gates)
            .map(|_| match encoding {
                TimeEncoding::OneHot => FdVar::new_onehot_guarded(sink, t_ub, amo, guard),
                TimeEncoding::Binary => FdVar::new_binary_guarded(sink, t_ub, guard),
            })
            .collect();
        TimeVars {
            vars,
            encoding,
            amo,
            ladders: vec![None; num_gates],
            t_ub,
            guarded: guard.is_some(),
            befores: Vec::new(),
            before_or_equals: Vec::new(),
            not_equals: Vec::new(),
        }
    }

    /// Extends every gate's time variable to range over `0..new_t_ub`,
    /// appending ladder rungs and re-emitting the recorded dependency
    /// constraints for the new time steps. The new generation's domain
    /// constraints are guarded by `guard`; the caller root-falsifies the
    /// previous guard. Returns `false` (leaving the family untouched) if
    /// the family was built unguarded or the binary representation needs a
    /// wider bit-vector — the caller must rebuild then.
    pub fn extend<S: CnfSink>(&mut self, sink: &mut S, new_t_ub: usize, guard: Lit) -> bool {
        assert!(new_t_ub >= self.t_ub, "windows only grow");
        if !self.guarded {
            return false;
        }
        if new_t_ub == self.t_ub {
            return true;
        }
        if self.encoding == TimeEncoding::Binary
            && width_for(new_t_ub as u64 - 1) != width_for(self.t_ub as u64 - 1)
        {
            return false;
        }
        let old_t_ub = self.t_ub;
        for v in &mut self.vars {
            let ok = v.extend_domain(sink, new_t_ub, self.amo, guard);
            debug_assert!(ok, "width checked above");
        }
        self.t_ub = new_t_ub;
        if self.encoding == TimeEncoding::Binary {
            // Comparator dependencies and xor disequalities range over the
            // full bit width already; nothing to re-emit.
            return true;
        }
        // Append rungs to the ladders that were already materialized (lazy
        // ones will simply be built at the new length).
        for g in 0..self.vars.len() {
            if self.ladders[g].is_none() {
                continue;
            }
            let mut lits = self.ladders[g].take().expect("checked above");
            let mut prev = *lits.last().expect("ladders are nonempty");
            for t in old_t_ub..new_t_ub {
                let sel = self.vars[g].eq_lit(sink, t);
                let le = Lit::positive(sink.new_var());
                sink.add_clause(&[!prev, le]);
                sink.add_clause(&[!sel, le]);
                sink.add_clause(&[!le, prev, sel]);
                lits.push(le);
                prev = le;
            }
            self.ladders[g] = Some(lits);
        }
        // Re-emit the per-time-step dependency clauses for the new steps.
        for i in 0..self.befores.len() {
            let (earlier, later) = self.befores[i];
            let ladder: Vec<Lit> = self.ladder(sink, earlier).to_vec();
            for t in old_t_ub..new_t_ub {
                let sel = self.vars[later].eq_lit(sink, t);
                sink.add_clause(&[!sel, ladder[t - 1]]);
            }
        }
        for i in 0..self.before_or_equals.len() {
            let (earlier, later) = self.before_or_equals[i];
            let ladder: Vec<Lit> = self.ladder(sink, earlier).to_vec();
            for t in old_t_ub..new_t_ub {
                let sel = self.vars[later].eq_lit(sink, t);
                sink.add_clause(&[!sel, ladder[t]]);
            }
        }
        for i in 0..self.not_equals.len() {
            let (a, b) = self.not_equals[i];
            for t in old_t_ub..new_t_ub {
                let sa = self.vars[a].eq_lit(sink, t);
                let sb = self.vars[b].eq_lit(sink, t);
                sink.add_clause(&[!sa, !sb]);
            }
        }
        true
    }

    /// The upper bound `T_UB` the variables range under.
    pub fn t_ub(&self) -> usize {
        self.t_ub
    }

    /// Access to gate `g`'s variable.
    pub fn var_mut(&mut self, g: usize) -> &mut FdVar {
        &mut self.vars[g]
    }

    /// Immutable access to gate `g`'s variable.
    pub fn var(&self, g: usize) -> &FdVar {
        &self.vars[g]
    }

    /// Scheduled time of gate `g` in the current model.
    pub fn value_in(&self, solver: &Solver, g: usize) -> usize {
        self.vars[g].value_in(solver)
    }

    fn ladder<S: CnfSink>(&mut self, sink: &mut S, g: usize) -> &[Lit] {
        if self.ladders[g].is_none() {
            // le[t] ↔ t_g ≤ t, built as a prefix OR of selectors.
            let mut lits = Vec::with_capacity(self.t_ub);
            let mut prev: Option<Lit> = None;
            for t in 0..self.t_ub {
                let sel = self.vars[g].eq_lit(sink, t);
                let le = Lit::positive(sink.new_var());
                match prev {
                    None => {
                        // le0 ↔ sel0
                        sink.add_clause(&[!le, sel]);
                        sink.add_clause(&[le, !sel]);
                    }
                    Some(p) => {
                        sink.add_clause(&[!p, le]);
                        sink.add_clause(&[!sel, le]);
                        sink.add_clause(&[!le, p, sel]);
                    }
                }
                lits.push(le);
                prev = Some(le);
            }
            self.ladders[g] = Some(lits);
        }
        self.ladders[g].as_ref().expect("just built")
    }

    /// Asserts the relaxed dependency `t_earlier ≤ t_later`, used by the
    /// transition-based model where dependent gates may share a block.
    pub fn assert_before_or_equal<S: CnfSink>(
        &mut self,
        sink: &mut S,
        earlier: usize,
        later: usize,
    ) {
        match self.encoding {
            TimeEncoding::Binary => {
                let (a, b) = (self.vars[earlier].clone(), self.vars[later].clone());
                if let (FdRepr::Binary(ba), FdRepr::Binary(bb)) = (&a.repr, &b.repr) {
                    ba.assert_le(sink, bb);
                }
            }
            TimeEncoding::OneHot => {
                self.before_or_equals.push((earlier, later));
                let ladder: Vec<Lit> = self.ladder(sink, earlier).to_vec();
                for t in 0..self.t_ub {
                    let sel = self.vars[later].eq_lit(sink, t);
                    sink.add_clause(&[!sel, ladder[t]]);
                }
            }
        }
    }

    /// Asserts `t_a ≠ t_b`: two gates that share a program qubit can never
    /// execute in the same time step, even when commutation leaves their
    /// *order* free (used by the commutation-aware flat model).
    pub fn assert_not_equal<S: CnfSink>(&mut self, sink: &mut S, a: usize, b: usize) {
        match self.encoding {
            TimeEncoding::OneHot => {
                self.not_equals.push((a, b));
                for t in 0..self.t_ub {
                    let sa = self.vars[a].eq_lit(sink, t);
                    let sb = self.vars[b].eq_lit(sink, t);
                    sink.add_clause(&[!sa, !sb]);
                }
            }
            TimeEncoding::Binary => {
                let (va, vb) = (self.vars[a].clone(), self.vars[b].clone());
                let diffs: Vec<Lit> = va
                    .raw_lits()
                    .iter()
                    .zip(vb.raw_lits())
                    .map(|(&x, y)| {
                        // y ↔ x ⊕ y via Tseitin, one per bit.
                        olsq2_encode::gates::xor_lit(sink, x, y)
                    })
                    .collect();
                sink.add_clause(&diffs);
            }
        }
    }

    /// Asserts the gate-dependency constraint `t_earlier < t_later`
    /// (§II-A constraint 2).
    pub fn assert_before<S: CnfSink>(&mut self, sink: &mut S, earlier: usize, later: usize) {
        match self.encoding {
            TimeEncoding::Binary => {
                let (a, b) = (self.vars[earlier].clone(), self.vars[later].clone());
                if let (FdRepr::Binary(ba), FdRepr::Binary(bb)) = (&a.repr, &b.repr) {
                    ba.assert_lt(sink, bb);
                }
            }
            TimeEncoding::OneHot => {
                self.befores.push((earlier, later));
                // sel(later, t) → le(earlier, t-1); sel(later, 0) impossible.
                let first = self.vars[later].eq_lit(sink, 0);
                sink.add_clause(&[!first]);
                let ladder: Vec<Lit> = self.ladder(sink, earlier).to_vec();
                for t in 1..self.t_ub {
                    let sel = self.vars[later].eq_lit(sink, t);
                    sink.add_clause(&[!sel, ladder[t - 1]]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_sat::{SolveResult, Solver};

    fn both_reprs(domain: usize) -> Vec<(Solver, FdVar)> {
        let mut out = Vec::new();
        let mut s1 = Solver::new();
        let v1 = FdVar::new_onehot(&mut s1, domain, AmoEncoding::Pairwise);
        out.push((s1, v1));
        let mut s2 = Solver::new();
        let v2 = FdVar::new_binary(&mut s2, domain);
        out.push((s2, v2));
        out
    }

    #[test]
    fn eq_lit_matches_value() {
        for (mut s, mut v) in both_reprs(5) {
            let e3 = v.eq_lit(&mut s, 3);
            s.add_clause([e3]);
            assert_eq!(s.solve(&[]), SolveResult::Sat);
            assert_eq!(v.value_in(&s), 3);
        }
    }

    #[test]
    fn binary_excludes_values_outside_domain() {
        let mut s = Solver::new();
        let mut v = FdVar::new_binary(&mut s, 5); // width 3, but 5..8 excluded
        for val in 0..5 {
            let e = v.eq_lit(&mut s, val);
            assert_eq!(s.solve(&[e]), SolveResult::Sat, "value {val}");
        }
        // Forbid all legal values: no model remains.
        let bad: Vec<Lit> = (0..5).map(|val| !v.eq_lit(&mut s, val)).collect();
        assert_eq!(s.solve(&bad), SolveResult::Unsat);
    }

    #[test]
    fn eq_cache_returns_same_literal() {
        for (mut s, mut v) in both_reprs(6) {
            let a = v.eq_lit(&mut s, 2);
            let b = v.eq_lit(&mut s, 2);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn neq_clause_blocks_exactly_one_value() {
        for (mut s, v) in both_reprs(4) {
            let clause = v.neq_clause(1);
            s.add_clause(clause);
            let mut allowed = 0;
            for val in 0..4 {
                let conj = v.eq_conj(val);
                if s.solve(&conj) == SolveResult::Sat {
                    allowed += 1;
                }
            }
            assert_eq!(allowed, 3);
        }
    }

    #[test]
    fn le_bound_with_guard() {
        for (mut s, mut v) in both_reprs(8) {
            let g = Lit::positive(s.new_var());
            v.assert_le_if(&mut s, 3, Some(g));
            let e6 = v.eq_lit(&mut s, 6);
            assert_eq!(s.solve(&[g, e6]), SolveResult::Unsat);
            assert_eq!(s.solve(&[e6]), SolveResult::Sat);
            let e2 = v.eq_lit(&mut s, 2);
            assert_eq!(s.solve(&[g, e2]), SolveResult::Sat);
        }
    }

    #[test]
    fn dependencies_order_gates_exhaustively() {
        for encoding in [TimeEncoding::OneHot, TimeEncoding::Binary] {
            let mut s = Solver::new();
            let mut tv = TimeVars::new(&mut s, 3, 4, encoding, AmoEncoding::Pairwise, None);
            tv.assert_before(&mut s, 0, 1);
            tv.assert_before(&mut s, 1, 2);
            // Check every assignment triple.
            for a in 0..4 {
                for b in 0..4 {
                    for c in 0..4 {
                        let mut assumptions = Vec::new();
                        for (g, val) in [(0usize, a), (1, b), (2, c)] {
                            assumptions.push(tv.var_mut(g).eq_lit(&mut s, val));
                        }
                        let expected = a < b && b < c;
                        assert_eq!(
                            s.solve(&assumptions) == SolveResult::Sat,
                            expected,
                            "{encoding:?} {a},{b},{c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn extend_domain_matches_fresh_semantics() {
        // 5 → 7 keeps the binary width (both need 3 bits), so both
        // representations extend in place.
        for onehot in [true, false] {
            let mut s = Solver::new();
            let g0 = Lit::positive(s.new_var());
            let mut v = if onehot {
                FdVar::new_onehot_guarded(&mut s, 5, AmoEncoding::Pairwise, Some(g0))
            } else {
                FdVar::new_binary_guarded(&mut s, 5, Some(g0))
            };
            let e2 = v.eq_lit(&mut s, 2);
            assert_eq!(s.solve(&[g0, e2]), SolveResult::Sat);
            let g1 = Lit::positive(s.new_var());
            assert!(v.extend_domain(&mut s, 7, AmoEncoding::Pairwise, g1));
            s.add_clause([!g0]);
            for val in 0..7 {
                let e = v.eq_lit(&mut s, val);
                assert_eq!(s.solve(&[g1, e]), SolveResult::Sat, "value {val}");
            }
            // Forbid all legal values: the guarded at-least-one / domain
            // bound still forces one of them.
            let mut bad: Vec<Lit> = (0..7).map(|val| !v.eq_lit(&mut s, val)).collect();
            bad.push(g1);
            assert_eq!(s.solve(&bad), SolveResult::Unsat);
        }
    }

    #[test]
    fn binary_extension_fails_when_width_grows() {
        let mut s = Solver::new();
        let g0 = Lit::positive(s.new_var());
        let mut v = FdVar::new_binary_guarded(&mut s, 4, Some(g0)); // 2 bits
        let g1 = Lit::positive(s.new_var());
        assert!(!v.extend_domain(&mut s, 6, AmoEncoding::Pairwise, g1)); // needs 3
        assert_eq!(v.domain(), 4);
    }

    #[test]
    fn forbid_range_patches_stale_bound() {
        let mut s = Solver::new();
        let g0 = Lit::positive(s.new_var());
        let mut v = FdVar::new_onehot_guarded(&mut s, 4, AmoEncoding::Pairwise, Some(g0));
        // A "≤ 2" activation issued before the extension…
        let act = Lit::positive(s.new_var());
        v.assert_le_if(&mut s, 2, Some(act));
        let g1 = Lit::positive(s.new_var());
        assert!(v.extend_domain(&mut s, 6, AmoEncoding::Pairwise, g1));
        s.add_clause([!g0]);
        // …knows nothing about the new values until patched.
        v.forbid_range_if(&mut s, 4..6, Some(act));
        let e5 = v.eq_lit(&mut s, 5);
        assert_eq!(s.solve(&[g1, act, e5]), SolveResult::Unsat);
        assert_eq!(s.solve(&[g1, e5]), SolveResult::Sat);
        let e1 = v.eq_lit(&mut s, 1);
        assert_eq!(s.solve(&[g1, act, e1]), SolveResult::Sat);
    }

    #[test]
    fn time_extension_preserves_dependency_semantics() {
        for encoding in [TimeEncoding::OneHot, TimeEncoding::Binary] {
            // 5 → 7 keeps binary width, so both encodings extend.
            let mut s = Solver::new();
            let g0 = Lit::positive(s.new_var());
            let mut tv = TimeVars::new(&mut s, 3, 5, encoding, AmoEncoding::Pairwise, Some(g0));
            tv.assert_before(&mut s, 0, 1);
            tv.assert_before_or_equal(&mut s, 1, 2);
            tv.assert_not_equal(&mut s, 0, 2);
            let g1 = Lit::positive(s.new_var());
            assert!(tv.extend(&mut s, 7, g1));
            assert_eq!(tv.t_ub(), 7);
            s.add_clause([!g0]);
            for a in 0..7 {
                for b in 0..7 {
                    for c in 0..7 {
                        let mut assumptions = vec![g1];
                        for (g, val) in [(0usize, a), (1, b), (2, c)] {
                            assumptions.push(tv.var_mut(g).eq_lit(&mut s, val));
                        }
                        let expected = a < b && b <= c && a != c;
                        assert_eq!(
                            s.solve(&assumptions) == SolveResult::Sat,
                            expected,
                            "{encoding:?} {a},{b},{c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unguarded_time_vars_refuse_extension() {
        let mut s = Solver::new();
        let mut tv = TimeVars::new(
            &mut s,
            2,
            4,
            TimeEncoding::OneHot,
            AmoEncoding::Pairwise,
            None,
        );
        let g = Lit::positive(s.new_var());
        assert!(!tv.extend(&mut s, 6, g));
        assert_eq!(tv.t_ub(), 4);
    }

    #[test]
    fn t_ub_accessor() {
        let mut s = Solver::new();
        let tv = TimeVars::new(
            &mut s,
            2,
            7,
            TimeEncoding::Binary,
            AmoEncoding::Pairwise,
            None,
        );
        assert_eq!(tv.t_ub(), 7);
    }
}
