//! Portfolio synthesis — the parallelization the paper's §V names as
//! future work: "build a portfolio of instances by generating
//! configurations … including different encoding methods, as there does
//! not appear to be a single best-in-class method with respect to solving
//! time".
//!
//! Each portfolio member runs the full optimization loop with its own
//! encoding configuration on its own thread; the first member to finish
//! wins and the rest are cancelled through the solver's cooperative stop
//! flag.
//!
//! Beyond racing encodings, the portfolio supports HordeSat-style
//! cooperation: [`PortfolioConfig::diversify`] expands each encoding
//! into a cohort of seed-diversified members (randomized branching,
//! polarity, decay, restart schedule), and [`PortfolioConfig::with_sharing`]
//! wires each cohort to a [`SharedClausePool`]
//! so members trade learned clauses. Clauses only flow inside a cohort —
//! between solvers over the same variable space — enforced by the
//! fingerprint fence described in the [`crate::sharing`] module docs.

use crate::config::{EncodingConfig, SolverDiversification, SynthesisConfig};
use crate::cube::{CubeParams, CubeSynthesizer};
use crate::model::ModelSeed;
use crate::optimize::{Olsq2Synthesizer, SynthesisError, SynthesisOutcome};
use crate::sharing::{CohortEndpoint, SharedClausePool, SharingStats};
use olsq2_arch::CouplingGraph;
use olsq2_circuit::Circuit;
use olsq2_sat::ClauseExchange;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// Shape of a portfolio: which encodings run, how many seed-diversified
/// members each encoding expands into, and whether cohorts share learned
/// clauses.
///
/// # Examples
///
/// ```
/// use olsq2::PortfolioConfig;
/// // Two encodings × 2 diversified members, trading clauses: 4 threads.
/// let cfg = PortfolioConfig::standard().diversify(2).with_sharing();
/// assert!(cfg.share);
/// assert_eq!(cfg.per_encoding, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioConfig {
    /// The encodings to race (one cohort each).
    pub encodings: Vec<EncodingConfig>,
    /// Members per encoding; members beyond the first in each cohort get
    /// seed-diversified solver knobs ([`SolverDiversification::variant`]).
    pub per_encoding: usize,
    /// Wire same-encoding cohorts to a shared learned-clause pool.
    pub share: bool,
    /// Seed for the diversification stream (reproducible portfolios).
    pub seed: u64,
    /// Clause capacity of each member's pool shard when sharing.
    pub pool_capacity: usize,
    /// When set, one extra member (first encoding, vanilla solver) runs
    /// the cube-and-conquer decrement phase ([`CubeSynthesizer`])
    /// instead of the sequential loop on depth races.
    pub cube: Option<CubeParams>,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            encodings: vec![
                EncodingConfig::int(),
                EncodingConfig::bv(),
                EncodingConfig::euf_int(),
            ],
            per_encoding: 1,
            share: false,
            seed: 0x0152_C0DE,
            pool_capacity: 4096,
            cube: None,
        }
    }
}

impl PortfolioConfig {
    /// The standard three-encoding portfolio, one member each, no sharing
    /// (matches [`PortfolioSynthesizer::standard`]).
    pub fn standard() -> Self {
        Self::default()
    }

    /// Expands every encoding into a cohort of `n` seed-diversified
    /// members. The first member of each cohort keeps vanilla solver
    /// settings, so `diversify(1)` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn diversify(mut self, n: usize) -> Self {
        assert!(n > 0, "each encoding needs at least one member");
        self.per_encoding = n;
        self
    }

    /// Enables learned-clause sharing inside each same-encoding cohort.
    pub fn with_sharing(mut self) -> Self {
        self.share = true;
        self
    }

    /// Sets the diversification seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the encoding list.
    ///
    /// # Panics
    ///
    /// Panics if `encodings` is empty.
    pub fn with_encodings(mut self, encodings: Vec<EncodingConfig>) -> Self {
        assert!(
            !encodings.is_empty(),
            "portfolio needs at least one encoding"
        );
        self.encodings = encodings;
        self
    }

    /// Adds a cube-and-conquer member to depth races (see
    /// [`PortfolioConfig::cube`]).
    pub fn with_cube(mut self, params: CubeParams) -> Self {
        self.cube = Some(params);
        self
    }

    /// Total member count (`encodings × per_encoding`, plus the cube
    /// member when configured).
    pub fn num_members(&self) -> usize {
        self.encodings.len() * self.per_encoding + usize::from(self.cube.is_some())
    }
}

/// How one portfolio member runs the optimization loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberStrategy {
    /// The sequential decrement loop ([`Olsq2Synthesizer`]).
    Sequential,
    /// Cube-and-conquer decrement phase ([`CubeSynthesizer`]) on depth
    /// races; SWAP races fall back to the sequential loop (the cube
    /// engine only races depth bounds). The member's cohort shares
    /// clauses internally — a portfolio-level sharing endpoint assigned
    /// to this member is not used.
    CubeAndConquer(CubeParams),
}

/// The objective a race optimizes.
#[derive(Debug, Clone, Copy)]
enum Objective {
    Depth,
    Swaps,
}

/// A parallel portfolio of OLSQ2 configurations (§V future direction).
///
/// # Examples
///
/// ```
/// use olsq2::{PortfolioSynthesizer, SynthesisConfig};
/// use olsq2_arch::line;
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// use olsq2_layout::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(3);
/// circuit.push(Gate::two(GateKind::Cx, 0, 1));
/// circuit.push(Gate::two(GateKind::Cx, 1, 2));
/// circuit.push(Gate::two(GateKind::Cx, 0, 2));
/// let graph = line(3);
/// let portfolio =
///     PortfolioSynthesizer::standard(SynthesisConfig::with_swap_duration(1));
/// let (outcome, winner) = portfolio.optimize_depth(&circuit, &graph)?;
/// assert!(outcome.proven_optimal);
/// assert_eq!(verify(&circuit, &graph, &outcome.result), Ok(()));
/// assert!(winner < portfolio.num_members());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PortfolioSynthesizer {
    members: Vec<SynthesisConfig>,
    /// Per-member strategy, indexed like `members`.
    strategies: Vec<MemberStrategy>,
    /// Wire same-encoding cohorts to a shared clause pool during races.
    share: bool,
    /// Per-shard clause capacity for the cohort pools.
    pool_capacity: usize,
}

/// What happened to one portfolio member during a race.
#[derive(Debug, Clone)]
pub enum MemberOutcome {
    /// This member produced the first successful outcome.
    Won(SynthesisOutcome),
    /// This member completed a full solve, but after the winner — its
    /// result was discarded.
    Finished(SynthesisOutcome),
    /// This member observed the stop flag after the winner was decided and
    /// aborted without completing a solve.
    Cancelled,
    /// This member failed on its own (model error, genuine budget
    /// exhaustion before any winner, unroutable window).
    Failed(SynthesisError),
}

impl MemberOutcome {
    /// Whether this member was cancelled by the winner's stop flag.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, MemberOutcome::Cancelled)
    }

    /// Whether this member won the race.
    pub fn is_winner(&self) -> bool {
        matches!(self, MemberOutcome::Won(_))
    }
}

/// Full account of a portfolio race: the winning outcome plus the fate of
/// every member, in member order.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// The winning outcome.
    pub outcome: SynthesisOutcome,
    /// Index of the winning member.
    pub winner: usize,
    /// Per-member fates, indexed like the member configurations.
    pub members: Vec<MemberOutcome>,
    /// Aggregate clause-sharing volumes, when sharing was enabled
    /// (`None` for a non-sharing portfolio).
    pub sharing: Option<SharingStats>,
}

impl PortfolioSynthesizer {
    /// Builds a portfolio from explicit member configurations.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<SynthesisConfig>) -> PortfolioSynthesizer {
        assert!(!members.is_empty(), "portfolio needs at least one member");
        let strategies = vec![MemberStrategy::Sequential; members.len()];
        PortfolioSynthesizer {
            members,
            strategies,
            share: false,
            pool_capacity: PortfolioConfig::default().pool_capacity,
        }
    }

    /// The standard portfolio: the base configuration with the one-hot,
    /// bit-vector, and inverse-channeling encodings.
    pub fn standard(base: SynthesisConfig) -> PortfolioSynthesizer {
        Self::with_config(base, &PortfolioConfig::standard())
    }

    /// Builds a portfolio from a base configuration and a
    /// [`PortfolioConfig`] shape: one cohort per encoding, `per_encoding`
    /// seed-diversified members each, optional clause sharing inside
    /// cohorts.
    pub fn with_config(base: SynthesisConfig, cfg: &PortfolioConfig) -> PortfolioSynthesizer {
        assert!(
            !cfg.encodings.is_empty(),
            "portfolio needs at least one member"
        );
        assert!(
            cfg.per_encoding > 0,
            "portfolio needs at least one member per encoding"
        );
        let mut members = Vec::with_capacity(cfg.num_members());
        for (e, &encoding) in cfg.encodings.iter().enumerate() {
            for k in 0..cfg.per_encoding {
                members.push(SynthesisConfig {
                    encoding,
                    // Index 0 in each cohort keeps vanilla settings; the
                    // per-cohort seed twist keeps cohorts from mirroring
                    // each other's variants.
                    diversification: SolverDiversification::variant(
                        cfg.seed ^ (e as u64).wrapping_mul(0xA5A5_A5A5_A5A5_A5A5),
                        k,
                    ),
                    ..base.clone()
                });
            }
        }
        let mut strategies = vec![MemberStrategy::Sequential; members.len()];
        if let Some(params) = &cfg.cube {
            members.push(SynthesisConfig {
                encoding: cfg.encodings[0],
                ..base.clone()
            });
            strategies.push(MemberStrategy::CubeAndConquer(params.clone()));
        }
        PortfolioSynthesizer {
            members,
            strategies,
            share: cfg.share,
            pool_capacity: cfg.pool_capacity,
        }
    }

    /// Appends a cube-and-conquer member (cloning the first member's
    /// configuration) to an explicitly constructed portfolio.
    pub fn with_cube_member(mut self, params: CubeParams) -> PortfolioSynthesizer {
        self.members.push(self.members[0].clone());
        self.strategies.push(MemberStrategy::CubeAndConquer(params));
        self
    }

    /// The per-member strategies, indexed like the member configurations.
    pub fn strategies(&self) -> &[MemberStrategy] {
        &self.strategies
    }

    /// Enables learned-clause sharing inside same-encoding cohorts for an
    /// explicitly constructed portfolio (see [`PortfolioConfig::with_sharing`]).
    pub fn enable_sharing(mut self) -> PortfolioSynthesizer {
        self.share = true;
        self
    }

    /// Number of member configurations.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Runs depth optimization on every member in parallel; returns the
    /// first successful outcome and the index of the winning member.
    ///
    /// # Errors
    ///
    /// Returns the first member's error if *all* members fail.
    pub fn optimize_depth(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<(SynthesisOutcome, usize), SynthesisError> {
        self.optimize_depth_report(circuit, graph)
            .map(|r| (r.outcome, r.winner))
    }

    /// Runs SWAP optimization on every member in parallel; returns the
    /// first successful outcome and the index of the winning member.
    ///
    /// # Errors
    ///
    /// Returns the first member's error if *all* members fail.
    pub fn optimize_swaps(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<(SynthesisOutcome, usize), SynthesisError> {
        self.optimize_swaps_report(circuit, graph)
            .map(|r| (r.outcome, r.winner))
    }

    /// Like [`PortfolioSynthesizer::optimize_depth`], but also reports the
    /// fate of every member ([`MemberOutcome`]) — whether losers were
    /// cancelled through the stop flag or completed anyway.
    ///
    /// # Errors
    ///
    /// Returns the first member's error if *all* members fail.
    pub fn optimize_depth_report(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<PortfolioReport, SynthesisError> {
        self.race(circuit, graph, Objective::Depth)
    }

    /// Like [`PortfolioSynthesizer::optimize_swaps`], but also reports the
    /// fate of every member ([`MemberOutcome`]).
    ///
    /// # Errors
    ///
    /// Returns the first member's error if *all* members fail.
    pub fn optimize_swaps_report(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<PortfolioReport, SynthesisError> {
        self.race(circuit, graph, Objective::Swaps)
    }

    fn race(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        objective: Objective,
    ) -> Result<PortfolioReport, SynthesisError> {
        let stop = Arc::new(AtomicBool::new(false));
        let endpoints = self.make_endpoints();
        let seeds = self.make_seeds(circuit, graph);
        let (tx, rx) = mpsc::channel::<(usize, Result<SynthesisOutcome, SynthesisError>)>();
        std::thread::scope(|scope| {
            for (idx, member) in self.members.iter().enumerate() {
                let mut config = member.clone();
                config.stop_flag = Some(stop.clone());
                config.clause_exchange =
                    endpoints[idx].clone().map(|e| e as Arc<dyn ClauseExchange>);
                config.model_seed = seeds[idx].clone();
                let tx = tx.clone();
                let strategy = &self.strategies[idx];
                scope.spawn(move || {
                    let result = match (strategy, objective) {
                        (MemberStrategy::CubeAndConquer(p), Objective::Depth) => {
                            // The cube member wires its own internal
                            // cohort sharing; a portfolio endpoint would
                            // go unused.
                            config.clause_exchange = None;
                            CubeSynthesizer::new(config, p.clone())
                                .optimize_depth(circuit, graph)
                                .map(|c| c.outcome)
                        }
                        (_, Objective::Depth) => {
                            Olsq2Synthesizer::new(config).optimize_depth(circuit, graph)
                        }
                        (_, Objective::Swaps) => Olsq2Synthesizer::new(config)
                            .optimize_swaps(circuit, graph)
                            .map(|o| o.best),
                    };
                    let _ = tx.send((idx, result));
                });
            }
            drop(tx);
            // The scope joins every thread before returning, so collecting
            // all member fates costs nothing beyond the stop-flag latency:
            // once the winner sets the flag, losers abort at their next
            // conflict boundary and report `BudgetExhausted`.
            let mut fates: Vec<Option<MemberOutcome>> =
                (0..self.members.len()).map(|_| None).collect();
            let mut winner: Option<usize> = None;
            let mut first_error: Option<SynthesisError> = None;
            for (idx, result) in rx {
                fates[idx] = Some(match result {
                    Ok(outcome) => {
                        if winner.is_none() {
                            winner = Some(idx);
                            stop.store(true, Ordering::Relaxed);
                            MemberOutcome::Won(outcome)
                        } else {
                            MemberOutcome::Finished(outcome)
                        }
                    }
                    Err(SynthesisError::BudgetExhausted) if winner.is_some() => {
                        // The stop flag surfaces as a budget result; after a
                        // winner is decided, that means "cancelled".
                        MemberOutcome::Cancelled
                    }
                    Err(e) => {
                        first_error.get_or_insert(e.clone());
                        MemberOutcome::Failed(e)
                    }
                });
            }
            // Per-member win-fate counters (obs: `portfolio.*`).
            for (idx, fate) in fates.iter().enumerate() {
                let recorder = &self.members[idx].recorder;
                if !recorder.is_enabled() {
                    continue;
                }
                if let Some(fate) = fate {
                    recorder.add(
                        match fate {
                            MemberOutcome::Won(_) => "portfolio.won",
                            MemberOutcome::Finished(_) => "portfolio.finished",
                            MemberOutcome::Cancelled => "portfolio.cancelled",
                            MemberOutcome::Failed(_) => "portfolio.failed",
                        },
                        1,
                    );
                }
            }
            match winner {
                Some(w) => {
                    let members: Vec<MemberOutcome> = fates
                        .into_iter()
                        .map(|f| f.expect("every member reports exactly once"))
                        .collect();
                    let outcome = match &members[w] {
                        MemberOutcome::Won(o) => o.clone(),
                        _ => unreachable!("winner slot holds the winning outcome"),
                    };
                    Ok(PortfolioReport {
                        outcome,
                        winner: w,
                        members,
                        sharing: self.share.then(|| {
                            endpoints
                                .iter()
                                .flatten()
                                .fold(SharingStats::default(), |acc, e| {
                                    let s = e.stats();
                                    SharingStats {
                                        exported: acc.exported + s.exported,
                                        imported: acc.imported + s.imported,
                                        filtered: acc.filtered + s.filtered,
                                    }
                                })
                        }),
                    })
                }
                None => Err(first_error.unwrap_or(SynthesisError::BudgetExhausted)),
            }
        })
    }

    /// Encode-once cohort spawning: one [`ModelSeed`] per same-encoding
    /// cohort of sequential members of size ≥ 2 (when fork spawning is
    /// on); `None` elsewhere. The cohort's formula is encoded a single
    /// time on a neutral configuration — member knobs (diversification,
    /// stop flag, sharing endpoint, budgets) are re-applied per fork —
    /// and every member forks the template in O(memcpy) instead of
    /// paying its own encode. Cohort templates build in parallel, so a
    /// multi-cohort portfolio's spawn wall clock stays one encode.
    ///
    /// A template that fails to build yields no seed; its members then
    /// hit (and report) the same error through their own fresh builds,
    /// keeping failure behavior identical to the per-member path.
    fn make_seeds(&self, circuit: &Circuit, graph: &CouplingGraph) -> Vec<Option<ModelSeed>> {
        let mut seeds: Vec<Option<ModelSeed>> = vec![None; self.members.len()];
        let mut cohorts: HashMap<EncodingConfig, Vec<usize>> = HashMap::new();
        for (idx, member) in self.members.iter().enumerate() {
            // The cube member forks its own worker pool internally.
            if member.fork_spawn && matches!(self.strategies[idx], MemberStrategy::Sequential) {
                cohorts.entry(member.encoding).or_default().push(idx);
            }
        }
        let cohort_list: Vec<Vec<usize>> = cohorts
            .into_values()
            .filter(|indices| indices.len() >= 2)
            .collect();
        if cohort_list.is_empty() {
            return seeds;
        }
        let built: Vec<(Vec<usize>, Option<ModelSeed>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = cohort_list
                .into_iter()
                .map(|indices| {
                    scope.spawn(move || {
                        let mut template_cfg = self.members[indices[0]].clone();
                        template_cfg.diversification = SolverDiversification::default();
                        template_cfg.stop_flag = None;
                        template_cfg.clause_exchange = None;
                        template_cfg.model_seed = None;
                        template_cfg.snapshot_slot = None;
                        template_cfg.incumbent = None;
                        let synth = Olsq2Synthesizer::new(template_cfg.clone());
                        let dag = synth.dependency_graph(circuit);
                        let t_ub = synth.initial_t_ub(dag.longest_chain().max(1));
                        let seed = synth.build_model(circuit, graph, t_ub).ok().map(|model| {
                            ModelSeed::capture(
                                model,
                                ModelSeed::instance_fingerprint(circuit, graph, &template_cfg),
                            )
                        });
                        (indices, seed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("template build thread"))
                .collect()
        });
        for (indices, seed) in built {
            if let Some(seed) = seed {
                for idx in indices {
                    seeds[idx] = Some(seed.clone());
                }
            }
        }
        seeds
    }

    /// One [`CohortEndpoint`] per member of every same-encoding cohort of
    /// size ≥ 2 (when sharing is on); `None` elsewhere. Singleton cohorts
    /// get no endpoint — they would have nobody to trade with.
    fn make_endpoints(&self) -> Vec<Option<Arc<CohortEndpoint>>> {
        let mut endpoints: Vec<Option<Arc<CohortEndpoint>>> = vec![None; self.members.len()];
        if !self.share {
            return endpoints;
        }
        let mut cohorts: HashMap<EncodingConfig, Vec<usize>> = HashMap::new();
        for (idx, member) in self.members.iter().enumerate() {
            cohorts.entry(member.encoding).or_default().push(idx);
        }
        for indices in cohorts.into_values() {
            if indices.len() < 2 {
                continue;
            }
            let pool = Arc::new(SharedClausePool::new(indices.len(), self.pool_capacity));
            for (slot, &idx) in indices.iter().enumerate() {
                endpoints[idx] = Some(Arc::new(
                    CohortEndpoint::new(pool.clone(), slot, self.members[idx].recorder.clone())
                        .with_probe(self.members[idx].probe.clone()),
                ));
            }
        }
        endpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_arch::{grid, line};
    use olsq2_circuit::generators::qaoa_circuit;
    use olsq2_circuit::{Gate, GateKind};
    use olsq2_layout::verify;
    use std::time::Duration;

    fn triangle() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c.push(Gate::two(GateKind::Cx, 0, 2));
        c
    }

    #[test]
    fn portfolio_depth_matches_single_config() {
        let circuit = triangle();
        let graph = line(3);
        let base = SynthesisConfig::with_swap_duration(1);
        let single = Olsq2Synthesizer::new(base.clone())
            .optimize_depth(&circuit, &graph)
            .expect("solves");
        let portfolio = PortfolioSynthesizer::standard(base);
        let (outcome, winner) = portfolio.optimize_depth(&circuit, &graph).expect("solves");
        assert_eq!(outcome.result.depth, single.result.depth);
        assert!(winner < 3);
        assert_eq!(verify(&circuit, &graph, &outcome.result), Ok(()));
    }

    #[test]
    fn portfolio_swaps_on_qaoa() {
        let circuit = qaoa_circuit(6, 3);
        let graph = grid(3, 3);
        let mut base = SynthesisConfig::with_swap_duration(1);
        base.pareto_relax_limit = Some(0);
        base.time_budget = Some(Duration::from_secs(120));
        let portfolio = PortfolioSynthesizer::standard(base);
        let (outcome, _) = portfolio.optimize_swaps(&circuit, &graph).expect("solves");
        assert_eq!(verify(&circuit, &graph, &outcome.result), Ok(()));
    }

    #[test]
    fn diversified_sharing_race_matches_single_and_reports_stats() {
        let circuit = triangle();
        let graph = line(3);
        let base = SynthesisConfig::with_swap_duration(1);
        let single = Olsq2Synthesizer::new(base.clone())
            .optimize_depth(&circuit, &graph)
            .expect("solves");
        let cfg = PortfolioConfig::standard()
            .with_encodings(vec![EncodingConfig::int()])
            .diversify(3)
            .with_sharing()
            .with_seed(11);
        let portfolio = PortfolioSynthesizer::with_config(base, &cfg);
        assert_eq!(portfolio.num_members(), 3);
        let report = portfolio
            .optimize_depth_report(&circuit, &graph)
            .expect("solves");
        assert_eq!(report.outcome.result.depth, single.result.depth);
        assert_eq!(verify(&circuit, &graph, &report.outcome.result), Ok(()));
        // Sharing was on: stats must be present (volumes may be zero on
        // an instance this tiny, but the wiring must be there).
        assert!(report.sharing.is_some());
        assert_eq!(report.members.len(), 3);
    }

    #[test]
    fn cube_member_races_and_agrees_on_the_optimum() {
        let circuit = qaoa_circuit(4, 0xA5);
        let graph = line(4);
        let base = SynthesisConfig::default();
        let single = Olsq2Synthesizer::new(base.clone())
            .optimize_depth(&circuit, &graph)
            .expect("solves");
        let cfg = PortfolioConfig::standard()
            .with_encodings(vec![EncodingConfig::int()])
            .with_cube(CubeParams {
                workers: 2,
                ..CubeParams::default()
            });
        let portfolio = PortfolioSynthesizer::with_config(base, &cfg);
        assert_eq!(portfolio.num_members(), 2);
        assert!(matches!(
            portfolio.strategies()[1],
            MemberStrategy::CubeAndConquer(_)
        ));
        let report = portfolio
            .optimize_depth_report(&circuit, &graph)
            .expect("solves");
        assert_eq!(report.outcome.result.depth, single.result.depth);
        assert_eq!(verify(&circuit, &graph, &report.outcome.result), Ok(()));
        // On a SWAP race the cube member falls back to sequential and
        // the race still terminates.
        let swap_base = SynthesisConfig {
            pareto_relax_limit: Some(0),
            ..SynthesisConfig::default()
        };
        let portfolio = PortfolioSynthesizer::with_config(swap_base, &cfg);
        let (outcome, _) = portfolio.optimize_swaps(&circuit, &graph).expect("solves");
        assert_eq!(verify(&circuit, &graph, &outcome.result), Ok(()));
    }

    #[test]
    fn non_sharing_report_has_no_stats() {
        let circuit = triangle();
        let graph = line(3);
        let portfolio = PortfolioSynthesizer::standard(SynthesisConfig::with_swap_duration(1));
        let report = portfolio
            .optimize_depth_report(&circuit, &graph)
            .expect("solves");
        assert!(report.sharing.is_none());
    }

    #[test]
    fn all_failing_members_report_error() {
        // A circuit too large for the device fails in every member.
        let mut circuit = Circuit::new(5);
        circuit.push(Gate::two(GateKind::Cx, 0, 4));
        let graph = line(2);
        let portfolio = PortfolioSynthesizer::standard(SynthesisConfig::with_swap_duration(1));
        assert!(portfolio.optimize_depth(&circuit, &graph).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_rejected() {
        let _ = PortfolioSynthesizer::new(vec![]);
    }

    #[test]
    fn losers_are_cancelled_without_completing() {
        // Member 0 solves the instance in milliseconds; member 1 is
        // handicapped with an enormous depth window (t_ub = 3·400 = 1200),
        // so its first solve alone — an UNSAT proof at t_b = 3 over a
        // formula two orders of magnitude larger — far outlasts the
        // winner. The winner's stop flag must reach it mid-solve.
        let circuit = triangle();
        let graph = line(3);
        let fast = SynthesisConfig::with_swap_duration(1);
        let mut slow = SynthesisConfig::with_swap_duration(1);
        slow.tub_factor = 400.0;
        let portfolio = PortfolioSynthesizer::new(vec![fast, slow]);
        let report = portfolio
            .optimize_depth_report(&circuit, &graph)
            .expect("fast member solves");
        assert_eq!(report.winner, 0);
        assert!(report.members[0].is_winner());
        assert!(
            report.members[1].is_cancelled(),
            "handicapped member should observe the stop flag, got {:?}",
            report.members[1]
        );
        assert_eq!(verify(&circuit, &graph, &report.outcome.result), Ok(()));
        assert_eq!(report.members.len(), 2);
    }

    #[test]
    fn preset_stop_flag_cancels_all_members() {
        // If the flag is already raised, every member aborts at the entry
        // of its first solve and the race reports budget exhaustion.
        let circuit = triangle();
        let graph = line(3);
        let mut base = SynthesisConfig::with_swap_duration(1);
        let stop = Arc::new(AtomicBool::new(true));
        base.stop_flag = Some(stop);
        // The portfolio overwrites member stop flags with its own, so test
        // the single-synthesizer path here (the portfolio path is covered
        // by `losers_are_cancelled_without_completing`).
        let synth = Olsq2Synthesizer::new(base);
        match synth.optimize_depth(&circuit, &graph) {
            Err(SynthesisError::BudgetExhausted) => {}
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
}
