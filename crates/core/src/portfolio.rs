//! Portfolio synthesis — the parallelization the paper's §V names as
//! future work: "build a portfolio of instances by generating
//! configurations … including different encoding methods, as there does
//! not appear to be a single best-in-class method with respect to solving
//! time".
//!
//! Each portfolio member runs the full optimization loop with its own
//! encoding configuration on its own thread; the first member to finish
//! wins and the rest are cancelled through the solver's cooperative stop
//! flag.

use crate::config::{EncodingConfig, SynthesisConfig};
use crate::optimize::{Olsq2Synthesizer, SynthesisError, SynthesisOutcome};
use olsq2_arch::CouplingGraph;
use olsq2_circuit::Circuit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// A parallel portfolio of OLSQ2 configurations (§V future direction).
///
/// # Examples
///
/// ```
/// use olsq2::{PortfolioSynthesizer, SynthesisConfig};
/// use olsq2_arch::line;
/// use olsq2_circuit::{Circuit, Gate, GateKind};
/// use olsq2_layout::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new(3);
/// circuit.push(Gate::two(GateKind::Cx, 0, 1));
/// circuit.push(Gate::two(GateKind::Cx, 1, 2));
/// circuit.push(Gate::two(GateKind::Cx, 0, 2));
/// let graph = line(3);
/// let portfolio =
///     PortfolioSynthesizer::standard(SynthesisConfig::with_swap_duration(1));
/// let (outcome, winner) = portfolio.optimize_depth(&circuit, &graph)?;
/// assert!(outcome.proven_optimal);
/// assert_eq!(verify(&circuit, &graph, &outcome.result), Ok(()));
/// assert!(winner < portfolio.num_members());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PortfolioSynthesizer {
    members: Vec<SynthesisConfig>,
}

impl PortfolioSynthesizer {
    /// Builds a portfolio from explicit member configurations.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<SynthesisConfig>) -> PortfolioSynthesizer {
        assert!(!members.is_empty(), "portfolio needs at least one member");
        PortfolioSynthesizer { members }
    }

    /// The standard portfolio: the base configuration with the one-hot,
    /// bit-vector, and inverse-channeling encodings.
    pub fn standard(base: SynthesisConfig) -> PortfolioSynthesizer {
        let members = [
            EncodingConfig::int(),
            EncodingConfig::bv(),
            EncodingConfig::euf_int(),
        ]
        .into_iter()
        .map(|encoding| SynthesisConfig {
            encoding,
            ..base.clone()
        })
        .collect();
        PortfolioSynthesizer { members }
    }

    /// Number of member configurations.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Runs depth optimization on every member in parallel; returns the
    /// first successful outcome and the index of the winning member.
    ///
    /// # Errors
    ///
    /// Returns the first member's error if *all* members fail.
    pub fn optimize_depth(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<(SynthesisOutcome, usize), SynthesisError> {
        self.race(circuit, graph, |synth, c, g| synth.optimize_depth(c, g))
    }

    /// Runs SWAP optimization on every member in parallel; returns the
    /// first successful outcome and the index of the winning member.
    ///
    /// # Errors
    ///
    /// Returns the first member's error if *all* members fail.
    pub fn optimize_swaps(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<(SynthesisOutcome, usize), SynthesisError> {
        self.race(circuit, graph, |synth, c, g| {
            synth.optimize_swaps(c, g).map(|o| o.best)
        })
    }

    fn race<F>(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        run: F,
    ) -> Result<(SynthesisOutcome, usize), SynthesisError>
    where
        F: Fn(&Olsq2Synthesizer, &Circuit, &CouplingGraph) -> Result<SynthesisOutcome, SynthesisError>
            + Send
            + Sync,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<(usize, Result<SynthesisOutcome, SynthesisError>)>();
        std::thread::scope(|scope| {
            for (idx, member) in self.members.iter().enumerate() {
                let mut config = member.clone();
                config.stop_flag = Some(stop.clone());
                let tx = tx.clone();
                let run = &run;
                scope.spawn(move || {
                    let synth = Olsq2Synthesizer::new(config);
                    let result = run(&synth, circuit, graph);
                    let _ = tx.send((idx, result));
                });
            }
            drop(tx);
            let mut first_error: Option<SynthesisError> = None;
            let mut received = 0;
            while received < self.members.len() {
                match rx.recv() {
                    Ok((idx, Ok(outcome))) => {
                        // Winner: cancel everyone else, drain the channel by
                        // leaving scope (threads abort at their next
                        // conflict boundary).
                        stop.store(true, Ordering::Relaxed);
                        return Ok((outcome, idx));
                    }
                    Ok((_, Err(e))) => {
                        received += 1;
                        first_error.get_or_insert(e);
                    }
                    Err(_) => break,
                }
            }
            Err(first_error.unwrap_or(SynthesisError::BudgetExhausted))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olsq2_arch::{grid, line};
    use olsq2_circuit::generators::qaoa_circuit;
    use olsq2_circuit::{Gate, GateKind};
    use olsq2_layout::verify;
    use std::time::Duration;

    fn triangle() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c.push(Gate::two(GateKind::Cx, 0, 2));
        c
    }

    #[test]
    fn portfolio_depth_matches_single_config() {
        let circuit = triangle();
        let graph = line(3);
        let base = SynthesisConfig::with_swap_duration(1);
        let single = Olsq2Synthesizer::new(base.clone())
            .optimize_depth(&circuit, &graph)
            .expect("solves");
        let portfolio = PortfolioSynthesizer::standard(base);
        let (outcome, winner) = portfolio.optimize_depth(&circuit, &graph).expect("solves");
        assert_eq!(outcome.result.depth, single.result.depth);
        assert!(winner < 3);
        assert_eq!(verify(&circuit, &graph, &outcome.result), Ok(()));
    }

    #[test]
    fn portfolio_swaps_on_qaoa() {
        let circuit = qaoa_circuit(6, 3);
        let graph = grid(3, 3);
        let mut base = SynthesisConfig::with_swap_duration(1);
        base.pareto_relax_limit = Some(0);
        base.time_budget = Some(Duration::from_secs(120));
        let portfolio = PortfolioSynthesizer::standard(base);
        let (outcome, _) = portfolio.optimize_swaps(&circuit, &graph).expect("solves");
        assert_eq!(verify(&circuit, &graph, &outcome.result), Ok(()));
    }

    #[test]
    fn all_failing_members_report_error() {
        // A circuit too large for the device fails in every member.
        let mut circuit = Circuit::new(5);
        circuit.push(Gate::two(GateKind::Cx, 0, 4));
        let graph = line(2);
        let portfolio =
            PortfolioSynthesizer::standard(SynthesisConfig::with_swap_duration(1));
        assert!(portfolio.optimize_depth(&circuit, &graph).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_rejected() {
        let _ = PortfolioSynthesizer::new(vec![]);
    }
}
