//! Minimal Prometheus text-format (version 0.0.4) writer.
//!
//! Only the subset the service layer needs: `counter` and `gauge` metrics
//! with `# HELP` / `# TYPE` headers and no labels. Metric names are
//! sanitized to the Prometheus grammar `[a-zA-Z_:][a-zA-Z0-9_:]*`.

use std::fmt::Write as _;

/// Builder for a Prometheus text-format exposition body.
///
/// ```
/// use olsq2_obs::PromText;
/// let mut prom = PromText::new();
/// prom.counter("olsq2_jobs_completed", "Jobs completed", 3.0);
/// prom.gauge("olsq2_queue_depth", "Jobs waiting", 7.0);
/// let body = prom.finish();
/// assert!(body.contains("# TYPE olsq2_jobs_completed counter"));
/// assert!(body.contains("olsq2_queue_depth 7"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// Creates an empty exposition body.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Appends a `counter` metric with its HELP/TYPE headers.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.metric(name, help, "counter", value);
    }

    /// Appends a `gauge` metric with its HELP/TYPE headers.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.metric(name, help, "gauge", value);
    }

    fn metric(&mut self, name: &str, help: &str, kind: &str, value: f64) {
        let name = sanitize(name);
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        if value.is_finite() {
            let _ = writeln!(self.out, "{name} {value}");
        } else {
            let _ = writeln!(self.out, "{name} NaN");
        }
    }

    /// Returns the exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Maps arbitrary metric names onto `[a-zA-Z_:][a-zA-Z0-9_:]*` by replacing
/// invalid characters (commonly `.` and `-` from recorder counter names)
/// with `_`.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_precede_samples() {
        let mut p = PromText::new();
        p.counter("jobs_total", "Total jobs", 12.0);
        let body = p.finish();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "# HELP jobs_total Total jobs");
        assert_eq!(lines[1], "# TYPE jobs_total counter");
        assert_eq!(lines[2], "jobs_total 12");
    }

    #[test]
    fn names_are_sanitized() {
        let mut p = PromText::new();
        p.counter("sat.conflicts-total", "x", 1.0);
        p.gauge("9lives", "x", 2.0);
        let body = p.finish();
        assert!(body.contains("sat_conflicts_total 1"));
        assert!(body.contains("_9lives 2"));
    }

    #[test]
    fn help_newlines_are_escaped() {
        let mut p = PromText::new();
        p.gauge("g", "line1\nline2", 0.5);
        assert!(p.finish().contains("# HELP g line1\\nline2"));
    }
}
