//! Minimal Prometheus text-format (version 0.0.4) writer.
//!
//! The subset the service layer needs: `counter` / `gauge` metrics,
//! log₂ `histogram` series (cumulative `_bucket{le=...}` plus `_sum` /
//! `_count`), and labeled samples (`counter_labeled` / `gauge_labeled`)
//! whose `# HELP` / `# TYPE` headers are emitted once per metric name.
//! Metric names are sanitized to the Prometheus grammar
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`; label values are escaped per the text
//! format.

use crate::trace::HistogramSummary;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Builder for a Prometheus text-format exposition body.
///
/// ```
/// use olsq2_obs::PromText;
/// let mut prom = PromText::new();
/// prom.counter("olsq2_jobs_completed", "Jobs completed", 3.0);
/// prom.gauge("olsq2_queue_depth", "Jobs waiting", 7.0);
/// let body = prom.finish();
/// assert!(body.contains("# TYPE olsq2_jobs_completed counter"));
/// assert!(body.contains("olsq2_queue_depth 7"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    /// Metric names whose HELP/TYPE headers were already written (labeled
    /// series share one header across samples).
    headed: BTreeSet<String>,
}

impl PromText {
    /// Creates an empty exposition body.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Appends a `counter` metric with its HELP/TYPE headers.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.metric(name, help, "counter", &[], value);
    }

    /// Appends a `gauge` metric with its HELP/TYPE headers.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.metric(name, help, "gauge", &[], value);
    }

    /// Appends one labeled `counter` sample. The HELP/TYPE header is
    /// written the first time `name` is seen, so repeated calls build a
    /// multi-series metric:
    ///
    /// ```text
    /// # HELP olsq2_tenant_jobs_done Jobs completed per tenant
    /// # TYPE olsq2_tenant_jobs_done counter
    /// olsq2_tenant_jobs_done{tenant="acme"} 3
    /// olsq2_tenant_jobs_done{tenant="zeta"} 9
    /// ```
    pub fn counter_labeled(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.metric(name, help, "counter", labels, value);
    }

    /// Appends one labeled `gauge` sample (header emitted once per name).
    pub fn gauge_labeled(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.metric(name, help, "gauge", labels, value);
    }

    /// Appends a full `histogram` metric from a log₂ summary: cumulative
    /// `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum` and
    /// `_count`. Extra `labels` are attached to every series (the `le`
    /// label is appended after them).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        summary: &HistogramSummary,
    ) {
        let name = sanitize(name);
        if self.headed.insert(name.clone()) {
            let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(self.out, "# TYPE {name} histogram");
        }
        let mut cumulative = 0u64;
        for &(le, count) in &summary.buckets {
            cumulative += count;
            let mut series = format!("{name}_bucket");
            let mut with_le: Vec<(&str, String)> =
                labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
            with_le.push(("le", le.to_string()));
            write_labels_owned(&with_le, &mut series);
            let _ = writeln!(self.out, "{series} {cumulative}");
        }
        let mut inf = format!("{name}_bucket");
        let mut with_le: Vec<(&str, String)> =
            labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
        with_le.push(("le", "+Inf".to_string()));
        write_labels_owned(&with_le, &mut inf);
        let _ = writeln!(self.out, "{inf} {}", summary.count);
        let mut sum = format!("{name}_sum");
        write_labels(labels, &mut sum);
        let _ = writeln!(self.out, "{sum} {}", summary.sum);
        let mut count = format!("{name}_count");
        write_labels(labels, &mut count);
        let _ = writeln!(self.out, "{count} {}", summary.count);
    }

    fn metric(&mut self, name: &str, help: &str, kind: &str, labels: &[(&str, &str)], value: f64) {
        let name = sanitize(name);
        if self.headed.insert(name.clone()) {
            let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
        let mut series = name;
        write_labels(labels, &mut series);
        if value.is_finite() {
            let _ = writeln!(self.out, "{series} {value}");
        } else {
            let _ = writeln!(self.out, "{series} NaN");
        }
    }

    /// Returns the exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

fn write_labels(labels: &[(&str, &str)], out: &mut String) {
    if labels.is_empty() {
        return;
    }
    let owned: Vec<(&str, String)> = labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
    write_labels_owned(&owned, out);
}

fn write_labels_owned(labels: &[(&str, String)], out: &mut String) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize(k));
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Maps arbitrary metric names onto `[a-zA-Z_:][a-zA-Z0-9_:]*` by replacing
/// invalid characters (commonly `.` and `-` from recorder counter names)
/// with `_`.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_precede_samples() {
        let mut p = PromText::new();
        p.counter("jobs_total", "Total jobs", 12.0);
        let body = p.finish();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "# HELP jobs_total Total jobs");
        assert_eq!(lines[1], "# TYPE jobs_total counter");
        assert_eq!(lines[2], "jobs_total 12");
    }

    #[test]
    fn names_are_sanitized() {
        let mut p = PromText::new();
        p.counter("sat.conflicts-total", "x", 1.0);
        p.gauge("9lives", "x", 2.0);
        let body = p.finish();
        assert!(body.contains("sat_conflicts_total 1"));
        assert!(body.contains("_9lives 2"));
    }

    #[test]
    fn help_newlines_are_escaped() {
        let mut p = PromText::new();
        p.gauge("g", "line1\nline2", 0.5);
        assert!(p.finish().contains("# HELP g line1\\nline2"));
    }

    #[test]
    fn labeled_series_share_one_header() {
        let mut p = PromText::new();
        p.counter_labeled("jobs", "per tenant", &[("tenant", "acme")], 3.0);
        p.counter_labeled("jobs", "per tenant", &[("tenant", "z\"eta")], 9.0);
        let body = p.finish();
        assert_eq!(body.matches("# TYPE jobs counter").count(), 1);
        assert!(body.contains("jobs{tenant=\"acme\"} 3"));
        // Label values are escaped, label names sanitized.
        assert!(body.contains("jobs{tenant=\"z\\\"eta\"} 9"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        use crate::Recorder;
        let rec = Recorder::new();
        for v in [1u64, 1, 2, 3, 100, 1000] {
            rec.observe("lat_us", v);
        }
        let summary = rec.snapshot().histograms["lat_us"].clone();
        let mut p = PromText::new();
        p.histogram("olsq2_lat_us", "latency", &[], &summary);
        let body = p.finish();
        assert!(body.contains("# TYPE olsq2_lat_us histogram"));
        // Cumulative counts are monotonically non-decreasing across the
        // le-ordered buckets and the +Inf bucket equals the count.
        let mut last = 0u64;
        let mut saw_inf = false;
        for line in body
            .lines()
            .filter(|l| l.starts_with("olsq2_lat_us_bucket"))
        {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "bucket series must be cumulative: {line}");
            last = value;
            if line.contains("le=\"+Inf\"") {
                saw_inf = true;
                assert_eq!(value, 6);
            }
        }
        assert!(saw_inf, "the +Inf bucket is mandatory");
        assert!(body.ends_with("olsq2_lat_us_count 6\n"));
        assert!(body.contains("olsq2_lat_us_sum 1107"));
        // Specific buckets: [1]=2 zeros/ones... values 1,1 in le=1; 2,3 in le=3.
        assert!(body.contains("olsq2_lat_us_bucket{le=\"1\"} 2"));
        assert!(body.contains("olsq2_lat_us_bucket{le=\"3\"} 4"));
    }

    #[test]
    fn labeled_histograms_carry_their_labels() {
        use crate::Recorder;
        let rec = Recorder::new();
        rec.observe("h", 5);
        let summary = rec.snapshot().histograms["h"].clone();
        let mut p = PromText::new();
        p.histogram("lat", "x", &[("tenant", "acme")], &summary);
        let body = p.finish();
        assert!(body.contains("lat_bucket{tenant=\"acme\",le=\"7\"} 1"));
        assert!(body.contains("lat_bucket{tenant=\"acme\",le=\"+Inf\"} 1"));
        assert!(body.contains("lat_sum{tenant=\"acme\"} 5"));
    }
}
