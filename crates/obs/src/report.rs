//! Human-readable span-tree rendering.
//!
//! [`render`] turns a flat list of [`SpanData`] into an indented tree with
//! total and self wall time per span, followed by a per-name aggregation
//! table — the "where did the time go" view the paper's timing breakdowns
//! are built from.

use crate::trace::SpanData;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a span tree with per-span total/self times, then a per-name
/// aggregate table. Spans still open render with `(open)` in place of a
/// duration. Multiple roots are supported (one tree per root, in id order).
pub fn render(spans: &[SpanData]) -> String {
    let mut out = String::new();
    if spans.is_empty() {
        out.push_str("(empty trace: no spans)\n");
        return out;
    }

    // Children in id (open) order, grouped by parent.
    let mut children: BTreeMap<u64, Vec<&SpanData>> = BTreeMap::new();
    let mut roots: Vec<&SpanData> = Vec::new();
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for span in spans {
        match span.parent {
            // Tolerate truncated traces where the parent line is missing.
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(span),
            _ => roots.push(span),
        }
    }

    out.push_str("span tree (total / self):\n");
    for root in &roots {
        render_node(root, &children, 0, &mut out);
    }

    // Aggregate by name: count, total time, self time.
    let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for span in spans {
        let total = span.dur_us.unwrap_or(0);
        let self_us = self_time(span, &children);
        let e = agg.entry(span.name.as_str()).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += total;
        e.2 += self_us;
    }
    let name_w = agg.keys().map(|n| n.len()).max().unwrap_or(4).max(4);
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>6}  {:>12}  {:>12}",
        "name", "count", "total", "self"
    );
    for (name, (count, total, self_us)) in &agg {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>6}  {:>12}  {:>12}",
            name,
            count,
            fmt_us(*total),
            fmt_us(*self_us)
        );
    }
    out
}

fn render_node(
    span: &SpanData,
    children: &BTreeMap<u64, Vec<&SpanData>>,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let total = match span.dur_us {
        Some(d) => fmt_us(d),
        None => "(open)".to_string(),
    };
    let self_us = fmt_us(self_time(span, children));
    let _ = write!(out, "{indent}{}  {total} / {self_us}", span.name);
    for (k, v) in &span.fields {
        let _ = write!(out, "  {k}={v}");
    }
    out.push('\n');
    if let Some(kids) = children.get(&span.id) {
        for kid in kids {
            render_node(kid, children, depth + 1, out);
        }
    }
}

/// Self time = own duration minus the summed durations of direct children
/// (saturating: clock skew or open children never go negative).
fn self_time(span: &SpanData, children: &BTreeMap<u64, Vec<&SpanData>>) -> u64 {
    let total = span.dur_us.unwrap_or(0);
    let child_sum: u64 = children
        .get(&span.id)
        .map(|kids| kids.iter().map(|k| k.dur_us.unwrap_or(0)).sum())
        .unwrap_or(0);
    total.saturating_sub(child_sum)
}

fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FieldValue;

    fn span(id: u64, parent: Option<u64>, name: &str, dur_us: Option<u64>) -> SpanData {
        SpanData {
            id,
            parent,
            name: name.to_string(),
            start_us: id * 10,
            dur_us,
            fields: Vec::new(),
        }
    }

    #[test]
    fn tree_indents_children_and_computes_self_time() {
        let mut root = span(0, None, "optimize", Some(1000));
        root.fields
            .push(("objective".to_string(), FieldValue::Str("depth".into())));
        let spans = vec![
            root,
            span(1, Some(0), "iteration", Some(400)),
            span(2, Some(0), "iteration", Some(300)),
        ];
        let text = render(&spans);
        assert!(text.contains("optimize  1000us / 300us  objective=depth"));
        assert!(text.contains("\n  iteration  400us"));
        // Aggregate row: 2 iterations totalling 700us.
        let agg_line = text
            .lines()
            .find(|l| l.starts_with("iteration"))
            .expect("aggregate row");
        assert!(agg_line.contains('2') && agg_line.contains("700us"));
    }

    #[test]
    fn open_spans_and_missing_parents_render() {
        let spans = vec![
            span(0, None, "root", None),
            // Parent 99 never appears — treated as a root.
            span(1, Some(99), "orphan", Some(50)),
        ];
        let text = render(&spans);
        assert!(text.contains("root  (open)"));
        assert!(text.contains("\norphan  50us"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert!(render(&[]).contains("empty trace"));
    }
}
