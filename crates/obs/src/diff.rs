//! A/B trace attribution: align two JSONL traces by their iteration
//! schedule and attribute the end-to-end delta per iteration.
//!
//! The iterative-deepening optimizers emit one `iteration` span per
//! (T, swap-bound) solve, carrying `encode_us` / `solve_us` / `result`
//! and the per-iteration solver deltas (`conflicts`, `decisions`,
//! `propagations`, `restarts`). Given two traces of the *same instance*
//! under different configurations, [`diff`] aligns iterations by
//! (objective, t_bound, swap_bound) in schedule order and classifies
//! each pairwise delta:
//!
//! * **encode** — the time moved in the encoding step;
//! * **solve-throughput** — solve time moved while the search did the
//!   same work (conflict counts within ratio bounds): the per-conflict
//!   cost changed;
//! * **search-divergence** — solve time moved *because* the search did
//!   different work (conflict count ratio outside bounds): the
//!   heuristics explored a different space;
//! * **par** — the iteration is within noise;
//! * **schedule divergence** — an iteration exists on one side only
//!   (the optimizers took different bound trajectories).
//!
//! Flight-recorder lines embedded in (or dumped next to) either trace
//! are ingested too ([`crate::FlightDump`]) and summarized as the
//! post-mortem search state. Everything is reconstructed purely from
//! the JSONL artifacts — no live process needed.

use crate::flight::FlightDump;
use crate::jsonin::JsonValue;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One `iteration` span reconstructed from a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationRow {
    /// Objective the optimizer was descending (`depth`, `swaps`, …).
    pub objective: String,
    /// Depth / time-step bound, when present.
    pub t_bound: Option<u64>,
    /// SWAP-count bound, when present.
    pub swap_bound: Option<i64>,
    /// Wall-clock duration of the whole iteration.
    pub total_us: u64,
    /// Time spent (re)encoding the model.
    pub encode_us: u64,
    /// Time spent inside the SAT solver.
    pub solve_us: u64,
    /// The solver's verdict (`sat` / `unsat` / `unknown`).
    pub result: String,
    /// Conflicts spent in this iteration.
    pub conflicts: u64,
    /// Decisions spent in this iteration.
    pub decisions: u64,
    /// Propagations spent in this iteration.
    pub propagations: u64,
    /// Restarts spent in this iteration.
    pub restarts: u64,
}

impl IterationRow {
    /// Human key: the aligned coordinates of this iteration.
    pub fn key(&self) -> String {
        let mut k = self.objective.clone();
        if let Some(t) = self.t_bound {
            let _ = write!(k, " T={t}");
        }
        if let Some(s) = self.swap_bound {
            let _ = write!(k, " swaps≤{s}");
        }
        k
    }

    fn align_key(&self) -> (String, Option<u64>, Option<i64>) {
        (self.objective.clone(), self.t_bound, self.swap_bound)
    }

    /// Decisions per conflict — the cheap search-shape fingerprint.
    pub fn decisions_per_conflict(&self) -> f64 {
        if self.conflicts == 0 {
            0.0
        } else {
            self.decisions as f64 / self.conflicts as f64
        }
    }
}

/// One side of the comparison, parsed from a JSONL artifact.
#[derive(Debug, Clone, Default)]
pub struct TraceSide {
    /// The iteration schedule, in span order.
    pub iterations: Vec<IterationRow>,
    /// Flight samples found in the artifact (may be empty).
    pub flight: FlightDump,
}

/// Parses one trace/flight JSONL artifact into a [`TraceSide`].
///
/// Lines that are neither `iteration` spans nor flight records are
/// ignored, so full traces, bare flight dumps, and concatenations of
/// the two all work.
///
/// # Errors
///
/// Malformed JSON on a relevant line, or an unsupported format version.
pub fn parse_side(text: &str) -> Result<TraceSide, String> {
    let mut iterations = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        // Cheap pre-filter: only meta lines and iteration spans matter.
        let relevant = (line.contains("\"span\"") && line.contains("\"iteration\""))
            || line.starts_with("{\"type\":\"meta\"");
        if line.is_empty() || !relevant {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match v.get("type").and_then(JsonValue::as_str) {
            Some("meta") => {
                let version = v.get("version").and_then(JsonValue::as_u64).unwrap_or(0);
                if version != 1 {
                    return Err(format!("unsupported trace version {version} (expected 1)"));
                }
            }
            Some("span") if v.get("name").and_then(JsonValue::as_str) == Some("iteration") => {
                let fields = v.get("fields").cloned().unwrap_or(JsonValue::Null);
                let u = |k: &str| fields.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                iterations.push(IterationRow {
                    objective: fields
                        .get("objective")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    t_bound: fields.get("t_bound").and_then(JsonValue::as_u64),
                    swap_bound: fields.get("swap_bound").and_then(JsonValue::as_i64),
                    total_us: v.get("dur_us").and_then(JsonValue::as_u64).unwrap_or(0),
                    encode_us: u("encode_us"),
                    solve_us: u("solve_us"),
                    result: fields
                        .get("result")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    conflicts: u("conflicts"),
                    decisions: u("decisions"),
                    propagations: u("propagations"),
                    restarts: u("restarts"),
                });
            }
            _ => {}
        }
    }
    let flight = FlightDump::parse_jsonl(text)?;
    Ok(TraceSide { iterations, flight })
}

/// Why a per-iteration delta happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within noise.
    Par,
    /// The encode step moved.
    Encode,
    /// Solve time moved with comparable search work (cost per conflict).
    SolveThroughput,
    /// Solve time moved because the search explored a different space.
    SearchDivergence,
    /// The solver verdicts disagree (deadline on one side, usually).
    VerdictFlip,
    /// Iteration exists only in trace A.
    OnlyA,
    /// Iteration exists only in trace B.
    OnlyB,
}

impl Verdict {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Par => "par",
            Verdict::Encode => "encode",
            Verdict::SolveThroughput => "solve-throughput",
            Verdict::SearchDivergence => "search-divergence",
            Verdict::VerdictFlip => "verdict-flip",
            Verdict::OnlyA => "only-in-A",
            Verdict::OnlyB => "only-in-B",
        }
    }
}

/// One row of the attribution table.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Aligned iteration coordinates.
    pub key: String,
    /// Side A's iteration, when present.
    pub a: Option<IterationRow>,
    /// Side B's iteration, when present.
    pub b: Option<IterationRow>,
    /// `b.total_us - a.total_us` (0 for unmatched rows).
    pub delta_total_us: i64,
    /// `b.encode_us - a.encode_us`.
    pub delta_encode_us: i64,
    /// `b.solve_us - a.solve_us`.
    pub delta_solve_us: i64,
    /// The classification.
    pub verdict: Verdict,
}

/// The whole A/B comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Display label for side A.
    pub label_a: String,
    /// Display label for side B.
    pub label_b: String,
    /// Per-iteration rows: A's schedule order, then B-only rows.
    pub rows: Vec<DiffRow>,
    /// Side A as parsed (flight summary included).
    pub side_a: TraceSide,
    /// Side B as parsed.
    pub side_b: TraceSide,
}

/// Iterations slower/faster than this fraction of the larger total are
/// attributable; below it they are noise.
const NOISE_FRACTION: f64 = 0.05;
/// …and never attribute deltas under this many microseconds.
const NOISE_FLOOR_US: i64 = 500;
/// Conflict-count ratios outside [1/this, this] mean the searches
/// genuinely diverged rather than one being slower per conflict.
const DIVERGENCE_RATIO: f64 = 1.25;

fn classify(a: &IterationRow, b: &IterationRow) -> (i64, i64, i64, Verdict) {
    let dt = b.total_us as i64 - a.total_us as i64;
    let de = b.encode_us as i64 - a.encode_us as i64;
    let ds = b.solve_us as i64 - a.solve_us as i64;
    if a.result != b.result {
        return (dt, de, ds, Verdict::VerdictFlip);
    }
    let noise = NOISE_FLOOR_US.max((NOISE_FRACTION * a.total_us.max(b.total_us) as f64) as i64);
    if dt.abs() <= noise {
        return (dt, de, ds, Verdict::Par);
    }
    if de.abs() >= ds.abs() {
        return (dt, de, ds, Verdict::Encode);
    }
    // Solve-dominated: did the search do different work, or the same
    // work at a different speed?
    let (ca, cb) = (a.conflicts.max(1) as f64, b.conflicts.max(1) as f64);
    let ratio = cb / ca;
    if !(1.0 / DIVERGENCE_RATIO..=DIVERGENCE_RATIO).contains(&ratio) {
        (dt, de, ds, Verdict::SearchDivergence)
    } else {
        (dt, de, ds, Verdict::SolveThroughput)
    }
}

/// Aligns and classifies two parsed sides.
pub fn diff_sides(
    side_a: TraceSide,
    side_b: TraceSide,
    label_a: &str,
    label_b: &str,
) -> DiffReport {
    // Match by (objective, t_bound, swap_bound) with occurrence index,
    // so revisited bounds pair up in schedule order.
    let mut b_index: HashMap<
        (String, Option<u64>, Option<i64>),
        std::collections::VecDeque<usize>,
    > = HashMap::new();
    for (i, row) in side_b.iterations.iter().enumerate() {
        b_index.entry(row.align_key()).or_default().push_back(i);
    }
    let mut b_used = vec![false; side_b.iterations.len()];
    let mut rows = Vec::new();
    for a in &side_a.iterations {
        let b = b_index
            .get_mut(&a.align_key())
            .and_then(|q| q.pop_front())
            .map(|i| {
                b_used[i] = true;
                side_b.iterations[i].clone()
            });
        let row = match &b {
            Some(b_row) => {
                let (dt, de, ds, verdict) = classify(a, b_row);
                DiffRow {
                    key: a.key(),
                    a: Some(a.clone()),
                    b: b.clone(),
                    delta_total_us: dt,
                    delta_encode_us: de,
                    delta_solve_us: ds,
                    verdict,
                }
            }
            None => DiffRow {
                key: a.key(),
                a: Some(a.clone()),
                b: None,
                delta_total_us: 0,
                delta_encode_us: 0,
                delta_solve_us: 0,
                verdict: Verdict::OnlyA,
            },
        };
        rows.push(row);
    }
    for (i, b) in side_b.iterations.iter().enumerate() {
        if !b_used[i] {
            rows.push(DiffRow {
                key: b.key(),
                a: None,
                b: Some(b.clone()),
                delta_total_us: 0,
                delta_encode_us: 0,
                delta_solve_us: 0,
                verdict: Verdict::OnlyB,
            });
        }
    }
    DiffReport {
        label_a: label_a.to_string(),
        label_b: label_b.to_string(),
        rows,
        side_a,
        side_b,
    }
}

/// Parses two JSONL artifacts and produces the attribution report.
///
/// # Errors
///
/// Propagates parse failures from either side.
pub fn diff(
    a_text: &str,
    b_text: &str,
    label_a: &str,
    label_b: &str,
) -> Result<DiffReport, String> {
    let side_a = parse_side(a_text).map_err(|e| format!("{label_a}: {e}"))?;
    let side_b = parse_side(b_text).map_err(|e| format!("{label_b}: {e}"))?;
    Ok(diff_sides(side_a, side_b, label_a, label_b))
}

impl DiffReport {
    /// Matched iteration count.
    pub fn matched(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.a.is_some() && r.b.is_some())
            .count()
    }

    /// Sum of a per-side field over matched rows.
    fn totals(&self, f: impl Fn(&IterationRow) -> u64) -> (u64, u64) {
        let mut ta = 0;
        let mut tb = 0;
        for r in &self.rows {
            if let (Some(a), Some(b)) = (&r.a, &r.b) {
                ta += f(a);
                tb += f(b);
            }
        }
        (ta, tb)
    }

    /// Renders the per-iteration verdict table plus summary and flight
    /// post-mortems as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace diff: A = {}, B = {}",
            self.label_a, self.label_b
        );
        let _ = writeln!(
            out,
            "iterations: {} matched, {} only-A, {} only-B",
            self.matched(),
            self.rows
                .iter()
                .filter(|r| r.verdict == Verdict::OnlyA)
                .count(),
            self.rows
                .iter()
                .filter(|r| r.verdict == Verdict::OnlyB)
                .count(),
        );
        out.push('\n');
        let _ = writeln!(
            out,
            "{:<24} {:>5} {:>5} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>6} {:>6}  verdict",
            "iteration",
            "res A",
            "res B",
            "tot A us",
            "tot B us",
            "Δtot",
            "Δenc",
            "Δsolve",
            "confl A",
            "confl B",
            "d/c A",
            "d/c B",
        );
        for r in &self.rows {
            let res =
                |s: &Option<IterationRow>| s.as_ref().map_or("-".to_string(), |x| x.result.clone());
            let tot = |s: &Option<IterationRow>| {
                s.as_ref()
                    .map_or("-".to_string(), |x| x.total_us.to_string())
            };
            let con = |s: &Option<IterationRow>| {
                s.as_ref()
                    .map_or("-".to_string(), |x| x.conflicts.to_string())
            };
            let dpc = |s: &Option<IterationRow>| {
                s.as_ref().map_or("-".to_string(), |x| {
                    format!("{:.1}", x.decisions_per_conflict())
                })
            };
            let matched = r.a.is_some() && r.b.is_some();
            let delta = |v: i64| {
                if matched {
                    format!("{v:+}")
                } else {
                    "-".to_string()
                }
            };
            let _ = writeln!(
                out,
                "{:<24} {:>5} {:>5} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>6} {:>6}  {}",
                r.key,
                res(&r.a),
                res(&r.b),
                tot(&r.a),
                tot(&r.b),
                delta(r.delta_total_us),
                delta(r.delta_encode_us),
                delta(r.delta_solve_us),
                con(&r.a),
                con(&r.b),
                dpc(&r.a),
                dpc(&r.b),
                r.verdict.name(),
            );
        }
        out.push('\n');
        let (ea, eb) = self.totals(|r| r.encode_us);
        let (sa, sb) = self.totals(|r| r.solve_us);
        let (ta, tb) = self.totals(|r| r.total_us);
        let (cfa, cfb) = self.totals(|r| r.conflicts);
        let (ra, rb) = self.totals(|r| r.restarts);
        let ratio = |a: u64, b: u64| {
            if a == 0 {
                "n/a".to_string()
            } else {
                format!("{:.2}x", b as f64 / a as f64)
            }
        };
        let _ = writeln!(
            out,
            "matched totals   A: encode {ea} us, solve {sa} us, total {ta} us, \
             conflicts {cfa}, restarts {ra}"
        );
        let _ = writeln!(
            out,
            "                 B: encode {eb} us, solve {sb} us, total {tb} us, \
             conflicts {cfb}, restarts {rb}"
        );
        let _ = writeln!(
            out,
            "B/A ratios       encode {}, solve {}, total {}, conflicts {}",
            ratio(ea, eb),
            ratio(sa, sb),
            ratio(ta, tb),
            ratio(cfa, cfb),
        );
        // Attribution of the matched end-to-end delta.
        let dt = tb as i64 - ta as i64;
        let de = eb as i64 - ea as i64;
        let ds = sb as i64 - sa as i64;
        let _ = writeln!(
            out,
            "attribution      Δtotal {dt:+} us = Δencode {de:+} us + Δsolve {ds:+} us \
             + Δother {:+} us",
            dt - de - ds
        );
        for (label, side) in [(&self.label_a, &self.side_a), (&self.label_b, &self.side_b)] {
            if let Some(s) = side.flight.last_search() {
                let _ = writeln!(
                    out,
                    "flight {label}: {} samples kept of {} (every {} conflicts); \
                     last: {} conflicts, {} restarts, trail {}, level {}, \
                     LBD ema fast {:.2} / slow {:.2}",
                    side.flight.samples.len(),
                    side.flight.emitted,
                    side.flight.every,
                    s.conflicts,
                    s.restarts,
                    s.trail_len,
                    s.decision_level,
                    s.lbd_ema_fast,
                    s.lbd_ema_slow,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter_line(t: u64, swap: i64, dur: u64, enc: u64, solve: u64, confl: u64) -> String {
        format!(
            "{{\"type\":\"span\",\"id\":{t},\"name\":\"iteration\",\"start_us\":0,\
             \"dur_us\":{dur},\"fields\":{{\"objective\":\"depth\",\"t_bound\":{t},\
             \"swap_bound\":{swap},\"encode_us\":{enc},\"solve_us\":{solve},\
             \"result\":\"unsat\",\"conflicts\":{confl},\"decisions\":{},\
             \"propagations\":100,\"restarts\":2}}}}\n",
            confl * 4
        )
    }

    fn trace(rows: &[String]) -> String {
        let mut s = String::from("{\"type\":\"meta\",\"version\":1}\n");
        for r in rows {
            s.push_str(r);
        }
        s
    }

    #[test]
    fn aligns_by_bounds_and_attributes_deltas() {
        let a = trace(&[
            iter_line(5, 0, 10_000, 2_000, 8_000, 100),
            iter_line(6, 0, 20_000, 2_000, 18_000, 200),
            iter_line(7, 0, 9_000, 2_000, 7_000, 90),
        ]);
        let b = trace(&[
            // Same search, slower solve: throughput.
            iter_line(5, 0, 16_000, 2_000, 14_000, 105),
            // Conflict blow-up: divergence.
            iter_line(6, 0, 40_000, 2_000, 38_000, 900),
            // Different schedule on B's side.
            iter_line(8, 0, 5_000, 1_000, 4_000, 10),
        ]);
        let report = diff(&a, &b, "modern", "legacy").expect("diffs");
        assert_eq!(report.matched(), 2);
        let verdicts: Vec<Verdict> = report.rows.iter().map(|r| r.verdict).collect();
        assert_eq!(
            verdicts,
            vec![
                Verdict::SolveThroughput,
                Verdict::SearchDivergence,
                Verdict::OnlyA,
                Verdict::OnlyB,
            ]
        );
        let text = report.render();
        assert!(text.contains("2 matched, 1 only-A, 1 only-B"));
        assert!(text.contains("search-divergence"));
        assert!(text.contains("attribution"));
    }

    #[test]
    fn encode_and_par_and_flip_verdicts() {
        let a = trace(&[
            iter_line(5, 0, 10_000, 2_000, 8_000, 100),
            iter_line(6, 0, 10_000, 2_000, 8_000, 100),
        ]);
        let mut b_rows = vec![
            // Encode regression dominates.
            iter_line(5, 0, 18_000, 10_000, 8_000, 100),
            // Within noise.
            iter_line(6, 0, 10_200, 2_100, 8_100, 100),
        ];
        // A verdict flip: same key, different result string.
        b_rows.push(iter_line(7, 0, 1_000, 500, 500, 5));
        let a2 = format!(
            "{a}{}",
            iter_line(7, 0, 1_000, 500, 500, 5).replace("unsat", "sat")
        );
        let report = diff(&a2, &trace(&b_rows), "A", "B").expect("diffs");
        let verdicts: Vec<Verdict> = report.rows.iter().map(|r| r.verdict).collect();
        assert_eq!(
            verdicts,
            vec![Verdict::Encode, Verdict::Par, Verdict::VerdictFlip]
        );
    }

    #[test]
    fn ingests_flight_dump_alongside_trace() {
        let p = crate::Probe::new(8, 64);
        p.record(crate::SearchSample {
            conflicts: 640,
            restarts: 3,
            trail_len: 50,
            decision_level: 7,
            lbd_ema_fast: 6.5,
            lbd_ema_slow: 5.0,
            ..Default::default()
        });
        let a = format!(
            "{}{}",
            trace(&[iter_line(5, 0, 10_000, 2_000, 8_000, 100)]),
            p.to_jsonl()
        );
        let b = trace(&[iter_line(5, 0, 10_000, 2_000, 8_000, 100)]);
        let report = diff(&a, &b, "died", "ok").expect("diffs");
        assert_eq!(report.side_a.flight.samples.len(), 1);
        let text = report.render();
        assert!(text.contains("flight died: 1 samples kept"));
        assert!(text.contains("640 conflicts"));
    }

    #[test]
    fn rejects_bad_versions() {
        assert!(parse_side("{\"type\":\"meta\",\"version\":2}\n").is_err());
    }
}
