//! The search flight recorder: a fixed-capacity, lock-free ring of
//! [`SearchSample`] records emitted from the hot search loops.
//!
//! The CDCL solver emits one sample every K conflicts through a
//! [`Probe`] handle; the clause-sharing endpoints and the cube scheduler
//! emit samples tagged with their own [`SampleSource`]. The ring keeps
//! the newest `capacity` samples, so when a run dies — deadline expiry,
//! cancellation, refusal to extend a window, or a panic — the last
//! moments of the search are still there to dump as a post-mortem
//! ([`Probe::to_jsonl`]).
//!
//! # Overhead invariant
//!
//! A disabled probe is a `None` behind the handle: every instrumented
//! call sites costs exactly one branch. An enabled probe writes one
//! slot of relaxed atomics per sample — no locks, no allocation, and
//! the total memory is bounded by the ring capacity chosen up front.
//!
//! # Lock-freedom and torn samples
//!
//! Writers claim a ticket with one `fetch_add` and then store the
//! sample's words into the slot as relaxed `AtomicU64`s, publishing the
//! ticket into the slot's sequence word with `Release` ordering last.
//! Readers ([`Probe::snapshot`]) validate the sequence word before and
//! after copying a slot and discard slots that were concurrently
//! overwritten. If the ring wraps *while* a slot is being written the
//! reader sees a sequence mismatch and skips it — a lost telemetry
//! sample, never undefined behavior and never a blocked solver.
//!
//! # Dump format
//!
//! [`Probe::to_jsonl`] writes one JSON object per line, versioned by a
//! leading `flight_meta` line:
//!
//! ```text
//! {"type":"flight_meta","version":2,"capacity":4096,"every":128,"emitted":9613}
//! {"type":"flight","seq":5517,"source":"search","at_us":81213,"conflicts":707328,...}
//! ```
//!
//! [`FlightDump::parse_jsonl`] reads the same format back (standalone or
//! embedded in a trace file), which is what `olsq2 trace-diff` ingests.

use crate::jsonin::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Current flight-dump format version (the `flight_meta` line).
/// Version 2 added the `chrono_backtracks` and `blocked_restarts`
/// search-policy counters.
pub const FLIGHT_VERSION: u64 = 2;

/// Which subsystem emitted a sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SampleSource {
    /// The CDCL search loop (every K conflicts).
    #[default]
    Search,
    /// A clause-sharing endpoint (import/export flow).
    Sharing,
    /// The cube scheduler (pool occupancy).
    Cube,
}

impl SampleSource {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            SampleSource::Search => "search",
            SampleSource::Sharing => "sharing",
            SampleSource::Cube => "cube",
        }
    }

    /// Inverse of [`SampleSource::name`].
    pub fn parse(s: &str) -> Option<SampleSource> {
        match s {
            "search" => Some(SampleSource::Search),
            "sharing" => Some(SampleSource::Sharing),
            "cube" => Some(SampleSource::Cube),
            _ => None,
        }
    }

    fn to_word(self) -> u64 {
        match self {
            SampleSource::Search => 0,
            SampleSource::Sharing => 1,
            SampleSource::Cube => 2,
        }
    }

    fn from_word(w: u64) -> SampleSource {
        match w {
            1 => SampleSource::Sharing,
            2 => SampleSource::Cube,
            _ => SampleSource::Search,
        }
    }
}

/// One flight-recorder record: a point-in-time snapshot of search
/// dynamics. Fields not meaningful for a given [`SampleSource`] are
/// zero (e.g. `pool_depth` outside the cube scheduler).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchSample {
    /// Emitting subsystem.
    pub source: SampleSource,
    /// Microseconds since the probe was created (filled by
    /// [`Probe::record`]).
    pub at_us: u64,
    /// Cumulative conflicts at sample time.
    pub conflicts: u64,
    /// Cumulative decisions.
    pub decisions: u64,
    /// Cumulative propagations.
    pub propagations: u64,
    /// Cumulative restarts.
    pub restarts: u64,
    /// Cumulative clause-database reductions.
    pub reduces: u64,
    /// Cumulative rephases.
    pub rephases: u64,
    /// Assignment-trail length at sample time.
    pub trail_len: u64,
    /// Decision level at sample time.
    pub decision_level: u64,
    /// Fast-horizon LBD exponential moving average (α = 2⁻⁵).
    pub lbd_ema_fast: f64,
    /// Slow-horizon LBD exponential moving average (α = 2⁻¹²).
    pub lbd_ema_slow: f64,
    /// Learnt clauses in the Core tier.
    pub learnts_core: u64,
    /// Learnt clauses in the Mid tier.
    pub learnts_mid: u64,
    /// Learnt clauses in the Local tier.
    pub learnts_local: u64,
    /// Clauses exported into the sharing pool.
    pub exported: u64,
    /// Clauses imported from the sharing pool.
    pub imported: u64,
    /// Open cubes in the cube pool (scheduler samples).
    pub pool_depth: u64,
    /// Queued cubes on the emitting worker's deque (scheduler samples).
    pub queue_len: u64,
    /// Cumulative chronological backtracks (search samples).
    pub chrono_backtracks: u64,
    /// Cumulative restarts postponed on an abnormally deep trail
    /// (search samples).
    pub blocked_restarts: u64,
}

/// Number of `u64` words a sample occupies in a ring slot.
const WORDS: usize = 21;

impl SearchSample {
    fn to_words(self) -> [u64; WORDS] {
        [
            self.source.to_word(),
            self.at_us,
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts,
            self.reduces,
            self.rephases,
            self.trail_len,
            self.decision_level,
            self.lbd_ema_fast.to_bits(),
            self.lbd_ema_slow.to_bits(),
            self.learnts_core,
            self.learnts_mid,
            self.learnts_local,
            self.exported,
            self.imported,
            self.pool_depth,
            self.queue_len,
            self.chrono_backtracks,
            self.blocked_restarts,
        ]
    }

    fn from_words(w: &[u64; WORDS]) -> SearchSample {
        SearchSample {
            source: SampleSource::from_word(w[0]),
            at_us: w[1],
            conflicts: w[2],
            decisions: w[3],
            propagations: w[4],
            restarts: w[5],
            reduces: w[6],
            rephases: w[7],
            trail_len: w[8],
            decision_level: w[9],
            lbd_ema_fast: f64::from_bits(w[10]),
            lbd_ema_slow: f64::from_bits(w[11]),
            learnts_core: w[12],
            learnts_mid: w[13],
            learnts_local: w[14],
            exported: w[15],
            imported: w[16],
            pool_depth: w[17],
            queue_len: w[18],
            chrono_backtracks: w[19],
            blocked_restarts: w[20],
        }
    }
}

/// One ring slot: the publication sequence word plus the sample payload.
/// `seq == ticket + 1` means the slot holds ticket's sample; any other
/// value means empty, mid-write, or overwritten by a later lap.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct Ring {
    epoch: Instant,
    every: u64,
    capacity: u64,
    /// Next ticket to assign; tickets are global sample indices.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// A cheap-to-clone handle on a flight ring (or on nothing).
///
/// The disabled probe is the `Default`; instrumented call sites gate on
/// [`Probe::is_enabled`] / [`Probe::sample_due`], which cost one branch.
#[derive(Clone, Default)]
pub struct Probe {
    inner: Option<Arc<Ring>>,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Probe(disabled)"),
            Some(r) => f
                .debug_struct("Probe")
                .field("capacity", &r.capacity)
                .field("every", &r.every)
                .field("emitted", &r.head.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

impl Probe {
    /// A probe that records nothing and allocates nothing.
    pub fn disabled() -> Probe {
        Probe { inner: None }
    }

    /// A probe over a ring of `capacity` slots sampling every
    /// `every_conflicts` conflicts (both clamped to ≥ 1).
    pub fn new(capacity: usize, every_conflicts: u64) -> Probe {
        let capacity = capacity.max(1);
        Probe {
            inner: Some(Arc::new(Ring {
                epoch: Instant::now(),
                every: every_conflicts.max(1),
                capacity: capacity as u64,
                head: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Slot::new()).collect(),
            })),
        }
    }

    /// Whether a ring is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The single-branch hot-path gate: true when enabled *and*
    /// `conflicts` falls on the sampling cadence.
    #[inline]
    pub fn sample_due(&self, conflicts: u64) -> bool {
        match &self.inner {
            None => false,
            Some(r) => conflicts.is_multiple_of(r.every),
        }
    }

    /// Sampling cadence in conflicts (0 when disabled).
    pub fn every(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.every)
    }

    /// Ring capacity in samples (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |r| r.capacity as usize)
    }

    /// Total samples ever recorded (may exceed capacity).
    pub fn emitted(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |r| r.head.load(Ordering::Acquire))
    }

    /// Microseconds since the probe was created (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |r| r.epoch.elapsed().as_micros() as u64)
    }

    /// Records `sample` into the ring, stamping `at_us`. No-op when
    /// disabled. Lock-free: one `fetch_add` plus relaxed stores.
    pub fn record(&self, mut sample: SearchSample) {
        let Some(ring) = &self.inner else { return };
        sample.at_us = ring.epoch.elapsed().as_micros() as u64;
        let ticket = ring.head.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[(ticket % ring.capacity) as usize];
        // Invalidate the slot for concurrent readers, write the payload,
        // then publish the ticket.
        slot.seq.store(u64::MAX, Ordering::Relaxed);
        for (w, v) in slot.words.iter().zip(sample.to_words()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// The surviving samples, oldest first, each paired with its global
    /// sequence number. Slots mid-write or lapped during the scan are
    /// skipped.
    pub fn snapshot(&self) -> Vec<(u64, SearchSample)> {
        let Some(ring) = &self.inner else {
            return Vec::new();
        };
        let head = ring.head.load(Ordering::Acquire);
        let start = head.saturating_sub(ring.capacity);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &ring.slots[(ticket % ring.capacity) as usize];
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                continue;
            }
            let mut words = [0u64; WORDS];
            for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                continue; // overwritten while copying
            }
            out.push((ticket, SearchSample::from_words(&words)));
        }
        out
    }

    /// Serializes the ring as versioned JSONL (see the module docs).
    /// Empty string when disabled.
    pub fn to_jsonl(&self) -> String {
        let Some(ring) = &self.inner else {
            return String::new();
        };
        use std::fmt::Write as _;
        let samples = self.snapshot();
        let mut out = String::with_capacity(64 + samples.len() * 256);
        let _ = writeln!(
            out,
            "{{\"type\":\"flight_meta\",\"version\":{FLIGHT_VERSION},\
             \"capacity\":{},\"every\":{},\"emitted\":{}}}",
            ring.capacity,
            ring.every,
            ring.head.load(Ordering::Acquire)
        );
        for (seq, s) in samples {
            let _ = write!(
                out,
                "{{\"type\":\"flight\",\"seq\":{seq},\"source\":\"{}\",\"at_us\":{}",
                s.source.name(),
                s.at_us
            );
            let _ = write!(
                out,
                ",\"conflicts\":{},\"decisions\":{},\"propagations\":{},\"restarts\":{}",
                s.conflicts, s.decisions, s.propagations, s.restarts
            );
            let _ = write!(
                out,
                ",\"reduces\":{},\"rephases\":{},\"trail_len\":{},\"decision_level\":{}",
                s.reduces, s.rephases, s.trail_len, s.decision_level
            );
            let _ = write!(
                out,
                ",\"lbd_ema_fast\":{:.4},\"lbd_ema_slow\":{:.4}",
                fin(s.lbd_ema_fast),
                fin(s.lbd_ema_slow)
            );
            let _ = write!(
                out,
                ",\"learnts_core\":{},\"learnts_mid\":{},\"learnts_local\":{}",
                s.learnts_core, s.learnts_mid, s.learnts_local
            );
            let _ = write!(
                out,
                ",\"exported\":{},\"imported\":{},\"pool_depth\":{},\"queue_len\":{}",
                s.exported, s.imported, s.pool_depth, s.queue_len
            );
            let _ = writeln!(
                out,
                ",\"chrono_backtracks\":{},\"blocked_restarts\":{}}}",
                s.chrono_backtracks, s.blocked_restarts
            );
        }
        out
    }

    /// Writes [`Probe::to_jsonl`] to `path`. No-op when disabled or when
    /// nothing was recorded.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if !self.is_enabled() || self.emitted() == 0 {
            return Ok(());
        }
        std::fs::write(path, self.to_jsonl())
    }
}

/// JSON numbers must be finite; NaN/inf collapse to 0.
fn fin(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// A parsed flight dump: the `flight_meta` header plus the samples, in
/// sequence order.
#[derive(Debug, Clone, Default)]
pub struct FlightDump {
    /// Format version from the `flight_meta` line.
    pub version: u64,
    /// Ring capacity at dump time.
    pub capacity: u64,
    /// Sampling cadence in conflicts.
    pub every: u64,
    /// Total samples emitted over the run (≥ `samples.len()`).
    pub emitted: u64,
    /// The surviving samples with their global sequence numbers.
    pub samples: Vec<(u64, SearchSample)>,
}

impl FlightDump {
    /// Parses flight lines out of `text`, ignoring any non-flight lines
    /// (so both standalone dumps and traces with embedded flight lines
    /// work).
    ///
    /// # Errors
    ///
    /// Malformed flight lines or an unsupported `flight_meta` version.
    pub fn parse_jsonl(text: &str) -> Result<FlightDump, String> {
        let mut dump = FlightDump::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || !line.contains("\"flight") {
                continue;
            }
            let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            match v.get("type").and_then(JsonValue::as_str) {
                Some("flight_meta") => {
                    dump.version = v.get("version").and_then(JsonValue::as_u64).unwrap_or(0);
                    if dump.version != FLIGHT_VERSION {
                        return Err(format!(
                            "unsupported flight version {} (expected {FLIGHT_VERSION})",
                            dump.version
                        ));
                    }
                    dump.capacity = v.get("capacity").and_then(JsonValue::as_u64).unwrap_or(0);
                    dump.every = v.get("every").and_then(JsonValue::as_u64).unwrap_or(0);
                    dump.emitted = v.get("emitted").and_then(JsonValue::as_u64).unwrap_or(0);
                }
                Some("flight") => {
                    let u = |k: &str| v.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                    let f = |k: &str| v.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
                    let source = v
                        .get("source")
                        .and_then(JsonValue::as_str)
                        .and_then(SampleSource::parse)
                        .ok_or_else(|| format!("line {}: bad flight source", i + 1))?;
                    dump.samples.push((
                        u("seq"),
                        SearchSample {
                            source,
                            at_us: u("at_us"),
                            conflicts: u("conflicts"),
                            decisions: u("decisions"),
                            propagations: u("propagations"),
                            restarts: u("restarts"),
                            reduces: u("reduces"),
                            rephases: u("rephases"),
                            trail_len: u("trail_len"),
                            decision_level: u("decision_level"),
                            lbd_ema_fast: f("lbd_ema_fast"),
                            lbd_ema_slow: f("lbd_ema_slow"),
                            learnts_core: u("learnts_core"),
                            learnts_mid: u("learnts_mid"),
                            learnts_local: u("learnts_local"),
                            exported: u("exported"),
                            imported: u("imported"),
                            pool_depth: u("pool_depth"),
                            queue_len: u("queue_len"),
                            chrono_backtracks: u("chrono_backtracks"),
                            blocked_restarts: u("blocked_restarts"),
                        },
                    ));
                }
                _ => {}
            }
        }
        Ok(dump)
    }

    /// The last search-loop sample, if any — the state of the search
    /// when the run died.
    pub fn last_search(&self) -> Option<&SearchSample> {
        self.samples
            .iter()
            .rev()
            .map(|(_, s)| s)
            .find(|s| s.source == SampleSource::Search)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(conflicts: u64) -> SearchSample {
        SearchSample {
            conflicts,
            decisions: conflicts * 3,
            lbd_ema_fast: 4.25,
            lbd_ema_slow: 5.5,
            ..SearchSample::default()
        }
    }

    #[test]
    fn disabled_probe_is_inert_and_allocation_free() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        assert!(!p.sample_due(0));
        assert_eq!(p.capacity(), 0);
        p.record(sample(1));
        assert_eq!(p.emitted(), 0);
        assert!(p.snapshot().is_empty());
        assert!(p.to_jsonl().is_empty());
        // The handle itself holds no ring: cloning moves no memory.
        assert_eq!(std::mem::size_of::<Probe>(), std::mem::size_of::<usize>());
    }

    #[test]
    fn sampling_cadence_gates_on_every() {
        let p = Probe::new(8, 100);
        assert!(p.sample_due(0));
        assert!(!p.sample_due(1));
        assert!(!p.sample_due(99));
        assert!(p.sample_due(100));
        assert!(p.sample_due(700));
    }

    #[test]
    fn wraparound_keeps_newest_capacity_samples_in_order() {
        let p = Probe::new(16, 1);
        for c in 0..100 {
            p.record(sample(c));
        }
        assert_eq!(p.emitted(), 100);
        let got = p.snapshot();
        assert_eq!(got.len(), 16);
        // Newest 16 tickets, oldest first, with payloads intact.
        for (i, (seq, s)) in got.iter().enumerate() {
            assert_eq!(*seq, 84 + i as u64);
            assert_eq!(s.conflicts, 84 + i as u64);
            assert_eq!(s.decisions, s.conflicts * 3);
        }
    }

    #[test]
    fn dump_round_trips_through_parse() {
        let p = Probe::new(4, 128);
        for c in 0..6 {
            p.record(SearchSample {
                source: if c % 2 == 0 {
                    SampleSource::Search
                } else {
                    SampleSource::Sharing
                },
                exported: c,
                ..sample(c * 128)
            });
        }
        let text = p.to_jsonl();
        assert!(text.starts_with("{\"type\":\"flight_meta\",\"version\":2"));
        let dump = FlightDump::parse_jsonl(&text).expect("parses");
        assert_eq!(dump.version, FLIGHT_VERSION);
        assert_eq!(dump.capacity, 4);
        assert_eq!(dump.every, 128);
        assert_eq!(dump.emitted, 6);
        assert_eq!(dump.samples.len(), 4);
        let (seq, last) = dump.samples.last().expect("non-empty");
        assert_eq!(*seq, 5);
        assert_eq!(last.source, SampleSource::Sharing);
        assert_eq!(last.conflicts, 5 * 128);
        assert!((last.lbd_ema_fast - 4.25).abs() < 1e-9);
        // The newest *search* sample is the post-mortem anchor.
        assert_eq!(dump.last_search().expect("search sample").conflicts, 512);
    }

    #[test]
    fn parse_ignores_foreign_trace_lines() {
        let p = Probe::new(4, 1);
        p.record(sample(1));
        let mut text = String::from("{\"type\":\"meta\",\"version\":1}\n");
        text.push_str("{\"type\":\"span\",\"id\":0,\"name\":\"iteration\",\"start_us\":1}\n");
        text.push_str(&p.to_jsonl());
        let dump = FlightDump::parse_jsonl(&text).expect("parses");
        assert_eq!(dump.samples.len(), 1);
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_ring() {
        let p = Probe::new(64, 1);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let p = p.clone();
                s.spawn(move || {
                    for c in 0..1000 {
                        p.record(sample(t * 1_000_000 + c));
                    }
                });
            }
        });
        assert_eq!(p.emitted(), 4000);
        let got = p.snapshot();
        assert!(got.len() <= 64);
        // Payload invariant survives the races on every surviving slot.
        for (_, s) in got {
            assert_eq!(s.decisions, s.conflicts * 3);
        }
    }
}
