//! The [`Recorder`] handle and its in-memory backing store.

use crate::trace::{EventData, Histogram, SpanData, TraceSnapshot};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// A typed field value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

struct State {
    spans: Vec<SpanData>,
    events: Vec<EventData>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// Per-thread stack of open span ids — the implicit parent chain.
    stacks: HashMap<ThreadId, Vec<u64>>,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A handle for recording spans, events, counters, and histograms.
///
/// Cloning is cheap (an `Option<Arc>`); all clones share one store. The
/// [`Recorder::disabled`] handle (also the `Default`) drops everything at
/// the cost of a single branch per call, so instrumentation can stay in
/// release hot paths unconditionally.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Recorder {
    /// Creates an enabled recorder with an empty store.
    pub fn new() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State {
                    spans: Vec::new(),
                    events: Vec::new(),
                    counters: BTreeMap::new(),
                    histograms: BTreeMap::new(),
                    stacks: HashMap::new(),
                }),
            })),
        }
    }

    /// The no-op recorder: records nothing, costs one branch per call.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. Its parent is the innermost span still open *on this
    /// thread*; it closes (recording its duration) when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { slot: None };
        };
        let start_us = inner.now_us();
        let mut state = inner.state.lock().expect("obs state lock");
        let id = state.spans.len() as u64;
        let tid = std::thread::current().id();
        let stack = state.stacks.entry(tid).or_default();
        let parent = stack.last().copied();
        stack.push(id);
        state.spans.push(SpanData {
            id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us: None,
            fields: Vec::new(),
        });
        drop(state);
        SpanGuard {
            slot: Some((inner.clone(), id)),
        }
    }

    /// Records a point-in-time event, attached to the innermost open span
    /// on this thread (if any).
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        let at_us = inner.now_us();
        let mut state = inner.state.lock().expect("obs state lock");
        let tid = std::thread::current().id();
        let span = state.stacks.get(&tid).and_then(|s| s.last().copied());
        state.events.push(EventData {
            span,
            at_us,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Adds `delta` to a monotonic counter (created at zero on first use).
    pub fn add(&self, counter: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock().expect("obs state lock");
        match state.counters.get_mut(counter) {
            Some(v) => *v += delta,
            None => {
                state.counters.insert(counter.to_string(), delta);
            }
        }
    }

    /// Records one sample into a log₂-bucketed histogram.
    pub fn observe(&self, histogram: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock().expect("obs state lock");
        match state.histograms.get_mut(histogram) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                state.histograms.insert(histogram.to_string(), h);
            }
        }
    }

    /// A point-in-time copy of everything recorded so far. Spans still
    /// open appear with `dur_us: None`.
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(inner) = &self.inner else {
            return TraceSnapshot::default();
        };
        let state = inner.state.lock().expect("obs state lock");
        TraceSnapshot {
            spans: state.spans.clone(),
            events: state.events.clone(),
            counters: state.counters.clone(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summarize()))
                .collect(),
        }
    }
}

/// RAII guard for an open span; records the duration on drop.
#[must_use = "a span closes when its guard drops"]
pub struct SpanGuard {
    slot: Option<(Arc<Inner>, u64)>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("id", &self.slot.as_ref().map(|(_, id)| *id))
            .finish()
    }
}

impl SpanGuard {
    /// Attaches (or overwrites) a key/value field on the span.
    pub fn set(&self, key: &str, value: impl Into<FieldValue>) {
        let Some((inner, id)) = &self.slot else {
            return;
        };
        let value = value.into();
        let mut state = inner.state.lock().expect("obs state lock");
        let span = &mut state.spans[*id as usize];
        match span.fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => span.fields.push((key.to_string(), value)),
        }
    }

    /// The span's id in the trace, if recording is enabled.
    pub fn id(&self) -> Option<u64> {
        self.slot.as_ref().map(|(_, id)| *id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((inner, id)) = self.slot.take() else {
            return;
        };
        let end_us = inner.now_us();
        let mut state = inner.state.lock().expect("obs state lock");
        let start = state.spans[id as usize].start_us;
        state.spans[id as usize].dur_us = Some(end_us.saturating_sub(start));
        let tid = std::thread::current().id();
        if let Some(stack) = state.stacks.get_mut(&tid) {
            // Guards normally drop in LIFO order; tolerate stragglers.
            if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                stack.remove(pos);
            }
            if stack.is_empty() {
                state.stacks.remove(&tid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_per_thread() {
        let rec = Recorder::new();
        {
            let outer = rec.span("outer");
            outer.set("k", 1u64);
            {
                let inner = rec.span("inner");
                inner.set("k", 2u64);
            }
            rec.event("tick", &[("n", 7u64.into())]);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert!(outer.dur_us.is_some() && inner.dur_us.is_some());
        // The event fired after `inner` closed, inside `outer`.
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].span, Some(outer.id));
    }

    #[test]
    fn sibling_threads_get_separate_roots() {
        let rec = Recorder::new();
        let _root = rec.span("main-root");
        let rec2 = rec.clone();
        std::thread::spawn(move || {
            let s = rec2.span("worker-root");
            s.set("worker", true);
        })
        .join()
        .unwrap();
        let snap = rec.snapshot();
        let worker = snap.spans.iter().find(|s| s.name == "worker-root").unwrap();
        // Not parented under the other thread's open span.
        assert_eq!(worker.parent, None);
    }

    #[test]
    fn counters_accumulate_and_fields_overwrite() {
        let rec = Recorder::new();
        rec.add("c", 1);
        rec.add("c", 2);
        let span = rec.span("s");
        span.set("x", 1u64);
        span.set("x", 2u64);
        drop(span);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["c"], 3);
        assert_eq!(snap.spans[0].fields, vec![("x".into(), FieldValue::U64(2))]);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let span = rec.span("x");
        span.set("y", 1u64);
        assert_eq!(span.id(), None);
        rec.add("c", 5);
        rec.observe("h", 10);
        rec.event("e", &[]);
        drop(span);
        let snap = rec.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn open_spans_appear_in_snapshot() {
        let rec = Recorder::new();
        let _open = rec.span("still-running");
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].dur_us, None);
    }
}
