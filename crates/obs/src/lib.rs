//! # olsq2-obs
//!
//! Zero-dependency observability substrate for the OLSQ2 reproduction.
//!
//! The paper's central evidence is *where time goes*: per-iteration SAT
//! solve times under iterative deepening, clause/variable counts per
//! encoding choice, and the split between the refinement loop and the
//! final optimality proof. This crate provides the recording machinery
//! every layer shares:
//!
//! * [`Recorder`] — a cheap-to-clone handle. The default (disabled)
//!   recorder is a `None` behind the handle, so instrumented hot paths
//!   pay a single branch; an enabled recorder buffers everything
//!   in-memory behind one mutex.
//! * **Spans** ([`SpanGuard`]) — named wall-clock intervals with
//!   parent/child hierarchy (per-thread, maintained automatically) and
//!   attached key/value fields.
//! * **Events** — point-in-time structured records (solver restarts,
//!   clause-database reductions), attached to the enclosing span.
//! * **Counters** and **histograms** — monotonic totals and log₂-bucketed
//!   distributions.
//! * [`TraceSnapshot`] — a point-in-time copy of everything recorded,
//!   serializable as JSONL ([`TraceSnapshot::to_jsonl`]) and renderable
//!   as a span-tree report ([`report::render`]).
//! * [`PromText`] — a tiny Prometheus text-format (version 0.0.4) writer
//!   used by the service layer's metrics exposition.
//! * [`Probe`] / [`SearchSample`] — the search **flight recorder**: a
//!   fixed-capacity lock-free ring the SAT solver, sharing endpoints,
//!   and cube scheduler sample into every K conflicts, dumped as
//!   versioned JSONL when a run dies (see [`flight`]).
//! * [`diff`] — A/B trace attribution: align two JSONL traces by their
//!   iteration schedule and classify every per-iteration delta as
//!   encode / solve-throughput / search-divergence (the engine behind
//!   `olsq2 trace-diff`).
//!
//! ## Example
//!
//! ```
//! use olsq2_obs::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let span = rec.span("iteration");
//!     span.set("t_bound", 5u64);
//!     rec.add("solver.conflicts", 42);
//!     rec.event("restart", &[("conflicts", 42u64.into())]);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.spans.len(), 1);
//! assert_eq!(snap.counters["solver.conflicts"], 42);
//! let jsonl = snap.to_jsonl();
//! assert!(jsonl.lines().any(|l| l.contains("\"iteration\"")));
//! ```
//!
//! A disabled recorder records nothing and costs one branch per call:
//!
//! ```
//! use olsq2_obs::Recorder;
//! let rec = Recorder::disabled();
//! let span = rec.span("hot-path");
//! span.set("ignored", 1u64);
//! assert!(rec.snapshot().spans.is_empty());
//! ```
//!
//! ## Well-known counter names
//!
//! Counters are name-keyed and free-form, but the stack agrees on these
//! prefixes so traces from different layers line up:
//!
//! * `sat.*` — per-solve deltas from the CDCL solver: `solves`,
//!   `conflicts`, `decisions`, `propagations`, `restarts`, `reduces`,
//!   `minimized_lits`, the clause-exchange volumes `exported`,
//!   `imported`, `import_dropped`, and the inprocessing/kernel
//!   telemetry `vivified` (clauses shortened by distillation),
//!   `strengthened` (self-subsumption rewrites applied at level-0
//!   boundaries), `binary_props` (propagations served by the dedicated
//!   binary watch lists), `tier_demotions` (mid-tier learnts demoted to
//!   the deletion pool), and `rephases` (saved-phase resets from the
//!   best trail).
//! * `portfolio.*` — portfolio-race outcomes and sharing volumes:
//!   per-member win fates `won` / `finished` / `cancelled` / `failed`,
//!   and the pool-side `clauses_exported` / `clauses_imported` /
//!   `clauses_filtered`.
//! * `service.*` — job queue and cache metrics from the service layer.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;
pub mod flight;
mod jsonin;
mod prom;
mod recorder;
pub mod report;
mod trace;

pub use flight::{FlightDump, Probe, SampleSource, SearchSample, FLIGHT_VERSION};
pub use prom::PromText;
pub use recorder::{FieldValue, Recorder, SpanGuard};
pub use trace::{EventData, HistogramSummary, SpanData, TraceSnapshot};
