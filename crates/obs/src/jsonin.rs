//! A minimal JSON reader for ingesting the crate's own JSONL formats
//! (traces and flight dumps) back into memory.
//!
//! `olsq2-obs` sits below every other crate in the workspace, so it
//! cannot borrow the service layer's JSON module; this small
//! recursive-descent parser keeps the crate self-contained (and the
//! workspace dependency-free). It accepts the full JSON value grammar
//! with numbers parsed via `f64` — exactly what the trace writer emits.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Key order preserved; lookups are linear (trace objects are tiny).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error.
    pub(crate) fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    pub(crate) fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub(crate) fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    // Accumulate raw UTF-8 bytes (the input is a &str, so unescaped
    // bytes are already valid UTF-8) and validate once at the end.
    let mut out: Vec<u8> = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                let mut push =
                    |c: char| out.extend_from_slice(c.encode_utf8(&mut [0; 4]).as_bytes());
                match bytes.get(*pos) {
                    Some(b'"') => push('"'),
                    Some(b'\\') => push('\\'),
                    Some(b'/') => push('/'),
                    Some(b'b') => push('\u{8}'),
                    Some(b'f') => push('\u{c}'),
                    Some(b'n') => push('\n'),
                    Some(b'r') => push('\r'),
                    Some(b't') => push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not emitted by our writers;
                        // map lone surrogates to the replacement char.
                        push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shaped_lines() {
        let v = JsonValue::parse(
            r#"{"type":"span","id":3,"name":"iteration","dur_us":120,
                "fields":{"t_bound":7,"swap_bound":-1,"result":"sat","f":1.5,"ok":true,"n":null}}"#,
        )
        .expect("parses");
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("span"));
        assert_eq!(v.get("id").and_then(JsonValue::as_u64), Some(3));
        let fields = v.get("fields").expect("fields");
        assert_eq!(
            fields.get("swap_bound").and_then(JsonValue::as_i64),
            Some(-1)
        );
        assert_eq!(fields.get("f").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(fields.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn escapes_and_arrays_round_trip() {
        let v = JsonValue::parse(r#"["a\"b\\c\nd", [1, 2.5, -3], {}, "π"]"#).expect("parses");
        let JsonValue::Array(items) = v else {
            panic!("array")
        };
        assert_eq!(items[0].as_str(), Some("a\"b\\c\nd"));
        assert_eq!(items[3].as_str(), Some("π"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("tru").is_err());
    }
}
