//! Trace data model and JSONL serialization.
//!
//! The wire format is one JSON object per line:
//!
//! ```text
//! {"type":"meta","version":1}
//! {"type":"span","id":0,"name":"optimize_depth","start_us":12,"dur_us":90314,"fields":{...}}
//! {"type":"span","id":1,"parent":0,"name":"iteration","start_us":40,"dur_us":1202,"fields":{"t_bound":4,...}}
//! {"type":"event","span":1,"at_us":310,"name":"restart","fields":{"conflicts":512}}
//! {"type":"counter","name":"sat.conflicts","value":9123}
//! {"type":"hist","name":"solve_us","count":9,"sum":41231,"min":80,"max":20110,"p50":512,"p95":16384,"p99":32768}
//! ```
//!
//! Serialization lives here so traces written by [`crate::Recorder`] and
//! reports rendered offline (`olsq2 trace-report`) agree on one schema.

use crate::recorder::FieldValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    /// Trace-unique id (dense, in open order).
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name (a phase: `optimize_depth`, `iteration`, `encode`, …).
    pub name: String,
    /// Microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Wall-clock duration; `None` while the span is still open.
    pub dur_us: Option<u64>,
    /// Attached key/value fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

/// One recorded point-in-time event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventData {
    /// The span open on the recording thread, if any.
    pub span: Option<u64>,
    /// Microseconds since the recorder's epoch.
    pub at_us: u64,
    /// Event name (`restart`, `reduce`, …).
    pub name: String,
    /// Attached key/value fields.
    pub fields: Vec<(String, FieldValue)>,
}

/// A log₂-bucketed histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros and ones).
#[derive(Debug, Clone)]
pub(crate) struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).saturating_sub(1)
    }

    pub(crate) fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Nearest-rank quantile over bucket lower bounds, accurate to one
    /// power of two and clamped into `[min, max]`.
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    pub(crate) fn summarize(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    // Bucket i holds values in [2^i, 2^(i+1)) (plus zeros
                    // in bucket 0): the inclusive upper bound is 2^(i+1)-1.
                    let le = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                    (le, c)
                })
                .collect(),
        }
    }
}

/// Summary statistics of a histogram. Quantiles are estimates accurate to
/// one power of two (log₂ bucketing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Occupied log₂ buckets as `(inclusive upper bound, count)`, in
    /// ascending bound order — the raw data behind Prometheus
    /// `_bucket{le=...}` series ([`crate::PromText::histogram`]).
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of everything a [`crate::Recorder`] holds.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All spans, ordered by id (open order).
    pub spans: Vec<SpanData>,
    /// All events, in recording order.
    pub events: Vec<EventData>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Current JSONL trace format version (the `meta` line).
pub(crate) const TRACE_VERSION: u64 = 1;

impl TraceSnapshot {
    /// Serializes the snapshot as JSONL (see the module docs for the line
    /// schema). The output always starts with a `meta` line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"type\":\"meta\",\"version\":{TRACE_VERSION}}}");
        for span in &self.spans {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{}", span.id);
            if let Some(parent) = span.parent {
                let _ = write!(out, ",\"parent\":{parent}");
            }
            out.push_str(",\"name\":");
            write_json_string(&span.name, &mut out);
            let _ = write!(out, ",\"start_us\":{}", span.start_us);
            if let Some(dur) = span.dur_us {
                let _ = write!(out, ",\"dur_us\":{dur}");
            }
            write_fields(&span.fields, &mut out);
            out.push_str("}\n");
        }
        for event in &self.events {
            out.push_str("{\"type\":\"event\"");
            if let Some(span) = event.span {
                let _ = write!(out, ",\"span\":{span}");
            }
            let _ = write!(out, ",\"at_us\":{}", event.at_us);
            out.push_str(",\"name\":");
            write_json_string(&event.name, &mut out);
            write_fields(&event.fields, &mut out);
            out.push_str("}\n");
        }
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_json_string(name, &mut out);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"hist\",\"name\":");
            write_json_string(name, &mut out);
            let _ = writeln!(
                out,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
            );
        }
        out
    }

    /// Writes [`TraceSnapshot::to_jsonl`] to an `io::Write`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        out.write_all(self.to_jsonl().as_bytes())
    }
}

fn write_fields(fields: &[(String, FieldValue)], out: &mut String) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(k, out);
        out.push(':');
        write_field_value(v, out);
    }
    out.push('}');
}

fn write_field_value(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(n) if n.is_finite() => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => write_json_string(s, out),
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summarize();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1107);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // p50 lands in the [2,4) bucket → lower bound 2.
        assert_eq!(s.p50, 2);
        // p99 is in the last occupied bucket [512,1024) → lower bound 512.
        assert_eq!(s.p99, 512);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let s = Histogram::new().summarize();
        assert_eq!(s, HistogramSummary::default());
    }

    #[test]
    fn jsonl_contains_every_record_kind() {
        let rec = Recorder::new();
        {
            let span = rec.span("phase");
            span.set("k", "v\"with quotes\"");
            rec.event("tick", &[("n", 1u64.into())]);
        }
        rec.add("total", 5);
        rec.observe("lat_us", 123);
        let text = rec.snapshot().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"meta\""));
        assert!(lines.iter().any(|l| l.contains("\"span\"")));
        assert!(lines.iter().any(|l| l.contains("\"event\"")));
        assert!(lines.iter().any(|l| l.contains("\"counter\"")));
        assert!(lines.iter().any(|l| l.contains("\"hist\"")));
        // Escaping survived.
        assert!(text.contains("v\\\"with quotes\\\""));
    }
}
