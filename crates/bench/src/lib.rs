//! # olsq2-bench
//!
//! Experiment harness for the OLSQ2 reproduction. One binary per figure or
//! table of the paper's evaluation (run with `--release`):
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1`   | Fig. 1 — OLSQ vs OLSQ2 solving time vs grid size & gate count |
//! | `table1` | Table I — int / bit-vector / EUF encoding comparison |
//! | `table2` | Table II — `AtMost` vs CNF cardinality encodings |
//! | `table3` | Table III — depth optimization, SABRE vs OLSQ2 |
//! | `table4` | Table IV — SWAP optimization, SABRE vs SATMap vs TB-OLSQ2 |
//!
//! Every binary accepts `--budget <seconds>` (per-cell time budget,
//! default 60) and `--full` (paper-scale instances; expect hours). The
//! default "quick" instances are scaled down so a full run of every
//! binary completes on a laptop; EXPERIMENTS.md records both scales.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::Duration;

/// Shared CLI options for the table binaries.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Per-cell wall-clock budget.
    pub budget: Duration,
    /// Run paper-scale instances instead of the quick set.
    pub full: bool,
    /// Base RNG seed for workload generation.
    pub seed: u64,
    /// Minimum acceptable headline ratio: harnesses with a headline
    /// geomean (like `solver`'s end-to-end speedup) exit non-zero when it
    /// falls below this, turning a benchmark run into a CI guard.
    pub gate: Option<f64>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            budget: Duration::from_secs(60),
            full: false,
            seed: 42,
            gate: None,
        }
    }
}

impl BenchOpts {
    /// Parses `--budget <secs>`, `--full`, `--seed <n>`, `--gate <ratio>`
    /// from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> BenchOpts {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--budget" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| panic!("--budget requires a number of seconds"));
                    opts.budget = Duration::from_secs(v);
                }
                "--full" => opts.full = true,
                "--seed" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| panic!("--seed requires a number"));
                    opts.seed = v;
                }
                "--gate" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .filter(|g| g.is_finite() && *g > 0.0)
                        .unwrap_or_else(|| panic!("--gate requires a positive ratio"));
                    opts.gate = Some(v);
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--budget <secs>] [--full] [--seed <n>] [--gate <ratio>]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        opts
    }
}

/// A measured cell: a duration, a timeout, or an error note.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Completed in the given time.
    Time(Duration),
    /// Budget exhausted ("TO" in the paper's tables).
    Timeout,
    /// Structural failure (like the paper's "OOM" entries).
    Failed(String),
}

impl Cell {
    /// The duration if completed.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Cell::Time(d) => Some(d.as_secs_f64()),
            _ => None,
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Time(d) => write!(f, "{:>9.2}s", d.as_secs_f64()),
            Cell::Timeout => write!(f, "{:>10}", "TO"),
            Cell::Failed(_) => write!(f, "{:>10}", "ERR"),
        }
    }
}

/// Formats the ratio column (`baseline / this`), "-" when unavailable.
pub fn ratio(baseline: &Cell, this: &Cell) -> String {
    match (baseline.secs(), this.secs()) {
        (Some(b), Some(t)) if t > 0.0 => format!("{:>8.2}x", b / t),
        _ => format!("{:>9}", "-"),
    }
}

/// Geometric mean of the collected ratios, "-" if none.
pub fn geomean_ratio(pairs: &[(Cell, Cell)]) -> String {
    let ratios: Vec<f64> = pairs
        .iter()
        .filter_map(|(b, t)| match (b.secs(), t.secs()) {
            (Some(b), Some(t)) if t > 0.0 && b > 0.0 => Some(b / t),
            _ => None,
        })
        .collect();
    if ratios.is_empty() {
        return "-".to_string();
    }
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    format!("{:.2}x", (log_sum / ratios.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formatting() {
        assert_eq!(format!("{}", Cell::Timeout).trim(), "TO");
        assert!(format!("{}", Cell::Time(Duration::from_secs(2))).contains("2.00s"));
        assert_eq!(format!("{}", Cell::Failed("x".into())).trim(), "ERR");
    }

    #[test]
    fn ratio_handles_missing() {
        let a = Cell::Time(Duration::from_secs(10));
        let b = Cell::Time(Duration::from_secs(2));
        assert!(ratio(&a, &b).contains("5.00x"));
        assert!(ratio(&Cell::Timeout, &b).contains('-'));
    }

    #[test]
    fn geomean_of_two() {
        let pairs = vec![
            (
                Cell::Time(Duration::from_secs(8)),
                Cell::Time(Duration::from_secs(2)),
            ),
            (
                Cell::Time(Duration::from_secs(9)),
                Cell::Time(Duration::from_secs(1)),
            ),
        ];
        assert_eq!(geomean_ratio(&pairs), "6.00x");
        assert_eq!(geomean_ratio(&[]), "-");
    }
}
